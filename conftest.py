"""Pytest bootstrap: make ``src/`` importable without installation.

``pip install -e .`` is the supported path (see README), but the test suite
should also run from a bare checkout with ``python -m pytest``.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
