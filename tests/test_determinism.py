"""Seed-determinism audit: every stochastic component must be reproducible."""

import numpy as np

from repro.datasets import dblp_titles
from repro.datasets.registry import available_datasets, load_dataset
from repro.datasets.synthetic import SyntheticCorpusGenerator
from repro.utils.rng import choice_without, new_rng, spawn_rngs


def test_registry_datasets_are_reproducible():
    for name in available_datasets():
        first = load_dataset(name, n_documents=25, seed=42)
        second = load_dataset(name, n_documents=25, seed=42)
        assert first.texts == second.texts
        assert first.document_topics == second.document_topics


def test_different_seeds_differ():
    a = load_dataset("dblp-titles", n_documents=25, seed=1)
    b = load_dataset("dblp-titles", n_documents=25, seed=2)
    assert a.texts != b.texts


def test_generate_seed_override_is_independent_of_generator_state():
    spec = dblp_titles.spec(50)
    generator = SyntheticCorpusGenerator(spec, seed=0)
    # Consume some of the instance stream, then use a per-call seed: the
    # per-call seed must fully determine the output.
    generator.generate(5)
    first = generator.generate(10, seed=99)
    fresh = SyntheticCorpusGenerator(spec, seed=123).generate(10, seed=99)
    assert first.texts == fresh.texts


def test_corpus_split_and_subsample_accept_seedlike():
    corpus = load_dataset("dblp-titles", n_documents=30, seed=7).to_corpus()
    train_a, held_a = corpus.split(0.25, seed=3)
    train_b, held_b = corpus.split(0.25, seed=3)
    assert [d.doc_id for d in held_a] == [d.doc_id for d in held_b]
    # generators are accepted too
    train_c, _ = corpus.split(0.25, seed=np.random.default_rng(3))
    assert len(train_c) == len(train_a)
    sample_a = corpus.subsample(10, seed=5)
    sample_b = corpus.subsample(10, seed=5)
    assert [d.raw_text for d in sample_a] == [d.raw_text for d in sample_b]


def test_new_rng_passthrough_and_spawn():
    rng = np.random.default_rng(0)
    assert new_rng(rng) is rng
    streams_a = [r.integers(0, 100, size=3).tolist() for r in spawn_rngs(11, 3)]
    streams_b = [r.integers(0, 100, size=3).tolist() for r in spawn_rngs(11, 3)]
    assert streams_a == streams_b
    assert streams_a[0] != streams_a[1]


def test_choice_without_never_returns_excluded():
    rng = new_rng(0)
    for _ in range(100):
        assert choice_without(rng, 5, 2) != 2


# -- mining/segmentation engine parity ------------------------------------------------
def _front_end(engine, n_jobs=1, dataset="dblp-titles", n_documents=180,
               seed=13):
    """Mine + segment one fixed-seed synthetic corpus with one engine."""
    from repro.core.topmine import ToPMine, ToPMineConfig

    generated = load_dataset(dataset, n_documents=n_documents, seed=seed)
    pipeline = ToPMine(ToPMineConfig(min_support=3, mining_engine=engine,
                                     n_jobs=n_jobs))
    corpus = pipeline.preprocess(generated.texts, name=dataset)
    mining = pipeline.mine_phrases(corpus)
    segmented = pipeline.segment(corpus, mining)
    return mining, segmented


def test_mining_and_segmentation_engine_parity():
    """reference/numpy engines agree on phrases, counts, and partitions."""
    reference_mining, reference_segmented = _front_end("reference")
    numpy_mining, numpy_segmented = _front_end("numpy")
    assert reference_mining.counter.as_dict() == numpy_mining.counter.as_dict()
    assert reference_mining.total_tokens == numpy_mining.total_tokens
    assert reference_mining.iterations == numpy_mining.iterations
    for ref_doc, np_doc in zip(reference_segmented, numpy_segmented):
        assert ref_doc.phrases == np_doc.phrases
        assert ref_doc.doc_id == np_doc.doc_id


def test_segmentation_sharding_parity():
    """n_jobs=4 shards produce exactly the n_jobs=1 partitions, per engine."""
    for engine in ("reference", "numpy"):
        _, sequential = _front_end(engine, n_jobs=1)
        _, sharded = _front_end(engine, n_jobs=4)
        for seq_doc, shard_doc in zip(sequential, sharded):
            assert seq_doc.phrases == shard_doc.phrases
            assert seq_doc.doc_id == shard_doc.doc_id


def test_front_end_reruns_are_reproducible():
    """Two identical fixed-seed runs of the fast path are identical."""
    first_mining, first_segmented = _front_end("auto")
    second_mining, second_segmented = _front_end("auto")
    assert first_mining.counter.as_dict() == second_mining.counter.as_dict()
    for a, b in zip(first_segmented, second_segmented):
        assert a.phrases == b.phrases
