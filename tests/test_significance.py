"""Unit tests for the merge significance score (paper Eq. 1)."""

import math

import pytest

from repro.core.frequent_phrases import FrequentPhraseMiningResult
from repro.core.significance import SignificanceScorer
from repro.utils.counter import HashCounter


def make_scorer(counts, total_tokens=1000):
    return SignificanceScorer(HashCounter(counts), total_tokens)


def test_rejects_non_positive_corpus_length():
    with pytest.raises(ValueError):
        SignificanceScorer(HashCounter(), 0)


def test_basic_quantities():
    scorer = make_scorer({(1,): 100, (2,): 50, (1, 2): 30})
    assert scorer.total_tokens == 1000.0
    assert scorer.frequency((1,)) == 100
    assert scorer.frequency((9,)) == 0
    assert scorer.probability((2,)) == 0.05
    # mu0 = L * p(P1) * p(P2) = 1000 * 0.1 * 0.05
    assert scorer.expected_merged_frequency((1,), (2,)) == pytest.approx(5.0)


def test_significance_matches_equation_one():
    scorer = make_scorer({(1,): 100, (2,): 50, (1, 2): 30})
    expected = (30 - 5.0) / math.sqrt(30)
    assert scorer.significance((1,), (2,)) == pytest.approx(expected)


def test_unseen_merge_is_never_selected():
    scorer = make_scorer({(1,): 100, (2,): 50})
    assert scorer.significance((1,), (2,)) == float("-inf")


def test_merged_phrase_concatenates():
    scorer = make_scorer({(1,): 1})
    assert scorer.merged_phrase((1, 2), (3,)) == (1, 2, 3)


def test_significance_treats_merged_phrases_as_constituents():
    # The "free-rider" defence: the score of merging (1, 2) with (3,) uses
    # the frequency of the already-merged sub-phrase (1, 2), not of 1 and 2.
    scorer = make_scorer({(1, 2): 40, (3,): 100, (1, 2, 3): 20})
    mu0 = 1000 * (40 / 1000) * (100 / 1000)
    expected = (20 - mu0) / math.sqrt(20)
    assert scorer.significance((1, 2), (3,)) == pytest.approx(expected)


def test_from_mining_result():
    counter = HashCounter({(1,): 10, (2,): 10, (1, 2): 6})
    result = FrequentPhraseMiningResult(counter=counter, total_tokens=100,
                                        min_support=3)
    scorer = SignificanceScorer.from_mining_result(result)
    assert scorer.total_tokens == 100.0
    assert scorer.frequency((1, 2)) == 6
