"""repro.serve: registry residency/hot-reload (single-flight under
concurrency), micro-batching determinism, the JSON-over-HTTP endpoints, and
the client's bounded connection-error retry."""

import io
import json
import os
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.infer import InferenceConfig
from repro.io.artifacts import (
    ArtifactError,
    ModelBundle,
    read_manifest,
    save_bundle,
)
from repro.serve import (
    MicroBatcher,
    ModelRegistry,
    ReproServer,
    ServeClient,
    ServeConfig,
    ServeError,
)
from repro.serve.registry import UnknownModelError

UNSEEN = [
    "support vector machine training data and feature selection",
    "natural language processing for machine translation",
    "association rules and frequent itemsets for data mining",
    "source code generation for java programming language",
    "query processing over relational database systems",
    "neural networks for pattern recognition and classification",
]


@pytest.fixture(scope="module")
def bundle_path(model_bundle, tmp_path_factory):
    """The session model bundle saved to disk once for the serving tests."""
    path = tmp_path_factory.mktemp("serve") / "model.npz"
    save_bundle(path, model_bundle)
    return path


@pytest.fixture(scope="module")
def server(bundle_path):
    """One live ReproServer (ephemeral port) shared by the HTTP tests."""
    registry = ModelRegistry()
    registry.register("model", bundle_path)
    server = ReproServer(registry, port=0, batch_delay=0.01)
    server.start_background()
    yield server
    server.stop()


@pytest.fixture(scope="module")
def client(server):
    return ServeClient(server.url)


# -- registry -------------------------------------------------------------------------
def test_registry_loads_and_caches(bundle_path):
    registry = ModelRegistry()
    registry.register("m", bundle_path)
    first = registry.get("m")
    assert first.kind == "model"
    assert first.n_topics == 5
    assert registry.get("m") is first  # unchanged file → same object
    assert registry.metrics.counter("registry_loads_total") == 1
    assert registry.metrics.counter("registry_hits_total") == 1


def test_registry_unknown_name(bundle_path):
    registry = ModelRegistry()
    with pytest.raises(UnknownModelError, match="unknown model"):
        registry.get("missing")


def test_registry_missing_file(tmp_path):
    registry = ModelRegistry()
    registry.register("ghost", tmp_path / "ghost.npz")
    with pytest.raises(ArtifactError, match="not found"):
        registry.get("ghost")


def test_registry_hot_reload(model_bundle, tmp_path):
    path = tmp_path / "model.npz"
    save_bundle(path, model_bundle)
    registry = ModelRegistry()
    registry.register("m", path)
    first = registry.get("m")
    # Rewrite the bundle and force a different stat signature even on
    # coarse-mtime filesystems.
    save_bundle(path, model_bundle)
    os.utime(path, ns=(1, 1))
    second = registry.get("m")
    assert second is not first
    assert registry.metrics.counter("registry_reloads_total") == 1


def test_registry_lru_eviction(model_bundle, tmp_path):
    paths = []
    for name in ("a", "b", "c"):
        path = tmp_path / f"{name}.npz"
        save_bundle(path, model_bundle)
        paths.append((name, path))
    registry = ModelRegistry(capacity=2)
    for name, path in paths:
        registry.register(name, path)
    registry.get("a")
    registry.get("b")
    registry.get("a")          # touch: b is now least-recently used
    registry.get("c")          # exceeds capacity → evicts b
    assert registry.loaded_names() == ["a", "c"]
    assert registry.metrics.counter("registry_evictions_total") == 1
    assert "b" in registry.names()  # still registered, just not resident


def test_registry_directory_and_describe(model_bundle, tmp_path):
    save_bundle(tmp_path / "one.npz", model_bundle)
    save_bundle(tmp_path / "two.npz", model_bundle)
    registry = ModelRegistry()
    assert registry.register_directory(tmp_path) == ["one", "two"]
    registry.get("one")
    descriptions = {d["name"]: d for d in registry.describe_all()}
    assert descriptions["one"]["loaded"] is True
    assert descriptions["two"]["loaded"] is False
    assert descriptions["two"]["kind"] == "model"  # via cheap manifest read


def test_describe_all_reflects_published_file_for_stale_residents(
        model_bundle, tmp_path):
    """After a new bundle is published over a resident model's file,
    /v1/models must describe the *file's* version (an observer polling the
    listing sees the publish land), even before any request hot-swaps the
    resident copy."""
    path = tmp_path / "model.npz"
    stamped = ModelBundle(**{**model_bundle.__dict__,
                             "metadata": {"release": 1}})
    save_bundle(path, stamped)
    registry = ModelRegistry()
    registry.register("m", path)
    registry.get("m")  # make it resident
    assert registry.describe_all()[0]["metadata"]["release"] == 1
    stamped.metadata = {"release": 2}
    save_bundle(path, stamped)
    os.utime(path, ns=(3, 3))
    description = registry.describe_all()[0]
    assert description["metadata"]["release"] == 2
    assert description["loaded"] is True
    assert description["stale"] is True
    registry.get("m")  # the next request swaps the new version in
    description = registry.describe_all()[0]
    assert description["metadata"]["release"] == 2
    assert "stale" not in description


def test_read_manifest_is_validated(bundle_path, tmp_path):
    manifest = read_manifest(bundle_path)
    assert manifest["kind"] == "model"
    assert manifest["model"]["n_topics"] == 5
    junk = tmp_path / "junk.npz"
    junk.write_bytes(b"not a bundle")
    with pytest.raises(ArtifactError):
        read_manifest(junk)


def test_registry_single_flight_reload_serves_stale_copy(model_bundle,
                                                         tmp_path,
                                                         monkeypatch):
    """While one thread swaps a changed bundle in, concurrent requests are
    answered from the previous version — exactly one reload happens."""
    import repro.serve.registry as registry_module

    path = tmp_path / "model.npz"
    save_bundle(path, model_bundle)
    registry = ModelRegistry()
    registry.register("m", path)
    first = registry.get("m")
    save_bundle(path, model_bundle)
    os.utime(path, ns=(2, 2))

    original_load = registry_module.load_bundle
    loading = threading.Event()

    def slow_load(bundle_path):
        loading.set()
        time.sleep(0.3)  # widen the swap window for the stale readers
        return original_load(bundle_path)

    monkeypatch.setattr(registry_module, "load_bundle", slow_load)

    def get(_index):
        return registry.get("m")

    with ThreadPoolExecutor(6) as pool:
        results = list(pool.map(get, range(6)))
    assert registry.metrics.counter("registry_reloads_total") == 1
    assert registry.metrics.counter("registry_stale_hits_total") >= 1
    swapped = registry.get("m")
    assert swapped is not first
    for result in results:  # every request got a usable model, old or new
        assert result is first or result is swapped


def test_registry_single_flight_cold_load(model_bundle, tmp_path,
                                          monkeypatch):
    """Concurrent first-use requests share one load: waiters block on the
    in-flight event instead of loading duplicates."""
    import repro.serve.registry as registry_module

    path = tmp_path / "model.npz"
    save_bundle(path, model_bundle)
    registry = ModelRegistry()
    registry.register("m", path)
    original_load = registry_module.load_bundle

    def slow_load(bundle_path):
        time.sleep(0.2)
        return original_load(bundle_path)

    monkeypatch.setattr(registry_module, "load_bundle", slow_load)
    with ThreadPoolExecutor(5) as pool:
        results = list(pool.map(lambda _i: registry.get("m"), range(5)))
    assert registry.metrics.counter("registry_loads_total") == 1
    assert all(result is results[0] for result in results)


# -- micro-batcher --------------------------------------------------------------------
def test_batcher_concurrent_requests_bit_identical(bundle_path, model_bundle):
    """Concurrent batched requests must reproduce solo runs bit-for-bit."""
    registry = ModelRegistry()
    registry.register("m", bundle_path)
    batcher = MicroBatcher(registry, max_batch_size=16, max_delay=0.05)
    batcher.start()
    barrier = threading.Barrier(len(UNSEEN))

    def fire(index):
        barrier.wait()  # release all requests into one batching window
        return index, batcher.submit("m", [UNSEEN[index]], seed=100 + index,
                                     n_iterations=15)

    try:
        with ThreadPoolExecutor(len(UNSEEN)) as pool:
            replies = dict(pool.map(fire, range(len(UNSEEN))))
    finally:
        batcher.stop()

    inferencer = model_bundle.inferencer()
    for index, result in replies.items():
        solo = inferencer.infer_texts(
            [UNSEEN[index]],
            InferenceConfig(n_iterations=15, seed=100 + index, engine="numpy"))
        assert np.array_equal(result.theta, solo.theta)
    # The barrier guarantees co-arrival: requests must actually coalesce.
    assert batcher.metrics.counter("infer_batches_total") \
        < batcher.metrics.counter("infer_requests_total")


def test_batcher_delivers_errors_per_request(bundle_path):
    registry = ModelRegistry()
    registry.register("m", bundle_path)
    batcher = MicroBatcher(registry, max_delay=0.0)
    batcher.start()
    try:
        with pytest.raises(UnknownModelError):
            batcher.submit("missing", ["text"], seed=1, n_iterations=5)
        # The worker must survive a failed batch and keep serving.
        result = batcher.submit("m", ["data mining"], seed=1, n_iterations=5)
        assert result.n_documents == 1
    finally:
        batcher.stop()


def test_batcher_rejects_after_stop(bundle_path):
    registry = ModelRegistry()
    registry.register("m", bundle_path)
    batcher = MicroBatcher(registry)
    batcher.start()
    batcher.stop()
    with pytest.raises(RuntimeError, match="not running"):
        batcher.submit("m", ["text"], seed=1, n_iterations=5)


# -- HTTP endpoints -------------------------------------------------------------------
def test_healthz(client):
    health = client.health()
    assert health["status"] == "ok"
    assert health["models"] == ["model"]
    assert health["uptime_seconds"] >= 0


def test_models_listing(client):
    models = client.models()
    assert len(models) == 1
    assert models[0]["name"] == "model"
    assert models[0]["kind"] == "model"


def test_infer_endpoint_matches_solo_run(client, model_bundle):
    reply = client.infer(UNSEEN[:2], seed=42, iterations=15)
    assert reply["model"] == "model"
    assert reply["n_topics"] == model_bundle.n_topics
    solo = model_bundle.inferencer().infer_texts(
        UNSEEN[:2], InferenceConfig(n_iterations=15, seed=42, engine="numpy"))
    for doc, solo_doc in zip(reply["documents"], solo.documents):
        # JSON floats round-trip float64 exactly → bit-identical mixtures.
        assert doc["theta"] == [float(p) for p in solo_doc.theta]
        assert doc["n_phrases"] == len(solo_doc.phrases)


def test_concurrent_http_infer_deterministic(client, model_bundle):
    inferencer = model_bundle.inferencer()

    def fire(index):
        return index, client.infer([UNSEEN[index]], seed=7 * index,
                                   iterations=10)

    with ThreadPoolExecutor(len(UNSEEN)) as pool:
        replies = dict(pool.map(fire, range(len(UNSEEN))))
    for index, reply in replies.items():
        solo = inferencer.infer_texts(
            [UNSEEN[index]],
            InferenceConfig(n_iterations=10, seed=7 * index, engine="numpy"))
        assert reply["documents"][0]["theta"] == \
            [float(p) for p in solo.documents[0].theta]


def test_segment_endpoint(client, model_bundle):
    reply = client.segment(["support vector machine zzzunknownzzz"])
    document = reply["documents"][0]
    assert document["n_unknown_tokens"] == 1
    assert any(len(phrase) >= 2 for phrase in document["phrases"])
    assert all(isinstance(surface, str)
               for surface in document["surface_phrases"])


def test_topics_endpoint(client, model_bundle):
    reply = client.topics(n=4)
    assert reply["n_topics"] == model_bundle.n_topics
    assert len(reply["topics"]) == model_bundle.n_topics
    for topic in reply["topics"]:
        assert len(topic["unigrams"]) == 4


def test_metrics_endpoint(client):
    client.health()
    text = client.metrics_text()
    assert "# TYPE repro_http_requests_total counter" in text
    assert "repro_registry_loads_total" in text


def test_http_error_paths(client):
    with pytest.raises(ServeError) as missing_model:
        client.infer(["text"], model="missing")
    assert missing_model.value.status == 404
    with pytest.raises(ServeError) as bad_route:
        client._request("/v1/nonsense")
    assert bad_route.value.status == 404
    with pytest.raises(ServeError) as wrong_method:
        client._request("/v1/infer")  # GET on a POST-only endpoint
    assert wrong_method.value.status == 405
    with pytest.raises(ServeError) as empty_documents:
        client.infer([])
    assert empty_documents.value.status == 400
    with pytest.raises(ServeError) as bad_iterations:
        client.infer(["text"], iterations=0)
    assert bad_iterations.value.status == 400


def test_http_invalid_json_body(server):
    import urllib.error
    import urllib.request

    request = urllib.request.Request(
        server.url + "/v1/infer", data=b"{not json",
        headers={"Content-Type": "application/json"})
    with pytest.raises(urllib.error.HTTPError) as error:
        urllib.request.urlopen(request, timeout=10)
    assert error.value.code == 400
    assert "invalid JSON" in json.load(error.value)["error"]


def test_server_hot_reload_via_http(model_bundle, tmp_path):
    """Rewriting a served bundle goes live without a restart."""
    path = tmp_path / "hot.npz"
    save_bundle(path, model_bundle)
    registry = ModelRegistry()
    registry.register("hot", path)
    server = ReproServer(registry, port=0, batch_delay=0.0)
    server.start_background()
    try:
        client = ServeClient(server.url)
        client.infer(["data mining"], seed=1, iterations=5)
        save_bundle(path, model_bundle)
        os.utime(path, ns=(1, 1))
        client.infer(["data mining"], seed=1, iterations=5)
        assert registry.metrics.counter("registry_reloads_total") == 1
    finally:
        server.stop()


def test_segmentation_bundle_segments_but_rejects_inference(fitted_pipeline,
                                                            tmp_path):
    """A segmentation-kind bundle serves /v1/segment (cached inferencer,
    no trained state) but /v1/infer and /v1/topics reject it with 400."""
    from repro.io.artifacts import SegmentationBundle

    config, result = fitted_pipeline
    seg_bundle = SegmentationBundle(
        mining=result.mining_result, segmented=result.segmented_corpus,
        construction=config.construction_config(),
        preprocess=config.preprocess)
    path = tmp_path / "seg.npz"
    save_bundle(path, seg_bundle)
    registry = ModelRegistry()
    registry.register("seg", path)
    server = ReproServer(registry, port=0, batch_delay=0.0)
    server.start_background()
    try:
        client = ServeClient(server.url)
        reply = client.segment(["support vector machine training"])
        assert reply["documents"][0]["phrases"]
        with pytest.raises(ServeError) as infer_rejected:
            client.infer(["text"], seed=1, iterations=5)
        assert infer_rejected.value.status == 400
        with pytest.raises(ServeError) as topics_rejected:
            client.topics()
        assert topics_rejected.value.status == 400
    finally:
        server.stop()


# -- ServeConfig / typed API ----------------------------------------------------------
def test_serve_config_defaults_replace_and_dict():
    config = ServeConfig()
    assert (config.port, config.workers, config.max_batch_size) == (8765, 1, 32)
    fleet = config.replace(workers=4, port=0)
    assert (fleet.workers, fleet.port) == (4, 0)
    assert config.workers == 1  # frozen: replace() never mutates the original
    assert fleet.as_dict()["workers"] == 4


@pytest.mark.parametrize("bad", [
    {"host": ""},
    {"port": -1},
    {"port": 70000},
    {"workers": 0},
    {"max_batch_size": 0},
    {"batch_delay": -0.001},
    {"default_iterations": 0},
    {"registry_capacity": 0},
    {"health_interval": 0.0},
    {"restart_backoff": -1.0},
    {"shutdown_timeout": 0.0},
])
def test_serve_config_validates_fields(bad):
    with pytest.raises(ValueError):
        ServeConfig(**bad)
    with pytest.raises(ValueError):  # replace() re-runs validation
        ServeConfig().replace(**bad)


def test_server_legacy_kwargs_still_work_with_warning(bundle_path):
    registry = ModelRegistry()
    registry.register("m", bundle_path)
    with pytest.warns(DeprecationWarning, match="ServeConfig"):
        server = ReproServer(registry, port=0, batch_delay=0.01)
    try:
        assert server.config.batch_delay == 0.01
        assert server.default_iterations == server.config.default_iterations
    finally:
        server.server_close()


def test_server_rejects_config_plus_legacy_kwargs(bundle_path):
    registry = ModelRegistry()
    registry.register("m", bundle_path)
    with pytest.raises(TypeError, match="not both"):
        ReproServer(registry, ServeConfig(port=0), port=0)
    with pytest.raises(TypeError, match="unexpected keyword"):
        ReproServer(registry, ServeConfig(port=0), prot=0)


def test_worker_identity_in_health_and_models(bundle_path):
    """/healthz and every /v1/models entry carry the answering worker's id,
    and resident entries expose the loaded copy's version — the fields a
    fleet observer needs to tell per-worker hot-swap states apart."""
    registry = ModelRegistry()
    registry.register("model", bundle_path)
    server = ReproServer(registry, ServeConfig(port=0, batch_delay=0.0),
                         worker_id=3)
    server.start_background()
    try:
        client = ServeClient(server.url)
        assert client.health()["worker_id"] == 3
        client.infer(["data mining"], seed=1, iterations=5)  # make resident
        entry = client.models()[0]
        assert entry["worker_id"] == 3
        assert entry["loaded"] is True
        assert "resident_signature" in entry
        assert entry["resident_version"] is None  # bundle has no stream stamp
    finally:
        server.stop()


# -- client retry ---------------------------------------------------------------------
class _CannedReply:
    """Minimal context-manager reply standing in for urlopen's result."""

    def __init__(self, body: bytes) -> None:
        self._body = body
        self.headers = {}

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def read(self) -> bytes:
        return self._body


def test_client_retries_connection_errors(monkeypatch):
    attempts = {"n": 0}

    def flaky(request, timeout=None):
        attempts["n"] += 1
        if attempts["n"] < 3:
            raise urllib.error.URLError(ConnectionRefusedError("refused"))
        return _CannedReply(b'{"status": "ok"}')

    monkeypatch.setattr(urllib.request, "urlopen", flaky)
    client = ServeClient("http://127.0.0.1:1", retries=2, retry_delay=0.0)
    assert client.health() == {"status": "ok"}
    assert attempts["n"] == 3


def test_client_retry_exhaustion_reports_attempts(monkeypatch):
    attempts = {"n": 0}

    def refused(request, timeout=None):
        attempts["n"] += 1
        raise urllib.error.URLError(ConnectionRefusedError("refused"))

    monkeypatch.setattr(urllib.request, "urlopen", refused)
    client = ServeClient("http://127.0.0.1:1", retries=1, retry_delay=0.0)
    with pytest.raises(ServeError) as unreachable:
        client.health()
    assert unreachable.value.status == 0
    assert "2 attempt" in str(unreachable.value)
    assert attempts["n"] == 2


def test_client_never_retries_http_errors(monkeypatch):
    """The server answered: re-sending would double-submit, so HTTP error
    replies surface immediately, retries or not."""
    attempts = {"n": 0}

    def bad_request(request, timeout=None):
        attempts["n"] += 1
        raise urllib.error.HTTPError(
            "http://127.0.0.1:1/v1/infer", 400, "bad request", None,
            io.BytesIO(b'{"error": "nope"}'))

    monkeypatch.setattr(urllib.request, "urlopen", bad_request)
    client = ServeClient("http://127.0.0.1:1", retries=5, retry_delay=0.0)
    with pytest.raises(ServeError) as rejected:
        client.infer(["text"])
    assert rejected.value.status == 400
    assert "nope" in str(rejected.value)
    assert attempts["n"] == 1


def test_client_rejects_invalid_retry_settings():
    with pytest.raises(ValueError, match="retries"):
        ServeClient("http://127.0.0.1:1", retries=-1)
    with pytest.raises(ValueError, match="retry_delay"):
        ServeClient("http://127.0.0.1:1", retry_delay=-0.5)


def test_serve_model_spec_parsing(model_bundle, tmp_path, monkeypatch):
    """--model accepts bare paths (even containing '=') and NAME=PATH."""
    from repro.serve import ModelRegistry

    weird_dir = tmp_path / "runs" / "lr=0.1"
    weird_dir.mkdir(parents=True)
    weird = weird_dir / "model.npz"
    save_bundle(weird, model_bundle)
    plain = tmp_path / "plain.npz"
    save_bundle(plain, model_bundle)

    registered = {}
    monkeypatch.setattr(ModelRegistry, "register",
                        lambda self, name, path: registered.__setitem__(
                            name, str(path)))
    monkeypatch.setattr(ModelRegistry, "names",
                        lambda self: list(registered))
    from repro.cli import main as cli_main
    import repro.serve as serve_module

    class _Boom(Exception):
        pass

    def _no_server(*args, **kwargs):
        raise _Boom  # registration checked; never actually bind a socket

    monkeypatch.setattr(serve_module, "ReproServer", _no_server)
    with pytest.raises(_Boom):
        cli_main(["serve", "--model", str(weird),
                  "--model", f"alias={plain}"])
    assert registered[str(weird.stem)] == str(weird)  # '=' path kept whole
    assert registered["alias"] == str(plain)
    registry = ModelRegistry()
    registry.register("m", bundle_path)
    server = ReproServer(registry, port=0)
    server.start_background()
    client = ServeClient(server.url, timeout=5)
    assert client.health()["status"] == "ok"
    server.stop()
    with pytest.raises(ServeError) as unreachable:
        ServeClient(server.url, timeout=2).health()
    assert unreachable.value.status in (0, 404)  # connection refused
