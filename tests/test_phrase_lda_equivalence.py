"""Engine equivalence: the vectorized and compiled samplers must reproduce
the readable reference sampler assignment-for-assignment under a fixed seed.
"""

import numpy as np
import pytest

from repro.core.phrase_lda import (
    PhraseLDA,
    PhraseLDAConfig,
    ReferencePhraseLDA,
    unigram_segmentation,
)
from repro.topicmodel import ckernel
from repro.topicmodel.gibbs import resolve_engine
from repro.topicmodel.lda import LatentDirichletAllocation, LDAConfig

requires_c_kernel = pytest.mark.skipif(
    not ckernel.kernel_available(),
    reason=f"C kernel unavailable: {ckernel.load_error()}")

FAST_ENGINES = ["numpy", pytest.param("c", marks=requires_c_kernel)]


def make_phrase_docs(n_docs=40, seed=3):
    """Random segmented documents with a realistic clique-size mix."""
    rng = np.random.default_rng(seed)
    docs = []
    for _ in range(n_docs):
        phrases = []
        for _ in range(int(rng.integers(3, 15))):
            size = int(rng.choice([1, 1, 1, 2, 2, 3]))
            phrases.append(tuple(int(w) for w in rng.integers(0, 120, size=size)))
        docs.append(phrases)
    return docs


def fit_phrase_lda(engine, docs, seed=11, **overrides):
    config = PhraseLDAConfig(n_topics=7, n_iterations=25, seed=seed,
                             engine=engine, **overrides)
    return PhraseLDA(config).fit(docs, vocabulary_size=120)


def assert_states_equal(reference, other):
    assert len(reference.clique_assignments) == len(other.clique_assignments)
    for a, b in zip(reference.clique_assignments, other.clique_assignments):
        np.testing.assert_array_equal(a, b)
    np.testing.assert_array_equal(reference.topic_word_counts,
                                  other.topic_word_counts)
    np.testing.assert_array_equal(reference.doc_topic_counts,
                                  other.doc_topic_counts)
    np.testing.assert_array_equal(reference.topic_counts, other.topic_counts)
    for a, b in zip(reference.assignments, other.assignments):
        np.testing.assert_array_equal(a, b)


@pytest.mark.parametrize("engine", FAST_ENGINES)
def test_phrase_lda_engines_match_reference(engine):
    docs = make_phrase_docs()
    reference = fit_phrase_lda("reference", docs)
    fast = fit_phrase_lda(engine, docs)
    assert_states_equal(reference, fast)


@pytest.mark.parametrize("engine", FAST_ENGINES)
def test_phrase_lda_engines_match_with_hyperopt(engine):
    docs = make_phrase_docs(n_docs=25, seed=9)
    kwargs = dict(optimize_hyperparameters=True, hyper_optimize_interval=10,
                  burn_in=4)
    reference = fit_phrase_lda("reference", docs, **kwargs)
    fast = fit_phrase_lda(engine, docs, **kwargs)
    assert_states_equal(reference, fast)
    np.testing.assert_allclose(reference.alpha, fast.alpha)
    assert reference.beta == pytest.approx(fast.beta)


@pytest.mark.parametrize("engine", FAST_ENGINES)
def test_lda_engines_match_reference(engine):
    rng = np.random.default_rng(4)
    docs = [[int(w) for w in rng.integers(0, 90, size=int(rng.integers(10, 40)))]
            for _ in range(35)]
    states = {}
    for name in ("reference", engine):
        model = LatentDirichletAllocation(
            LDAConfig(n_topics=6, n_iterations=20, seed=2, engine=name))
        states[name] = model.fit(docs, vocabulary_size=90)
    for a, b in zip(states["reference"].assignments, states[engine].assignments):
        np.testing.assert_array_equal(a, b)
    np.testing.assert_array_equal(states["reference"].topic_word_counts,
                                  states[engine].topic_word_counts)


def test_lda_is_special_case_of_phrase_lda():
    """Paper Section 5: all-singleton PhraseLDA is exactly collapsed LDA."""
    rng = np.random.default_rng(8)
    docs = [[int(w) for w in rng.integers(0, 50, size=20)] for _ in range(20)]
    lda_state = LatentDirichletAllocation(
        LDAConfig(n_topics=4, n_iterations=15, seed=6, engine="reference")
    ).fit(docs, vocabulary_size=50)
    plda_state = PhraseLDA(
        PhraseLDAConfig(n_topics=4, n_iterations=15, seed=6, engine="reference")
    ).fit(unigram_segmentation(docs), vocabulary_size=50)
    for a, b in zip(lda_state.assignments, plda_state.assignments):
        np.testing.assert_array_equal(a, b)
    np.testing.assert_array_equal(lda_state.topic_word_counts,
                                  plda_state.topic_word_counts)


def test_reference_phrase_lda_class_pins_engine():
    model = ReferencePhraseLDA(PhraseLDAConfig(n_topics=3, n_iterations=5, seed=0))
    assert model.config.engine == "reference"
    state = model.fit([[(0, 1), (2,)], [(1,), (2, 0)]], vocabulary_size=3)
    assert state.n_topics == 3


def test_flat_engines_reject_degenerate_priors():
    """The flat samplers have no zero-total fallback, so beta=0 / alpha=0
    must be refused instead of silently diverging from the reference."""
    docs = [[(0,), (1, 2)]]
    for bad in (dict(beta=0.0), dict(alpha=0.0)):
        with pytest.raises(ValueError, match="reference"):
            fit_phrase_lda("numpy", docs, **bad)
    # the reference sampler still accepts them (it has the uniform fallback;
    # degenerate denominators warn, as in the seed implementation)
    with np.errstate(invalid="ignore", divide="ignore"):
        state = fit_phrase_lda("reference", docs, beta=0.0)
    assert state.n_topics == 7


def test_flat_engine_callbacks_see_token_assignments():
    """Callbacks must observe populated per-token assignments (the
    init-time expansion, as with the reference engine), not an empty list."""
    docs = make_phrase_docs(n_docs=5, seed=1)
    observed = {}
    for engine in ("reference", "numpy"):
        lengths = []

        def callback(iteration, state):
            lengths.append([len(a) for a in state.assignments])

        config = PhraseLDAConfig(n_topics=7, n_iterations=10, seed=11,
                                 engine=engine)
        PhraseLDA(config).fit(docs, vocabulary_size=120, callback=callback)
        observed[engine] = lengths
    assert observed["numpy"] == observed["reference"]
    assert all(observed["numpy"][0])  # non-empty per-doc arrays


def test_vocabulary_less_segmented_corpus_keeps_empty_slots():
    from repro.core.segmentation import SegmentedCorpus, SegmentedDocument

    corpus = SegmentedCorpus(documents=[
        SegmentedDocument(phrases=[(0, 1), (), (2,)], doc_id=0),
    ], vocabulary=None)
    state = PhraseLDA(PhraseLDAConfig(n_topics=2, n_iterations=5, seed=0)).fit(corpus)
    assert len(state.clique_assignments[0]) == 3
    assert state.vocabulary_size == 3


def test_flat_engines_reject_out_of_range_token_ids():
    """Negative ids would wrap silently (and corrupt memory in the C
    kernel); both OOB directions must fail loudly at init."""
    for docs in ([[(0,), (-1,)]], [[(0,), (5,)]]):
        with pytest.raises((ValueError, IndexError)):
            PhraseLDA(PhraseLDAConfig(n_topics=2, n_iterations=2, seed=0,
                                      engine="numpy")).fit(docs, vocabulary_size=2)


def test_resolve_engine_validates():
    with pytest.raises(ValueError):
        resolve_engine("fortran")
    assert resolve_engine("auto") in ("c", "numpy")
    assert resolve_engine("reference") == "reference"


def test_empty_and_trivial_corpora():
    for engine in ["numpy"] + (["c"] if ckernel.kernel_available() else []):
        state = fit_phrase_lda(engine, [])
        assert state.clique_assignments == []
        state = fit_phrase_lda(engine, [[], [(1,)]])
        assert len(state.clique_assignments) == 2
        assert len(state.clique_assignments[0]) == 0
        assert len(state.clique_assignments[1]) == 1


def test_segmented_corpus_empty_phrases_keep_alignment():
    """An empty phrase in a SegmentedCorpus keeps its assignment slot so
    ``clique_assignments[d]`` stays aligned with ``doc.phrases`` (the
    visualizer's topical-frequency counting zips the two)."""
    from repro.core.segmentation import SegmentedCorpus, SegmentedDocument
    from repro.text.vocabulary import Vocabulary

    vocabulary = Vocabulary()
    for word in ("alpha", "beta", "gamma"):
        vocabulary.add(word)
    corpus = SegmentedCorpus(documents=[
        SegmentedDocument(phrases=[(0, 1), (), (2,), (1, 2)], doc_id=0),
        SegmentedDocument(phrases=[(2,), (0,)], doc_id=1),
    ], vocabulary=vocabulary)

    states = {}
    engines = ["reference", "numpy"] + (["c"] if ckernel.kernel_available() else [])
    for engine in engines:
        model = PhraseLDA(PhraseLDAConfig(n_topics=3, n_iterations=20, seed=1,
                                          engine=engine))
        states[engine] = model.fit(corpus)
    for engine, state in states.items():
        # one slot per phrase, including the empty one
        assert [len(c) for c in state.clique_assignments] == [4, 2]
    for engine in engines[1:]:
        assert_states_equal(states["reference"], states[engine])

