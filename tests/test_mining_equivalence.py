"""Engine equivalence for the phrase-mining front end.

The vectorized (``"numpy"``) mining and segmentation engines must reproduce
the readable reference implementations **bit for bit**: identical frequent
phrases and counts, identical token totals and iteration counts, identical
document partitions — across datasets, supports, thresholds, length caps,
and adversarial random corpora.  These are the Algorithm 1/Algorithm 2
counterparts of ``tests/test_phrase_lda_equivalence.py``.
"""

import math
import random

import pytest

from repro.core.frequent_phrases import (
    FrequentPhraseMiner,
    MINING_ENGINES,
    PhraseMiningConfig,
    mining_token_count,
    resolve_mining_engine,
)
from repro.core.phrase_construction import (
    PhraseConstructionConfig,
    PhraseConstructor,
)
from repro.core.segmentation import (
    CorpusSegmenter,
    resolve_segmentation_engine,
)
from repro.core.significance import IndexedSignificanceScorer, SignificanceScorer
from repro.core.topmine import ToPMine, ToPMineConfig
from repro.datasets.registry import load_dataset
from repro.text.corpus import Corpus
from repro.text.flat import FlatChunks
from repro.utils.counter import HashCounter


def prepared_corpus(dataset="dblp-titles", n_documents=250, seed=7):
    """Generate and preprocess one synthetic corpus."""
    generated = load_dataset(dataset, n_documents=n_documents, seed=seed)
    return ToPMine(ToPMineConfig()).preprocess(generated.texts, name=dataset)


def mine(corpus, engine, min_support=3, max_length=None):
    """Mine ``corpus`` with the given engine."""
    return FrequentPhraseMiner(PhraseMiningConfig(
        min_support=min_support, max_phrase_length=max_length,
        engine=engine)).mine(corpus)


def assert_mining_equal(reference, fast):
    """Both engines produced the same result object contents."""
    assert reference.counter.as_dict() == fast.counter.as_dict()
    assert reference.total_tokens == fast.total_tokens
    assert reference.min_support == fast.min_support
    assert reference.iterations == fast.iterations


def random_corpus(rng, max_vocab=6):
    """A small adversarial corpus: empty docs/chunks, tiny vocabularies."""
    corpus = Corpus()
    vocabulary_size = rng.randint(2, max_vocab)
    for _ in range(rng.randint(0, 14)):
        corpus.add_document([
            [rng.randrange(vocabulary_size)
             for _ in range(rng.randint(0, 8))]
            for _ in range(rng.randint(0, 4))
        ])
    return corpus


# -- engine plumbing ------------------------------------------------------------------
def test_resolve_mining_engine():
    assert resolve_mining_engine("auto") == "numpy"
    assert resolve_mining_engine("reference") == "reference"
    assert resolve_mining_engine("numpy") == "numpy"
    with pytest.raises(ValueError, match="fortran"):
        resolve_mining_engine("fortran")
    assert set(MINING_ENGINES) == {"auto", "numpy", "reference"}


def test_resolve_segmentation_engine():
    assert resolve_segmentation_engine("auto", 5.0) == "numpy"
    assert resolve_segmentation_engine("reference", 5.0) == "reference"
    # A -inf threshold lets the reference merge zero-frequency pairs, which
    # the indexed scorer cannot express: auto degrades, explicit numpy fails.
    assert resolve_segmentation_engine("auto", float("-inf")) == "reference"
    with pytest.raises(ValueError, match="finite"):
        resolve_segmentation_engine("numpy", float("-inf"))
    with pytest.raises(ValueError, match="unknown"):
        resolve_segmentation_engine("fortran", 5.0)


# -- flat-buffer encoding -------------------------------------------------------------
def test_flat_chunks_layout():
    flat = FlatChunks.from_documents([[[1, 2], [], [3]], [], [[4]]])
    assert flat.tokens.tolist() == [1, 2, 3, 4]
    assert flat.offsets.tolist() == [0, 2, 3, 4]
    assert flat.doc_ids.tolist() == [0, 0, 2]  # empty chunk/doc dropped
    assert flat.n_documents == 3
    assert flat.n_chunks == 3
    assert flat.total_tokens == 4
    assert flat.chunk(0) == [1, 2]
    assert flat.chunk_lengths.tolist() == [2, 1, 1]
    assert flat.chunk_end_per_position().tolist() == [2, 2, 3, 4]
    assert flat.chunk_index_per_position().tolist() == [0, 0, 1, 2]


def test_flat_chunks_empty():
    flat = FlatChunks.from_documents([])
    assert flat.total_tokens == 0
    assert flat.n_chunks == 0
    assert flat.n_documents == 0


# -- Algorithm 1 equivalence ----------------------------------------------------------
@pytest.mark.parametrize("dataset", ["dblp-titles", "dblp-abstracts",
                                     "yelp-reviews"])
def test_mining_engines_match_on_datasets(dataset):
    corpus = prepared_corpus(dataset)
    for min_support in (2, 5, 10):
        for max_length in (None, 2, 3):
            assert_mining_equal(
                mine(corpus, "reference", min_support, max_length),
                mine(corpus, "numpy", min_support, max_length))


def test_mining_engines_match_on_random_corpora():
    rng = random.Random(0)
    for _ in range(150):
        corpus = random_corpus(rng)
        min_support = rng.choice([1, 2, 3])
        max_length = rng.choice([None, 1, 2, 4])
        assert_mining_equal(
            mine(corpus, "reference", min_support, max_length),
            mine(corpus, "numpy", min_support, max_length))


def test_mining_engines_match_on_empty_and_degenerate_corpora():
    for corpus in (Corpus(), ):
        assert_mining_equal(mine(corpus, "reference"), mine(corpus, "numpy"))
    singleton = Corpus()
    singleton.add_document([[0]])
    assert_mining_equal(mine(singleton, "reference", 1),
                        mine(singleton, "numpy", 1))


def test_auto_engine_is_numpy_and_identical():
    corpus = prepared_corpus(n_documents=120)
    auto = mine(corpus, "auto")
    assert FrequentPhraseMiner(PhraseMiningConfig(engine="auto")).engine == "numpy"
    assert_mining_equal(mine(corpus, "reference"), auto)


# -- Algorithm 2 equivalence ----------------------------------------------------------
def segment_with(corpus, mining, engine, threshold=5.0, cap=None):
    """Segment ``corpus`` with the given engine."""
    return CorpusSegmenter(mining, PhraseConstructionConfig(
        significance_threshold=threshold, max_phrase_words=cap,
        engine=engine)).segment(corpus)


def assert_partitions_equal(reference, fast):
    """Both segmentations produced identical per-document partitions."""
    assert len(reference) == len(fast)
    for ref_doc, fast_doc in zip(reference, fast):
        assert ref_doc.phrases == fast_doc.phrases
        assert ref_doc.doc_id == fast_doc.doc_id


@pytest.mark.parametrize("dataset", ["dblp-titles", "dblp-abstracts",
                                     "yelp-reviews"])
def test_segmentation_engines_match_on_datasets(dataset):
    corpus = prepared_corpus(dataset)
    mining = mine(corpus, "numpy")
    for threshold in (-2.0, 0.0, 2.0, 5.0):
        for cap in (None, 1, 2, 3):
            assert_partitions_equal(
                segment_with(corpus, mining, "reference", threshold, cap),
                segment_with(corpus, mining, "numpy", threshold, cap))


def test_segmentation_engines_match_on_random_corpora():
    rng = random.Random(3)
    for _ in range(150):
        corpus = random_corpus(rng)
        mining = mine(corpus, "numpy", min_support=rng.choice([1, 2, 3]))
        if mining.total_tokens == 0:
            continue
        threshold = rng.choice([-1.0, 0.0, 1.0, 5.0])
        cap = rng.choice([None, 1, 2, 3])
        assert_partitions_equal(
            segment_with(corpus, mining, "reference", threshold, cap),
            segment_with(corpus, mining, "numpy", threshold, cap))


def test_segment_document_matches_batched_segment():
    corpus = prepared_corpus(n_documents=150)
    mining = mine(corpus, "numpy")
    segmenter = CorpusSegmenter(mining, PhraseConstructionConfig(engine="numpy"))
    batched = segmenter.segment(corpus)
    for doc in corpus:
        assert (segmenter.segment_document(doc.chunks, doc_id=doc.doc_id).phrases
                == batched[doc.doc_id].phrases)


def test_indexed_scorer_matches_reference_scores_bitwise():
    corpus = prepared_corpus(n_documents=200)
    mining = mine(corpus, "numpy")
    reference = SignificanceScorer.from_mining_result(mining)
    indexed = IndexedSignificanceScorer.from_mining_result(mining)
    checked = 0
    for phrase in indexed.phrases:
        if len(phrase) < 2:
            continue
        for split in range(1, len(phrase)):
            left, right = phrase[:split], phrase[split:]
            left_id = indexed.id_of.get(left)
            right_id = indexed.id_of.get(right)
            if left_id is None or right_id is None:
                continue
            significance, merged_id = indexed.pair_score(left_id, right_id)
            # Bit-identical, not approximately equal: construction decisions
            # depend on exact comparisons.
            assert significance == reference.significance(left, right)
            assert indexed.phrases[merged_id] == phrase
            checked += 1
    assert checked > 50  # the corpus actually exercised the table
    assert indexed.pair_score(-1, 0) == (float("-inf"), -1)


# -- satellite: construction cap regression ------------------------------------------
def brute_force_construct(chunk, scorer, threshold, max_words):
    """Recompute-everything greedy oracle for Algorithm 2.

    At every step, score *all* adjacent pairs whose merge respects the cap
    and apply the most significant one (leftmost on ties) while it clears
    the threshold.  The heap-based constructors must match this partition —
    in particular, a merge skipped by ``max_phrase_words`` must not stop
    merging elsewhere in the chunk.
    """
    phrases = [(w,) for w in chunk]
    while len(phrases) > 1:
        best_index, best_significance = None, float("-inf")
        for i in range(len(phrases) - 1):
            if (max_words is not None
                    and len(phrases[i]) + len(phrases[i + 1]) > max_words):
                continue
            significance = scorer.significance(phrases[i], phrases[i + 1])
            if significance > best_significance:
                best_index, best_significance = i, significance
        if best_index is None or best_significance < threshold:
            break
        phrases[best_index:best_index + 2] = [
            phrases[best_index] + phrases[best_index + 1]]
    return phrases


def test_capped_construction_pins_expected_partition():
    """Regression: a cap-skipped merge must not terminate merging early.

    The chunk ``a b c d`` has three significant pairs; with
    ``max_phrase_words=2`` the top-scoring follow-up merges are blocked but
    the remaining pair-merges must still be applied, yielding the pinned
    two-bigram partition.
    """
    counts = {
        (0,): 100, (1,): 100, (2,): 100, (3,): 100,
        (0, 1): 60, (1, 2): 50, (2, 3): 55,
        (0, 1, 2): 40, (0, 1, 2, 3): 30, (1, 2, 3): 35,
    }
    scorer = SignificanceScorer(HashCounter(counts), 1000)
    config = PhraseConstructionConfig(significance_threshold=1.0,
                                      max_phrase_words=2)
    result = PhraseConstructor(scorer, config).construct([0, 1, 2, 3])
    # (0,1) merges first (highest significance), then (2,3); every longer
    # merge is cap-blocked.  Nothing terminates early.
    assert result.phrases == [(0, 1), (2, 3)]
    assert result.phrases == brute_force_construct(
        [0, 1, 2, 3], scorer, 1.0, 2)


def test_capped_construction_matches_brute_force_oracle():
    """Both constructors match the oracle across random capped runs."""
    rng = random.Random(11)
    for _ in range(200):
        corpus = random_corpus(rng, max_vocab=4)
        mining = mine(corpus, "numpy", min_support=rng.choice([1, 2]))
        if mining.total_tokens == 0:
            continue
        scorer = SignificanceScorer.from_mining_result(mining)
        threshold = rng.choice([0.0, 1.0, 3.0])
        cap = rng.choice([2, 3, 4])
        config = PhraseConstructionConfig(significance_threshold=threshold,
                                          max_phrase_words=cap)
        chunk = [rng.randrange(4) for _ in range(rng.randint(2, 7))]
        expected = brute_force_construct(chunk, scorer, threshold, cap)
        assert PhraseConstructor(scorer, config).construct(chunk).phrases == expected
        fast = CorpusSegmenter(mining, PhraseConstructionConfig(
            significance_threshold=threshold, max_phrase_words=cap,
            engine="numpy")).segment_document([chunk])
        assert fast.phrases == expected


# -- satellite: support scaling uses the mining-visible token count -------------------
def test_scaled_support_uses_chunked_token_count():
    """``scaled_to_corpus`` must scale by what mining sees and reports.

    On punctuation-heavy text the chunked token count that mining actually
    consumes (``FrequentPhraseMiningResult.total_tokens``) is far below the
    raw token count of the documents; the support threshold must follow the
    former exactly.
    """
    from repro.text.tokenizer import tokenize

    texts = ["data, mining; systems! query? (processing)." * 4] * 50
    corpus = ToPMine(ToPMineConfig()).preprocess(texts)
    visible = mining_token_count(corpus)
    raw = sum(len(tokenize(text)) for text in texts)
    assert visible < raw / 2  # punctuation-heavy: the two diverge widely

    config = PhraseMiningConfig.scaled_to_corpus(
        corpus, support_per_million_tokens=1e5, minimum=1)
    result = FrequentPhraseMiner(config).mine(corpus)
    assert result.total_tokens == visible
    assert config.min_support == max(1, int(round(1e5 * visible / 1e6)))


def test_mining_token_count_skips_empty_chunks():
    corpus = Corpus()
    corpus.add_document([[1, 2], [], [3]])
    corpus.add_document([])
    assert mining_token_count(corpus) == 3
    assert mine(corpus, "numpy", 1).total_tokens == 3
    assert mine(corpus, "reference", 1).total_tokens == 3


# -- significance guard ---------------------------------------------------------------
def test_non_finite_threshold_falls_back_to_reference_engine():
    corpus = prepared_corpus(n_documents=80)
    mining = mine(corpus, "numpy", min_support=2)
    config = PhraseConstructionConfig(
        significance_threshold=-math.inf, engine="auto")
    segmenter = CorpusSegmenter(mining, config)
    assert segmenter.engine == "reference"
    segmented = segmenter.segment(corpus)
    assert segmented.num_tokens == mining_token_count(corpus)
