"""repro.utils.retry + the serve client's retry contract.

RetryPolicy is pure arithmetic, so its backoff schedule is asserted
exactly (deterministic jitter included).  The client tests monkeypatch
``urllib.request.urlopen`` — no sockets, no sleeps — to pin the retry
classification: connection errors retry for every method, read timeouts
retry for idempotent GETs only, HTTP errors never retry, and a deadline
caps the whole call.
"""

import socket
import urllib.error

import pytest

from repro.serve.client import ServeClient, ServeError
from repro.utils.retry import RetryPolicy


# -- RetryPolicy -----------------------------------------------------------------------
def test_delay_schedule_without_jitter():
    policy = RetryPolicy(retries=5, base_delay=0.1, max_delay=0.5,
                         jitter=0.0)
    assert [policy.delay(a) for a in (1, 2, 3, 4, 5)] == \
        [0.1, 0.2, 0.4, 0.5, 0.5]


def test_jitter_is_deterministic_and_bounded():
    policy = RetryPolicy(retries=3, base_delay=0.1, max_delay=2.0,
                         jitter=0.25)
    for attempt in (1, 2, 3):
        raw = min(0.1 * 2 ** (attempt - 1), 2.0)
        first = policy.delay(attempt, token="t")
        assert first == policy.delay(attempt, token="t")  # reproducible
        assert raw * 0.75 <= first <= raw                 # bounded below raw
    # Different tokens de-synchronize their schedules.
    assert policy.delay(2, token="a") != policy.delay(2, token="b")


def test_call_retries_then_succeeds():
    calls = {"n": 0}
    pauses = []

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise ConnectionError("boom")
        return "ok"

    policy = RetryPolicy(retries=4, base_delay=0.05, jitter=0.0)
    result = policy.call(flaky, retry_on=(ConnectionError,),
                         sleep=pauses.append)
    assert result == "ok"
    assert calls["n"] == 3
    assert pauses == [0.05, 0.1]


def test_call_exhausts_retries():
    policy = RetryPolicy(retries=2, base_delay=0.01, jitter=0.0)
    calls = {"n": 0}

    def always_fails():
        calls["n"] += 1
        raise OSError("down")

    with pytest.raises(OSError, match="down"):
        policy.call(always_fails, retry_on=(OSError,), sleep=lambda _: None)
    assert calls["n"] == 3  # 1 try + 2 retries


def test_call_does_not_retry_unlisted_exceptions():
    policy = RetryPolicy(retries=5, base_delay=0.01)
    calls = {"n": 0}

    def raises_value_error():
        calls["n"] += 1
        raise ValueError("not retryable")

    with pytest.raises(ValueError):
        policy.call(raises_value_error, retry_on=(OSError,),
                    sleep=lambda _: None)
    assert calls["n"] == 1


def test_call_deadline_stops_retrying():
    """Once sleeping would cross the deadline, the last error surfaces."""
    policy = RetryPolicy(retries=100, base_delay=10.0, max_delay=10.0,
                         jitter=0.0, deadline=5.0)
    now = {"t": 0.0}

    def clock():
        return now["t"]

    def failing():
        now["t"] += 1.0
        raise ConnectionError("still down")

    slept = []
    with pytest.raises(ConnectionError):
        policy.call(failing, retry_on=(ConnectionError,),
                    sleep=slept.append, clock=clock)
    assert not slept  # the 10s pause would blow the 5s budget


def test_on_retry_callback_sees_each_attempt():
    policy = RetryPolicy(retries=3, base_delay=0.01, jitter=0.0)
    seen = []

    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise OSError("x")
        return 1

    policy.call(flaky, retry_on=(OSError,), sleep=lambda _: None,
                on_retry=lambda attempt, exc, pause:
                seen.append((attempt, type(exc).__name__, pause)))
    assert seen == [(1, "OSError", 0.01), (2, "OSError", 0.02)]


def test_policy_validates_parameters():
    with pytest.raises(ValueError):
        RetryPolicy(retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-0.1)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=2.0, max_delay=1.0)


# -- ServeClient classification --------------------------------------------------------
class _FakeUrlopen:
    """Scripted urlopen stand-in: raises each queued exception in turn."""

    def __init__(self, failures):
        self.failures = list(failures)
        self.calls = 0

    def __call__(self, request, timeout=None):
        self.calls += 1
        if self.failures:
            raise self.failures.pop(0)
        raise AssertionError("test never expects a successful reply")


def _no_sleep(monkeypatch):
    import repro.serve.client as client_module
    monkeypatch.setattr(client_module.time, "sleep", lambda _: None)


def test_client_retries_connection_errors_for_posts(monkeypatch):
    _no_sleep(monkeypatch)
    fake = _FakeUrlopen([ConnectionRefusedError("refused")] * 3)
    monkeypatch.setattr("urllib.request.urlopen", fake)
    client = ServeClient("http://127.0.0.1:1", retries=2, retry_delay=0.0)
    with pytest.raises(ServeError, match="unreachable.*3 attempt"):
        client.infer(["doc"])
    assert fake.calls == 3


def test_client_retries_timeouts_for_gets_only(monkeypatch):
    _no_sleep(monkeypatch)
    fake = _FakeUrlopen([socket.timeout("read timed out")] * 3)
    monkeypatch.setattr("urllib.request.urlopen", fake)
    client = ServeClient("http://127.0.0.1:1", retries=2, retry_delay=0.0)
    with pytest.raises(ServeError, match="timed out"):
        client.health()
    assert fake.calls == 3  # GET: retried to exhaustion

    fake = _FakeUrlopen([urllib.error.URLError(socket.timeout("slow"))] * 3)
    monkeypatch.setattr("urllib.request.urlopen", fake)
    with pytest.raises(ServeError, match="timed out.*1 attempt"):
        client.infer(["doc"])
    assert fake.calls == 1  # POST timeout: might have executed — no retry


def test_client_never_retries_http_errors(monkeypatch):
    _no_sleep(monkeypatch)
    fake = _FakeUrlopen([urllib.error.HTTPError(
        "http://x", 503, "busy", None, None)] * 2)
    monkeypatch.setattr("urllib.request.urlopen", fake)
    client = ServeClient("http://127.0.0.1:1", retries=2, retry_delay=0.0)
    with pytest.raises(ServeError) as excinfo:
        client.health()
    assert excinfo.value.status == 503
    assert fake.calls == 1


def test_client_deadline_bounds_the_whole_call(monkeypatch):
    """A deadline stops retrying even when retries remain."""
    _no_sleep(monkeypatch)
    import repro.serve.client as client_module
    now = {"t": 0.0}
    monkeypatch.setattr(client_module.time, "monotonic",
                        lambda: now["t"])

    def slow_failure(request, timeout=None):
        now["t"] += 2.0
        raise ConnectionRefusedError("refused")

    monkeypatch.setattr("urllib.request.urlopen", slow_failure)
    client = ServeClient("http://127.0.0.1:1", retries=50,
                         retry_delay=0.0, deadline=3.0)
    with pytest.raises(ServeError):
        client.health()
    # 2 attempts consume 4s of the 3s budget; a third never starts.
    assert now["t"] <= 4.0


def test_client_validates_retry_parameters():
    with pytest.raises(ValueError):
        ServeClient("http://x", retries=-1)
    with pytest.raises(ValueError):
        ServeClient("http://x", retry_delay=1.0, max_retry_delay=0.5)
    with pytest.raises(ValueError):
        ServeClient("http://x", deadline=0.0)
