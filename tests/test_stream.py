"""repro.stream: log append/dedup/replay, mergeable mining statistics, the
refresh determinism contract, incremental-cost instrumentation, recovery,
the background supervisor, and the stream → serve hot-swap loop."""

import json
import os
import shutil
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.frequent_phrases import FrequentPhraseMiner, PhraseMiningConfig
from repro.core.phrase_lda import PhraseLDA
from repro.core.topmine import ToPMine
from repro.io.artifacts import ModelBundle, _read_npz, save_bundle
from repro.stream import (
    AccumulatedCounts,
    DocumentLog,
    ShardStats,
    StreamConfig,
    StreamError,
    StreamLogError,
    StreamSupervisor,
    TopicStream,
)
from repro.stream.counters import encode_texts
from repro.text.flat import FlatChunks
from repro.text.preprocess import PreprocessConfig, Preprocessor
from repro.text.vocabulary import Vocabulary
from repro.datasets.registry import load_dataset

N_DOCS = 420
SEED = 7


@pytest.fixture(scope="module")
def titles():
    """Raw dblp titles split into three ingest batches."""
    texts = load_dataset("dblp-titles", n_documents=N_DOCS, seed=SEED).texts
    third = N_DOCS // 3
    return texts[:third], texts[third:2 * third], texts[2 * third:]


def _stream_config(**overrides):
    defaults = dict(n_topics=4, n_iterations=10, alpha=0.5, seed=SEED,
                    source="dblp-titles")
    defaults.update(overrides)
    return StreamConfig(**defaults)


# -- document log -----------------------------------------------------------------------
def test_log_append_dedup_and_replay(tmp_path):
    log = DocumentLog.create(tmp_path / "log")
    first = log.append(["alpha beta", "gamma", "alpha beta"], source="t")
    assert first.n_appended == 2          # in-batch duplicate dropped
    assert first.n_duplicates == 1
    assert first.doc_ids == [0, 1]
    second = log.append(["gamma", "delta epsilon"])
    assert second.n_appended == 1         # cross-batch duplicate dropped
    assert second.n_duplicates == 1
    assert log.n_documents == 3
    assert log.shard_names() == ["shard-00001", "shard-00002"]
    # Replay order is shard order x line order; random access agrees.
    assert list(log.iter_texts()) == ["alpha beta", "gamma", "delta epsilon"]
    assert log.get(2) == "delta epsilon"
    with pytest.raises(IndexError):
        log.get(3)
    # A reopened (cross-process) log sees the same state.
    reopened = DocumentLog.open(tmp_path / "log")
    assert list(reopened.iter_texts()) == list(log.iter_texts())
    assert reopened.known_hashes() == log.known_hashes()


def test_log_all_duplicates_creates_no_shard(tmp_path):
    log = DocumentLog.create(tmp_path / "log")
    log.append(["one", "two"])
    result = log.append(["two", "one"])
    assert result.shard is None
    assert result.n_appended == 0 and result.n_duplicates == 2
    assert log.n_shards == 1


def test_log_validation_errors(tmp_path):
    with pytest.raises(StreamLogError, match="no document log"):
        DocumentLog.open(tmp_path / "missing")
    log = DocumentLog.create(tmp_path / "log")
    log.append(["a"])
    with pytest.raises(StreamLogError, match="already exists"):
        DocumentLog.create(tmp_path / "log")
    manifest_path = tmp_path / "log" / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["version"] = 99
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(StreamLogError, match="newer than this reader"):
        DocumentLog.open(tmp_path / "log")
    manifest_path.write_text("{not json")
    with pytest.raises(StreamLogError, match="unreadable manifest"):
        DocumentLog.open(tmp_path / "log")


# -- mergeable mining statistics ----------------------------------------------------------
def test_shard_stats_round_trip(tmp_path, titles):
    vocabulary = Vocabulary()
    documents = encode_texts(list(titles[0]) + [""],  # plus an empty doc
                             Preprocessor(), vocabulary)
    stats = ShardStats.compute("shard-00001", documents)
    path = stats.save(tmp_path / "stats.npz")
    loaded = ShardStats.load(path)
    assert loaded.name == stats.name
    assert loaded.documents == stats.documents
    assert loaded.documents[-1] == []     # the empty doc kept its slot
    assert loaded.counter.as_dict() == stats.counter.as_dict()
    assert loaded.total_tokens == stats.total_tokens


@pytest.mark.parametrize("engine", ["numpy", "reference"])
def test_merged_shard_counts_equal_offline_miner(titles, engine):
    """Counting shards separately and merging == mining the whole snapshot,
    bit for bit: phrases, counts, total_tokens, support, iterations."""
    snapshot = [text for batch in titles for text in batch]
    corpus = Preprocessor().build_corpus(snapshot, name="x")
    offline = FrequentPhraseMiner(
        PhraseMiningConfig.scaled_to_corpus(corpus, engine=engine)).mine(corpus)

    vocabulary = Vocabulary()
    preprocessor = Preprocessor()
    accumulated = AccumulatedCounts()
    documents = []
    for index, batch in enumerate(titles):
        encoded = encode_texts(batch, preprocessor, vocabulary)
        documents.extend(encoded)
        accumulated.merge_shard(
            ShardStats.compute(f"s{index}", encoded, engine=engine))
    merged = accumulated.mining_result(FlatChunks.from_documents(documents))

    assert merged.min_support == offline.min_support
    assert merged.total_tokens == offline.total_tokens
    assert merged.counter.as_dict() == offline.counter.as_dict()
    assert merged.iterations == offline.iterations
    # Vocabulary ids were never remapped: shard-by-shard growth assigns the
    # same ids (and frequencies) as the offline single pass.
    assert vocabulary.export_entries() == corpus.vocabulary.export_entries()


def test_merged_counts_with_cap_and_fixed_support(titles):
    snapshot = [text for batch in titles for text in batch]
    corpus = Preprocessor().build_corpus(snapshot, name="x")
    offline = FrequentPhraseMiner(PhraseMiningConfig(
        min_support=4, max_phrase_length=2)).mine(corpus)
    vocabulary, preprocessor = Vocabulary(), Preprocessor()
    accumulated = AccumulatedCounts()
    documents = []
    for index, batch in enumerate(titles):
        encoded = encode_texts(batch, preprocessor, vocabulary)
        documents.extend(encoded)
        accumulated.merge_shard(
            ShardStats.compute(f"s{index}", encoded, max_length=2))
    merged = accumulated.mining_result(FlatChunks.from_documents(documents),
                                       min_support=4, max_length=2)
    assert merged.counter.as_dict() == offline.counter.as_dict()
    assert merged.iterations == offline.iterations == 2


def test_accumulated_counts_round_trip_and_double_merge(tmp_path, titles):
    vocabulary, preprocessor = Vocabulary(), Preprocessor()
    accumulated = AccumulatedCounts()
    stats = ShardStats.compute(
        "s0", encode_texts(titles[0], preprocessor, vocabulary))
    accumulated.merge_shard(stats)
    with pytest.raises(Exception, match="already merged"):
        accumulated.merge_shard(stats)
    path = accumulated.save(tmp_path / "counts.npz")
    loaded = AccumulatedCounts.load(path)
    assert loaded.counter.as_dict() == accumulated.counter.as_dict()
    assert loaded.total_tokens == accumulated.total_tokens
    assert loaded.shard_names == ["s0"]


# -- the determinism contract -------------------------------------------------------------
def _functional_sections(manifest):
    return {key: manifest[key] for key in
            ("format", "version", "kind", "mining", "construction",
             "preprocess", "model")}


@pytest.mark.parametrize("engine,lda_engine", [
    ("auto", "auto"),
    ("reference", "reference"),
])
def test_stream_refresh_matches_offline_pipeline(tmp_path, titles, engine,
                                                 lda_engine):
    """A stream-triggered refresh is bit-identical — every array (topic
    tables, vocabulary, phrase table) and the functional manifest payload —
    to the offline mine/fit pipeline on the equivalent corpus snapshot."""
    config = _stream_config(engine=engine, lda_engine=lda_engine)
    stream = TopicStream.create(tmp_path / "stream", config)
    for batch in titles:
        stream.ingest(batch)
    report = stream.refresh(force=True)
    assert report.version == 1

    snapshot = list(stream.log.iter_texts())  # the log's replay order
    pipeline = ToPMine(config.topmine_config())
    corpus = pipeline.preprocess(snapshot, name="dblp-titles")
    mining = pipeline.mine_phrases(corpus)
    segmented = pipeline.segment(corpus, mining)
    state = PhraseLDA(config.phrase_lda_config()).fit(segmented)
    offline = ModelBundle.from_fit(
        segmented, state, mining,
        construction=config.construction_config(),
        preprocess=config.preprocess, metadata={})
    offline_path = tmp_path / "offline.npz"
    save_bundle(offline_path, offline)

    stream_manifest, stream_arrays = _read_npz(report.path)
    offline_manifest, offline_arrays = _read_npz(offline_path)
    assert set(stream_arrays) == set(offline_arrays)
    for name in sorted(stream_arrays):
        assert np.array_equal(stream_arrays[name], offline_arrays[name]), \
            f"array {name!r} differs from the offline pipeline's"
    assert _functional_sections(stream_manifest) == \
        _functional_sections(offline_manifest)
    # The published current.npz is byte-identical to the versioned file.
    assert stream.current_model_path.read_bytes() == report.path.read_bytes()


def test_refresh_is_reproducible_across_reopen(tmp_path, titles):
    """Re-opening the stream and refreshing again (same snapshot, same
    seed) publishes a new version with identical model arrays."""
    stream = TopicStream.create(tmp_path / "stream", _stream_config())
    stream.ingest(titles[0])
    first = stream.refresh(force=True)
    second = TopicStream.open(tmp_path / "stream").refresh(force=True)
    assert second.version == first.version + 1
    _, first_arrays = _read_npz(first.path)
    _, second_arrays = _read_npz(second.path)
    for name in first_arrays:
        assert np.array_equal(first_arrays[name], second_arrays[name])


# -- incremental cost ---------------------------------------------------------------------
def test_ingest_tokenizes_only_the_delta(tmp_path, titles, monkeypatch):
    """Ingesting shard N+1 preprocesses only the new documents, and a
    refresh preprocesses none — old shards are never re-tokenized."""
    calls = {"n": 0}
    original = Preprocessor.process_text

    def counting(self, text):
        calls["n"] += 1
        return original(self, text)

    monkeypatch.setattr(Preprocessor, "process_text", counting)
    stream = TopicStream.create(tmp_path / "stream", _stream_config())

    report_one = stream.ingest(titles[0])
    assert calls["n"] == report_one.n_documents
    after_one = calls["n"]

    report_two = stream.ingest(titles[1])
    assert calls["n"] == after_one + report_two.n_documents
    after_two = calls["n"]

    # Duplicates are dropped by the hash index before any tokenization.
    stream.ingest(titles[0])
    assert calls["n"] == after_two

    stream.refresh(force=True)
    assert calls["n"] == after_two, "refresh must not re-tokenize anything"

    # The metrics agree: every token was counted exactly once at ingest.
    expected_tokens = report_one.n_tokens + report_two.n_tokens
    assert stream.metrics.counter("stream_ingest_tokens_total") == \
        expected_tokens
    assert stream.metrics.counter("stream_ingested_documents_total") == \
        report_one.n_documents + report_two.n_documents


# -- policy, versions, publishing -----------------------------------------------------------
def test_refresh_policy_and_version_sequence(tmp_path, titles):
    config = _stream_config(refresh_min_documents=10_000)
    stream = TopicStream.create(tmp_path / "stream", config)
    stream.ingest(titles[0])
    assert not stream.should_refresh()
    assert stream.refresh() is None       # policy declines
    report = stream.refresh(force=True)   # force overrides
    assert report.version == 1
    assert stream.pending_documents == 0
    assert stream.version_path(1).exists()
    assert stream.current_model_path.exists()
    stream.ingest(titles[1])
    assert stream.refresh() is None       # still below the threshold
    forced = stream.refresh(force=True)
    assert forced.version == 2
    assert {p.name for p in stream.models_dir.glob("model-v*.npz")} == \
        {"model-v00001.npz", "model-v00002.npz"}


def test_refresh_requires_documents(tmp_path):
    stream = TopicStream.create(tmp_path / "stream", _stream_config())
    with pytest.raises(StreamError, match="no documents"):
        stream.refresh(force=True)


def test_stream_create_open_and_validation(tmp_path):
    with pytest.raises(StreamError, match="no stream"):
        TopicStream.open(tmp_path / "missing")
    with pytest.raises(StreamError, match="min_word_frequency"):
        TopicStream.create(tmp_path / "bad", StreamConfig(
            preprocess=PreprocessConfig(min_word_frequency=3)))
    stream = TopicStream.create(tmp_path / "stream", _stream_config())
    with pytest.raises(StreamError, match="already exists"):
        TopicStream.create(tmp_path / "stream", _stream_config())
    reopened = TopicStream.open(tmp_path / "stream")
    assert reopened.config.n_topics == stream.config.n_topics
    assert reopened.config.seed == SEED
    description = reopened.describe()
    assert description["published_version"] == 0
    assert description["n_documents"] == 0


# -- crash recovery -------------------------------------------------------------------------
def test_recovery_finishes_half_done_ingest(tmp_path, titles):
    """A shard committed to the log but missing its derived state (the
    crash window) is recovered on the next operation, bit-identically to a
    clean ingest."""
    clean = TopicStream.create(tmp_path / "clean", _stream_config())
    clean.ingest(titles[0])
    clean.ingest(titles[1])
    clean_report = clean.refresh(force=True)

    crashed = TopicStream.create(tmp_path / "crashed", _stream_config())
    crashed.ingest(titles[0])
    # Simulate a crash right after the log commit: the shard is logged but
    # no stats/vocabulary/counts were written.
    crashed.log.append(titles[1])
    recovered_report = TopicStream.open(tmp_path / "crashed").refresh(
        force=True)
    _, clean_arrays = _read_npz(clean_report.path)
    _, recovered_arrays = _read_npz(recovered_report.path)
    for name in clean_arrays:
        assert np.array_equal(clean_arrays[name], recovered_arrays[name])


@pytest.mark.parametrize("damage", ["delete", "truncate"])
def test_recovery_remerges_missing_or_corrupt_counts(tmp_path, titles,
                                                     damage):
    """Losing or corrupting the accumulated counts (crash during the final
    state write) re-merges them from the per-shard stats files instead of
    wedging the stream."""
    stream = TopicStream.create(tmp_path / "stream", _stream_config())
    stream.ingest(titles[0])
    stream.ingest(titles[1])
    baseline = stream.refresh(force=True)
    counts_path = tmp_path / "stream" / "counts.npz"
    if damage == "delete":
        os.remove(counts_path)
    else:
        counts_path.write_bytes(counts_path.read_bytes()[:40])
    report = TopicStream.open(tmp_path / "stream").refresh(force=True)
    _, baseline_arrays = _read_npz(baseline.path)
    _, recovered_arrays = _read_npz(report.path)
    for name in baseline_arrays:
        assert np.array_equal(baseline_arrays[name], recovered_arrays[name])


def test_refresh_never_writes_ingest_owned_state(tmp_path, titles):
    """Refreshes recover in memory only: the ingester stays the single
    writer of log/stats/vocabulary/counts, so a supervisor refresh can
    never race an external ingest's commit window file for file."""
    stream = TopicStream.create(tmp_path / "stream", _stream_config())
    stream.ingest(titles[0])
    stream.log.append(titles[1])  # crash-simulated: logged, nothing derived
    vocabulary_before = (tmp_path / "stream" / "vocabulary.json").read_bytes()
    counts_before = (tmp_path / "stream" / "counts.npz").read_bytes()
    TopicStream.open(tmp_path / "stream").refresh(force=True)
    assert not (tmp_path / "stream" / "stats" / "shard-00002.npz").exists()
    assert (tmp_path / "stream" / "vocabulary.json").read_bytes() == \
        vocabulary_before
    assert (tmp_path / "stream" / "counts.npz").read_bytes() == counts_before
    # The next ingest persists the recovery (it owns the state files).
    TopicStream.open(tmp_path / "stream").ingest([])
    assert (tmp_path / "stream" / "stats" / "shard-00002.npz").exists()


def test_refresh_never_reuses_a_version_number(tmp_path, titles):
    """A crash between writing model-vNNNNN.npz and recording the version
    (or a competing refresher) must not overwrite the immutable file: the
    next version is derived from disk as well as stream.json."""
    stream = TopicStream.create(tmp_path / "stream", _stream_config())
    stream.ingest(titles[0])
    stream.refresh(force=True)
    v1_bytes = stream.version_path(1).read_bytes()
    # Crash-simulate: the version file landed but stream.json did not.
    stream_file = tmp_path / "stream" / "stream.json"
    payload = json.loads(stream_file.read_text())
    payload["published"] = {"version": 0, "n_documents": 0}
    stream_file.write_text(json.dumps(payload))
    reopened = TopicStream.open(tmp_path / "stream")
    assert reopened.published_version == 0
    report = reopened.refresh(force=True)
    assert report.version == 2
    assert stream.version_path(1).read_bytes() == v1_bytes  # untouched


# -- supervisor -----------------------------------------------------------------------------
def test_supervisor_publishes_in_background(tmp_path, titles):
    stream = TopicStream.create(tmp_path / "stream", _stream_config())
    supervisor = StreamSupervisor(tmp_path / "stream", poll_interval=0.05)
    supervisor.start()
    try:
        stream.ingest(titles[0])
        supervisor.notify()
        assert supervisor.wait_for_version(1, timeout=60)
        stream.ingest(titles[1])
        supervisor.notify()
        assert supervisor.wait_for_version(2, timeout=60)
        assert supervisor.last_report is not None
        assert supervisor.last_report.version == 2
        assert supervisor.last_error is None
    finally:
        supervisor.stop()
    assert TopicStream.open(tmp_path / "stream").published_version == 2


def test_supervisor_survives_refresh_errors(tmp_path):
    supervisor = StreamSupervisor(tmp_path / "nonexistent",
                                  poll_interval=0.01)
    supervisor.start()
    try:
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline and \
                supervisor.metrics.counter("stream_refresh_errors_total") == 0:
            time.sleep(0.01)
        assert supervisor.metrics.counter("stream_refresh_errors_total") > 0
        assert "cannot open stream" in (supervisor.last_error or "")
    finally:
        supervisor.stop()


def test_supervisor_backs_off_after_consecutive_errors(tmp_path):
    """Consecutive failures grow the poll delay (capped); notify() and a
    clean poll reset it."""
    supervisor = StreamSupervisor(tmp_path / "nonexistent",
                                  poll_interval=0.05, max_backoff=5.0)
    assert supervisor._poll_delay() == 0.05
    delays = []
    for _ in range(8):
        supervisor._poll_once()  # cannot open stream → error
        delays.append(supervisor._poll_delay())
    assert supervisor._consecutive_errors == 8
    assert delays == sorted(delays)          # monotone growth
    assert delays[-1] > 1.0                  # well past the base interval
    assert max(delays) <= 5.0                # capped at max_backoff
    with pytest.raises(ValueError, match="max_backoff"):
        StreamSupervisor(tmp_path, poll_interval=1.0, max_backoff=0.5)


def test_supervisor_recovers_and_says_so(tmp_path):
    """The first clean poll after errors emits the recovery counter and
    resets the backoff."""
    root = tmp_path / "stream"
    supervisor = StreamSupervisor(root, poll_interval=0.01)
    supervisor.start()
    try:
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and \
                supervisor.metrics.counter(
                    "stream_refresh_errors_total") == 0:
            time.sleep(0.01)
        assert supervisor._consecutive_errors > 0
        TopicStream.create(root, _stream_config())  # the stream appears
        supervisor.notify()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and \
                supervisor.metrics.counter(
                    "stream_refresh_recoveries_total") == 0:
            supervisor.notify()
            time.sleep(0.01)
        assert supervisor.metrics.counter(
            "stream_refresh_recoveries_total") == 1
        assert supervisor._consecutive_errors == 0
        assert supervisor._poll_delay() == 0.01  # backoff reset
    finally:
        supervisor.stop()


# -- the closed loop: stream publish -> live server hot-swap ---------------------------------
def test_stream_publish_hot_swaps_live_server_under_load(tmp_path, titles):
    """Zero-downtime proof over the real stack: a server under concurrent
    /v1/infer load across a stream publish returns no errors and switches
    model versions."""
    from repro.serve import ModelRegistry, ReproServer, ServeClient

    stream = TopicStream.create(tmp_path / "stream", _stream_config())
    stream.ingest(titles[0])
    stream.refresh(force=True)

    registry = ModelRegistry()
    registry.register("stream", stream.current_model_path)
    server = ReproServer(registry, port=0, batch_delay=0.001)
    server.start_background()
    errors = []
    stop = threading.Event()

    def hammer(index):
        client = ServeClient(server.url, timeout=30)
        while not stop.is_set():
            try:
                reply = client.infer(["frequent pattern mining"],
                                     seed=index, iterations=3)
                assert len(reply["documents"]) == 1
            except Exception as exc:  # any error fails the zero-downtime claim
                errors.append(exc)
                return

    try:
        with ThreadPoolExecutor(3) as pool:
            workers = [pool.submit(hammer, index) for index in range(3)]
            time.sleep(0.3)           # steady-state traffic on v1
            stream.ingest(titles[1])
            report = stream.refresh(force=True)   # atomic publish of v2
            assert report.version == 2
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline and \
                    server.metrics.counter("registry_reloads_total") == 0:
                time.sleep(0.02)
            time.sleep(0.2)           # keep hammering across the swap
            stop.set()
            for worker in workers:
                worker.result(timeout=30)
        assert not errors, f"requests failed across the swap: {errors[:3]}"
        # The server switched versions (exactly one single-flight reload)...
        assert server.metrics.counter("registry_reloads_total") == 1
        served = registry.get("stream")
        assert served.bundle.metadata["stream_version"] == 2
    finally:
        stop.set()
        server.stop()


def test_cli_serve_stream_runs_initial_refresh(tmp_path, titles, capsys):
    """`repro serve --stream` on a stream with documents but no published
    model refreshes once before binding (checked without a real socket)."""
    import repro.serve as serve_module
    from repro.cli import main as cli_main

    stream = TopicStream.create(tmp_path / "stream", _stream_config())
    stream.ingest(titles[0])

    class _Boom(Exception):
        pass

    def _no_server(*args, **kwargs):
        raise _Boom

    original = serve_module.ReproServer
    serve_module.ReproServer = _no_server
    try:
        with pytest.raises(_Boom):
            cli_main(["serve", "--stream", str(tmp_path / "stream")])
    finally:
        serve_module.ReproServer = original
    assert TopicStream.open(tmp_path / "stream").published_version == 1
    assert "initial refresh" in capsys.readouterr().out


def test_cli_serve_stream_rejects_empty_stream(tmp_path, capsys):
    from repro.cli import main as cli_main

    TopicStream.create(tmp_path / "stream", _stream_config())
    assert cli_main(["serve", "--stream", str(tmp_path / "stream")]) == 2
    assert "no documents" in capsys.readouterr().err


def test_publish_is_atomic_for_concurrent_readers(tmp_path, titles):
    """current.npz swaps inode-atomically: a reader holding the old file
    open keeps a consistent view while the name moves to the new version."""
    stream = TopicStream.create(tmp_path / "stream", _stream_config())
    stream.ingest(titles[0])
    stream.refresh(force=True)
    before = stream.current_model_path.read_bytes()
    copy = tmp_path / "held-open.npz"
    shutil.copyfile(stream.current_model_path, copy)
    stream.ingest(titles[1])
    stream.refresh(force=True)
    after = stream.current_model_path.read_bytes()
    assert before != after
    assert copy.read_bytes() == before
    _, arrays = _read_npz(stream.current_model_path)
    assert arrays  # the new file is a complete, loadable bundle
