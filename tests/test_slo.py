"""SLO burn-rate engine, continuous profiler, and their serving surface.

The tentpole contracts under test:

* :func:`~repro.obs.slo.evaluate_spec` reduces fast/slow windows into
  the multi-window burn-rate verdicts (ok / warn / breach / no_data,
  always with finite burns);
* ``repro_slo_*`` gauges render as valid exposition text that
  :func:`~repro.obs.parse_prometheus` reads back;
* the sampling profiler catches a busy thread and reports collapsed
  stacks with ``repro``-relative frame labels;
* a live server surfaces verdicts in ``/healthz`` and ``/metrics``,
  answers ``/debug/profile`` with collapsed stacks, and ``repro slo`` /
  ``repro status --slo`` digest the same data — including on a
  2-worker fleet under load with a worker killed mid-run (the PR's
  acceptance bar).
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.io.artifacts import save_bundle
from repro.obs import (
    ShardWriter,
    parse_prometheus,
    sample_value,
    shard_path,
)
from repro.obs.history import HistoryRecorder, HistoryWindow, history_dir
from repro.obs.profile import (SamplingProfiler, capture_profile,
                               frame_label, profiled)
from repro.obs.slo import (DEFAULT_SLOS, SLOSpec, evaluate_slos,
                           evaluate_spec, render_slo_gauges)
from repro.serve import ModelRegistry, ReproServer, ServeConfig, ServeFleet
from repro.serve.client import ServeClient


@pytest.fixture(scope="module")
def bundle_path(model_bundle, tmp_path_factory):
    """The session model bundle saved once for the live-server tests."""
    path = tmp_path_factory.mktemp("slo") / "model.npz"
    save_bundle(path, model_bundle)
    return path


def _ratio_window(requests, errors):
    """Frames carrying cumulative request/error counters, 1s apart."""
    return HistoryWindow([
        (float(i), {"c:http_requests_total": float(r),
                    "c:http_errors_total": float(e)})
        for i, (r, e) in enumerate(zip(requests, errors))])


_RATIO_SPEC = SLOSpec(name="http_error_ratio", kind="ratio",
                      numerator="http_errors_total",
                      denominators=("http_requests_total",), objective=0.05)


# -- spec validation -------------------------------------------------------------------
def test_spec_validation_rejects_malformed_specs():
    with pytest.raises(ValueError):
        SLOSpec(name="x", kind="median", objective=1.0, metric="m")
    with pytest.raises(ValueError):
        SLOSpec(name="x", kind="gauge", objective=0.0, metric="m")
    with pytest.raises(ValueError):
        SLOSpec(name="x", kind="ratio", objective=0.1, numerator="n")
    with pytest.raises(ValueError):
        SLOSpec(name="x", kind="quantile", objective=1.0)


# -- burn-rate reduction ---------------------------------------------------------------
def test_evaluate_spec_ok_warn_breach_and_no_data():
    # 2% errors against a 5% budget in both windows: ok, burn = 0.4.
    healthy = _ratio_window([0, 100, 200], [0, 2, 4])
    verdict = evaluate_spec(_RATIO_SPEC, healthy, healthy)
    assert verdict.status == "ok" and verdict.healthy
    assert verdict.value == pytest.approx(0.02)
    assert verdict.fast_burn == pytest.approx(0.4)
    assert verdict.slow_burn == pytest.approx(0.4)
    assert verdict.frames == 3

    # 10% errors in the fast window only: a spike the slow window
    # absorbs — warn, not breach.
    spiking = _ratio_window([0, 100], [0, 10])
    verdict = evaluate_spec(_RATIO_SPEC, spiking, healthy)
    assert verdict.status == "warn" and verdict.healthy
    assert verdict.fast_burn == pytest.approx(2.0)
    assert verdict.slow_burn == pytest.approx(0.4)

    # Both windows over budget: breach, healthy flips false.
    verdict = evaluate_spec(_RATIO_SPEC, spiking, spiking)
    assert verdict.status == "breach" and not verdict.healthy

    # Too few frames everywhere: no_data with finite zero burns.
    empty = HistoryWindow([])
    verdict = evaluate_spec(_RATIO_SPEC, empty, empty)
    assert verdict.status == "no_data" and verdict.healthy
    assert verdict.value is None
    assert verdict.fast_burn == 0.0 and verdict.slow_burn == 0.0


def test_evaluate_spec_gauge_and_as_dict_shape():
    spec = SLOSpec(name="replica_lag_docs", kind="gauge",
                   metric="replica_lag_docs", objective=10.0)
    frames = [(0.0, {"g:replica_lag_docs": 2.0}),
              (1.0, {"g:replica_lag_docs": 6.0})]
    verdict = evaluate_spec(spec, HistoryWindow(frames),
                            HistoryWindow(frames))
    assert verdict.status == "ok"
    assert verdict.value == 6.0  # latest sample, not max or mean
    payload = verdict.as_dict()
    assert set(payload) == {"name", "kind", "objective", "description",
                            "value", "fast_burn", "slow_burn", "status",
                            "frames"}
    assert json.dumps(payload)  # JSON-safe for /healthz bodies


def test_evaluate_slos_over_recorded_history(tmp_path):
    """End to end: recorder frames -> every default SLO gets a verdict."""
    writer = ShardWriter(shard_path(tmp_path, "0"))
    ticks = iter(float(i) for i in range(100))
    recorder = HistoryRecorder(tmp_path, interval=60.0,
                               inline=[("0", writer)],
                               clock=lambda: next(ticks))
    for step in range(3):
        writer.inc_counter("http_requests_total", 50)
        writer.inc_counter("http_errors_total", 1)
        writer.observe("http_v1_infer_seconds", 0.02)
        writer.flush()
        recorder.sample_once()
    recorder.stop()
    writer.close()

    verdicts = {v.name: v for v in evaluate_slos(history_dir(tmp_path))}
    assert set(verdicts) == {spec.name for spec in DEFAULT_SLOS}
    assert verdicts["http_error_ratio"].status == "ok"
    assert verdicts["http_error_ratio"].value == pytest.approx(0.02)
    assert verdicts["infer_latency_p95"].status == "ok"
    assert 0.0 < verdicts["infer_latency_p95"].value < 2.5
    # No replication gauge was ever sampled: no_data, never breach.
    assert verdicts["replica_lag_docs"].status == "no_data"
    for verdict in verdicts.values():
        assert verdict.fast_burn == verdict.fast_burn  # finite, not NaN
        assert verdict.frames >= 2 or verdict.status == "no_data"


def test_render_slo_gauges_round_trips_through_parser():
    healthy = _ratio_window([0, 100, 200], [0, 2, 4])
    verdicts = [evaluate_spec(_RATIO_SPEC, healthy, healthy)]
    text = render_slo_gauges(verdicts)
    assert "# TYPE repro_slo_objective gauge" in text
    families = parse_prometheus(text)
    labels = {"slo": "http_error_ratio"}
    assert sample_value(families, "repro_slo_objective", labels) == 0.05
    assert sample_value(families, "repro_slo_value",
                        labels) == pytest.approx(0.02)
    assert sample_value(families, "repro_slo_burn_rate_fast",
                        labels) == pytest.approx(0.4)
    assert sample_value(families, "repro_slo_burn_rate_slow",
                        labels) == pytest.approx(0.4)
    assert sample_value(families, "repro_slo_healthy", labels) == 1.0
    assert render_slo_gauges([]) == ""


# -- sampling profiler -----------------------------------------------------------------
def _busy_wait(deadline: float) -> None:
    """Spin until ``deadline`` so the sampler has something to catch."""
    while time.monotonic() < deadline:
        sum(range(500))


def test_profiler_catches_busy_thread():
    thread = threading.Thread(
        target=_busy_wait, args=(time.monotonic() + 0.5,), daemon=True)
    thread.start()
    profiler = SamplingProfiler(interval=0.005)
    profiler.start()
    time.sleep(0.3)
    profiler.stop()
    thread.join()

    assert profiler.n_samples >= 10
    collapsed = profiler.collapsed()
    assert "_busy_wait" in collapsed
    lines = [line for line in collapsed.splitlines() if line]
    counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
    assert counts == sorted(counts, reverse=True)  # hottest first
    for line in lines:
        stack = line.rsplit(" ", 1)[0]
        assert stack and all(frame for frame in stack.split(";"))


def test_profiled_contextmanager_and_capture():
    with profiled(interval=0.005) as profiler:
        _busy_wait(time.monotonic() + 0.1)
    assert profiler.n_samples >= 2
    assert "_busy_wait" in profiler.collapsed()
    # capture_profile watches *other* threads for the given duration.
    thread = threading.Thread(
        target=_busy_wait, args=(time.monotonic() + 0.4,), daemon=True)
    thread.start()
    collapsed = capture_profile(0.2, interval=0.005)
    thread.join()
    assert "_busy_wait" in collapsed
    with pytest.raises(ValueError):
        SamplingProfiler(interval=0.0)


def test_frame_labels_are_repro_relative():
    """Frames under a ``repro`` package keep the repo-relative path;
    foreign frames keep only the file name."""
    import sys

    namespace = {"sys": sys}
    code = compile("frame = sys._getframe()",
                   "/site/src/repro/serve/http.py", "exec")
    exec(code, namespace)
    assert frame_label(namespace["frame"]) == "repro/serve/http.py:<module>"
    code = compile("frame = sys._getframe()", "/usr/lib/foreign.py", "exec")
    exec(code, namespace)
    assert frame_label(namespace["frame"]) == "foreign.py:<module>"


# -- live server surface ---------------------------------------------------------------
@pytest.fixture()
def history_server(bundle_path, tmp_path):
    """A standalone server recording history every 0.1s."""
    registry = ModelRegistry()
    registry.register("m", bundle_path)
    config = ServeConfig(port=0, batch_delay=0.0,
                         metrics_dir=str(tmp_path / "metrics"),
                         history_interval_seconds=0.1)
    server = ReproServer(registry, config)
    server.start_background()
    try:
        yield server
    finally:
        server.stop()


def _wait_for_verdict_data(client, name, timeout=20.0):
    """Poll ``/healthz`` until SLO ``name`` leaves no_data (or timeout)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        verdicts = client.health().get("slo") or []
        byname = {v["name"]: v for v in verdicts}
        if byname.get(name, {}).get("status") not in (None, "no_data"):
            return byname
        time.sleep(0.1)
    raise AssertionError(f"SLO {name} stayed no_data for {timeout}s")


def test_healthz_and_metrics_surface_slo_verdicts(history_server):
    client = ServeClient(history_server.url)
    for i in range(6):
        client.infer(["mining frequent patterns"], seed=i, iterations=2)
    verdicts = _wait_for_verdict_data(client, "http_error_ratio")

    assert set(verdicts) == {spec.name for spec in DEFAULT_SLOS}
    ratio = verdicts["http_error_ratio"]
    assert ratio["status"] == "ok" and ratio["value"] == 0.0
    assert verdicts["infer_latency_p95"]["frames"] >= 2
    families = parse_prometheus(client.metrics_text())
    assert sample_value(families, "repro_slo_objective",
                        {"slo": "http_error_ratio"}) == 0.05
    assert sample_value(families, "repro_slo_healthy",
                        {"slo": "http_error_ratio"}) == 1.0


def test_healthz_without_history_omits_slo(bundle_path):
    registry = ModelRegistry()
    registry.register("m", bundle_path)
    server = ReproServer(registry, ServeConfig(port=0, batch_delay=0.0))
    server.start_background()
    try:
        health = ServeClient(server.url).health()
    finally:
        server.stop()
    assert "slo" not in health  # no metrics_dir -> no verdicts, not []


def test_debug_profile_returns_repro_stacks(history_server):
    client = ServeClient(history_server.url)
    stop = threading.Event()

    def traffic():
        while not stop.is_set():
            client_copy = ServeClient(history_server.url)
            client_copy.infer(["topic model phrases"], seed=1, iterations=2)

    thread = threading.Thread(target=traffic, daemon=True)
    thread.start()
    try:
        with urllib.request.urlopen(
                history_server.url + "/debug/profile?seconds=0.5",
                timeout=30) as reply:
            assert reply.status == 200
            collapsed = reply.read().decode("utf-8")
    finally:
        stop.set()
        thread.join(timeout=10)

    lines = [line for line in collapsed.splitlines() if line]
    assert lines, "a busy worker must produce at least one stack"
    assert any("repro/" in line for line in lines), \
        "collapsed stacks must include a frame from repro code"
    for bad in ("seconds=0", "seconds=31", "seconds=nan", "seconds=x"):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                history_server.url + f"/debug/profile?{bad}", timeout=30)
        assert excinfo.value.code == 400


# -- CLI -------------------------------------------------------------------------------
def test_slo_cli_json_and_table(history_server, capsys):
    from repro.cli import main

    client = ServeClient(history_server.url)
    for i in range(4):
        client.infer(["phrase mining"], seed=i, iterations=2)
    _wait_for_verdict_data(client, "http_error_ratio")

    assert main(["slo", "--url", history_server.url, "--json"]) == 0
    verdicts = json.loads(capsys.readouterr().out)
    assert {v["name"] for v in verdicts} == \
        {spec.name for spec in DEFAULT_SLOS}
    for verdict in verdicts:
        assert verdict["status"] in ("no_data", "ok", "warn", "breach")
        assert verdict["fast_burn"] == verdict["fast_burn"]  # finite

    assert main(["slo", "--url", history_server.url]) == 0
    table = capsys.readouterr().out
    assert "SLO" in table and "http_error_ratio" in table

    assert main(["status", "--url", history_server.url, "--slo"]) == 0
    status_table = capsys.readouterr().out
    assert "infer_latency_p95" in status_table


def test_slo_cli_fails_cleanly_without_history(bundle_path, capsys):
    from repro.cli import main

    registry = ModelRegistry()
    registry.register("m", bundle_path)
    server = ReproServer(registry, ServeConfig(port=0, batch_delay=0.0))
    server.start_background()
    try:
        assert main(["slo", "--url", server.url]) == 2
    finally:
        server.stop()
    assert "no SLO verdicts" in capsys.readouterr().err
    assert main(["slo", "--url", "http://127.0.0.1:9",
                 "--timeout", "0.5"]) == 2
    assert "error:" in capsys.readouterr().err


# -- fleet acceptance ------------------------------------------------------------------
def test_fleet_slo_verdicts_survive_worker_kill(bundle_path, capsys):
    """The PR's acceptance bar: a 2-worker fleet under load evaluates
    every declared SLO from >= 2 history frames, and killing a worker
    mid-run never produces a negative rate."""
    from repro.cli import main

    config = ServeConfig(port=0, workers=2, batch_delay=0.0,
                         history_interval_seconds=0.1)
    with ServeFleet(config, {"m": bundle_path}) as fleet:
        fleet.wait_until_ready(timeout=60)
        client = ServeClient(fleet.url)
        for i in range(10):
            client.infer(["stream of frequent phrases"], seed=i,
                         iterations=2)
        byname = _wait_for_verdict_data(client, "http_error_ratio")
        assert byname["http_error_ratio"]["frames"] >= 2
        assert byname["http_error_ratio"]["status"] == "ok"

        assert main(["slo", "--url", fleet.url, "--json"]) == 0
        verdicts = json.loads(capsys.readouterr().out)
        assert {v["name"] for v in verdicts} == \
            {spec.name for spec in DEFAULT_SLOS}

        fleet.kill_worker(0)
        deadline = time.monotonic() + 30
        while fleet.alive_workers() != [0, 1] and \
                time.monotonic() < deadline:
            time.sleep(0.1)
        for i in range(5):
            client.infer(["after the kill"], seed=i, iterations=2)
        time.sleep(0.3)  # two more history frames past the reap

        directory = history_dir(fleet.config.metrics_dir)
        from repro.obs.history import read_window
        window = read_window(directory)
        assert window.n_frames >= 2
        rate = window.counter_rate("http_requests_total")
        assert rate is not None and rate >= 0.0, \
            "a reaped worker must never fabricate a negative rate"
        for verdict in evaluate_slos(directory):
            assert verdict.fast_burn >= 0.0
            assert verdict.slow_burn >= 0.0
