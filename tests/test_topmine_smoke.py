"""End-to-end ToPMine smoke test on a tiny synthetic corpus."""

import numpy as np
import pytest

from repro.core.topmine import ToPMine, ToPMineConfig
from repro.datasets.registry import load_dataset


@pytest.fixture(scope="module")
def tiny_result():
    generated = load_dataset("dblp-titles", n_documents=60, seed=13)
    pipeline = ToPMine(ToPMineConfig(n_topics=3, min_support=3,
                                     n_iterations=15, seed=13))
    return pipeline.fit(generated.texts, name="tiny")


def test_pipeline_produces_topics(tiny_result):
    state = tiny_result.topic_model
    assert state.n_topics == 3
    phi = state.phi()
    assert phi.shape == (3, state.vocabulary_size)
    np.testing.assert_allclose(phi.sum(axis=1), 1.0, rtol=1e-9)
    theta = state.theta()
    assert theta.shape[1] == 3


def test_counts_are_consistent(tiny_result):
    state = tiny_result.topic_model
    n_tokens = tiny_result.segmented_corpus.num_tokens
    assert state.topic_counts.sum() == n_tokens
    assert state.topic_word_counts.sum() == n_tokens
    assert state.doc_topic_counts.sum() == n_tokens
    # every clique assignment is a valid topic
    for cliques in state.clique_assignments:
        if len(cliques):
            assert cliques.min() >= 0
            assert cliques.max() < 3


def test_mining_found_multiword_phrases(tiny_result):
    assert tiny_result.mining_result.num_frequent_phrases(min_length=2) > 0
    assert tiny_result.segmented_corpus.num_phrases > 0


def test_timings_record_figure8_stages(tiny_result):
    assert "phrase_mining" in tiny_result.timings
    assert "topic_modeling" in tiny_result.timings
    assert all(seconds >= 0 for seconds in tiny_result.timings.values())


def test_visualization_renders(tiny_result):
    table = tiny_result.render_topics(n_rows=5)
    assert isinstance(table, str)
    assert table.strip()
    assert isinstance(tiny_result.top_phrases(0, 3), list)


def test_fixed_seed_is_reproducible():
    generated = load_dataset("dblp-titles", n_documents=40, seed=5)
    config = ToPMineConfig(n_topics=2, min_support=3, n_iterations=10, seed=5)
    first = ToPMine(config).fit(generated.texts)
    second = ToPMine(config).fit(generated.texts)
    for a, b in zip(first.topic_model.clique_assignments,
                    second.topic_model.clique_assignments):
        np.testing.assert_array_equal(a, b)
    np.testing.assert_array_equal(first.topic_model.topic_word_counts,
                                  second.topic_model.topic_word_counts)
