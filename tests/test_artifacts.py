"""Artifact round-trips, schema validation, and cross-engine reload identity."""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.phrase_lda import PhraseLDA, PhraseLDAConfig
from repro.core.visualization import TopicVisualizer
from repro.io.artifacts import (
    FORMAT_VERSION,
    ArtifactError,
    ArtifactVersionError,
    ModelBundle,
    SegmentationBundle,
    load_bundle,
    load_model,
    load_segmentation,
    mmap_backing,
    save_bundle,
)
from repro.topicmodel import ckernel

SRC = Path(__file__).resolve().parent.parent / "src"


def _segmentation_bundle(fitted_pipeline):
    config, result = fitted_pipeline
    return SegmentationBundle(mining=result.mining_result,
                              segmented=result.segmented_corpus,
                              construction=config.construction_config(),
                              preprocess=config.preprocess,
                              metadata={"seed": config.seed})


def _tamper(path: Path, out: Path, manifest_edit=None, drop=None,
            arrays_edit=None) -> Path:
    """Rewrite a bundle with a modified manifest and/or modified arrays."""
    with np.load(path, allow_pickle=False) as archive:
        data = {name: archive[name] for name in archive.files}
    manifest = json.loads(str(data.pop("manifest")))
    if manifest_edit:
        manifest_edit(manifest)
    if drop:
        data.pop(drop)
    if arrays_edit:
        arrays_edit(data)
    data["manifest"] = np.array(json.dumps(manifest))
    with open(out, "wb") as handle:
        np.savez_compressed(handle, **data)
    return out


# -- segmentation bundle ---------------------------------------------------------------
def test_segmentation_round_trip(fitted_pipeline, tmp_path):
    bundle = _segmentation_bundle(fitted_pipeline)
    path = save_bundle(tmp_path / "seg.npz", bundle)
    loaded = load_segmentation(path)

    assert loaded.mining.counter.as_dict() == bundle.mining.counter.as_dict()
    assert loaded.mining.total_tokens == bundle.mining.total_tokens
    assert loaded.mining.min_support == bundle.mining.min_support
    assert loaded.construction == bundle.construction
    assert loaded.preprocess == bundle.preprocess
    assert loaded.metadata["seed"] == bundle.metadata["seed"]
    assert loaded.segmented.name == bundle.segmented.name
    assert len(loaded.segmented) == len(bundle.segmented)
    for original, restored in zip(bundle.segmented, loaded.segmented):
        assert restored.phrases == [tuple(p) for p in original.phrases]

    vocab, loaded_vocab = bundle.vocabulary, loaded.vocabulary
    assert loaded_vocab.id_to_word == vocab.id_to_word
    for word_id in range(len(vocab)):
        assert loaded_vocab.frequency_of(word_id) == vocab.frequency_of(word_id)
        assert loaded_vocab.unstem_id(word_id) == vocab.unstem_id(word_id)


def test_bundles_do_not_persist_execution_preferences(fitted_pipeline, tmp_path):
    """engine/n_jobs describe the mining machine, not the model: a bundle
    mined with ``--jobs 4 --engine reference`` must not make every later
    consumer fork worker pools or pin the slow reference segmenter."""
    bundle = _segmentation_bundle(fitted_pipeline)
    bundle.construction.n_jobs = 4
    bundle.construction.engine = "reference"
    path = save_bundle(tmp_path / "seg.npz", bundle)
    loaded = load_segmentation(path)
    assert loaded.construction.n_jobs == 1
    assert loaded.construction.engine == "auto"
    assert (loaded.construction.significance_threshold
            == bundle.construction.significance_threshold)


def test_segmentation_bundle_refits_identically(fitted_pipeline, tmp_path):
    """PhraseLDA over a reloaded segmentation matches fitting the original."""
    config, result = fitted_pipeline
    path = save_bundle(tmp_path / "seg.npz", _segmentation_bundle(fitted_pipeline))
    loaded = load_segmentation(path)
    lda_config = PhraseLDAConfig(n_topics=3, alpha=0.5, n_iterations=5, seed=11)
    state_a = PhraseLDA(lda_config).fit(result.segmented_corpus)
    state_b = PhraseLDA(lda_config).fit(loaded.segmented)
    assert np.array_equal(state_a.topic_word_counts, state_b.topic_word_counts)
    for a, b in zip(state_a.clique_assignments, state_b.clique_assignments):
        assert np.array_equal(a, b)


# -- model bundle ----------------------------------------------------------------------
def test_model_round_trip_exact(model_bundle, tmp_path):
    path = save_bundle(tmp_path / "model.npz", model_bundle)
    loaded = load_model(path)

    assert np.array_equal(loaded.topic_word_counts, model_bundle.topic_word_counts)
    assert np.array_equal(loaded.doc_topic_counts, model_bundle.doc_topic_counts)
    assert np.array_equal(loaded.topic_counts, model_bundle.topic_counts)
    assert np.array_equal(loaded.alpha, model_bundle.alpha)
    assert loaded.beta == model_bundle.beta
    assert loaded.topical_frequencies == model_bundle.topical_frequencies
    assert loaded.render_topics(n_rows=10) == model_bundle.render_topics(n_rows=10)


@pytest.mark.parametrize("engine", ["numpy", "c"])
def test_model_reload_reproduces_top_phrases_per_engine(fitted_pipeline, tmp_path,
                                                        engine):
    """Acceptance gate: a reloaded bundle reproduces the trained model's top
    topical phrases exactly, for every available fast engine."""
    if engine == "c" and not ckernel.kernel_available():
        pytest.skip("C kernel unavailable")
    config, result = fitted_pipeline
    lda_config = PhraseLDAConfig(n_topics=4, alpha=0.5, n_iterations=15,
                                 seed=13, engine=engine)
    state = PhraseLDA(lda_config).fit(result.segmented_corpus)
    topical = TopicVisualizer(result.segmented_corpus, state).topical_frequencies(
        min_phrase_length=1)
    bundle = ModelBundle(vocabulary=result.corpus.vocabulary,
                         mining=result.mining_result,
                         construction=config.construction_config(),
                         preprocess=config.preprocess,
                         topic_word_counts=state.topic_word_counts,
                         doc_topic_counts=state.doc_topic_counts,
                         topic_counts=state.topic_counts,
                         alpha=np.asarray(state.alpha, dtype=np.float64),
                         beta=float(state.beta),
                         topical_frequencies=topical,
                         metadata={"engine": engine})
    rendered = bundle.render_topics(n_rows=10)
    path = save_bundle(tmp_path / f"model-{engine}.npz", bundle)
    loaded = load_model(path)
    assert loaded.render_topics(n_rows=10) == rendered
    viz_before = bundle.visualization()
    viz_after = loaded.visualization()
    assert viz_after.top_phrases == viz_before.top_phrases
    assert viz_after.top_unigrams == viz_before.top_unigrams


def test_model_reload_in_fresh_process(model_bundle, tmp_path):
    """The acceptance criterion's fresh-process check, verbatim."""
    path = save_bundle(tmp_path / "model.npz", model_bundle)
    expected = model_bundle.render_topics(n_rows=5)
    script = ("from repro.io.artifacts import load_model; "
              f"print(load_model({str(path)!r}).render_topics(n_rows=5))")
    proc = subprocess.run([sys.executable, "-c", script], capture_output=True,
                          text=True, env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"})
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.rstrip("\n") == expected.rstrip("\n")


# -- validation ------------------------------------------------------------------------
def test_missing_file_rejected(tmp_path):
    with pytest.raises(ArtifactError, match="not found"):
        load_bundle(tmp_path / "nope.npz")


def test_garbage_file_rejected(tmp_path):
    path = tmp_path / "garbage.npz"
    path.write_bytes(b"this is not a bundle at all")
    with pytest.raises(ArtifactError, match="not a readable bundle"):
        load_bundle(path)


def test_truncated_bundle_rejected(model_bundle, tmp_path):
    path = save_bundle(tmp_path / "model.npz", model_bundle)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(ArtifactError):
        load_bundle(path)


def test_newer_version_rejected(model_bundle, tmp_path):
    path = save_bundle(tmp_path / "model.npz", model_bundle)
    newer = _tamper(path, tmp_path / "newer.npz",
                    manifest_edit=lambda m: m.update(version=FORMAT_VERSION + 1))
    with pytest.raises(ArtifactVersionError, match="newer than this reader"):
        load_bundle(newer)


def test_foreign_format_rejected(model_bundle, tmp_path):
    path = save_bundle(tmp_path / "model.npz", model_bundle)
    foreign = _tamper(path, tmp_path / "foreign.npz",
                      manifest_edit=lambda m: m.update(format="someone.else"))
    with pytest.raises(ArtifactError, match="format"):
        load_bundle(foreign)


def test_out_of_vocabulary_token_ids_rejected(fitted_pipeline, model_bundle,
                                              tmp_path):
    """Token arrays referencing ids outside the vocabulary fail at load time
    with ArtifactError, not deep inside fit/topics with a raw traceback."""
    def corrupt(name):
        def edit_arrays(arrays):
            tokens = arrays[name].copy()
            tokens[0] = len(arrays["vocab_words"]) + 5
            arrays[name] = tokens
        return edit_arrays

    seg_path = save_bundle(tmp_path / "seg.npz",
                           _segmentation_bundle(fitted_pipeline))
    model_path = save_bundle(tmp_path / "model.npz", model_bundle)
    for path, array in ((seg_path, "seg_tokens"), (seg_path, "phrase_tokens"),
                        (model_path, "topical_tokens")):
        bad = _tamper(path, tmp_path / f"bad-{array}.npz",
                      arrays_edit=corrupt(array))
        with pytest.raises(ArtifactError, match="outside the vocabulary"):
            load_bundle(bad)


def test_missing_manifest_section_rejected(model_bundle, tmp_path):
    path = save_bundle(tmp_path / "model.npz", model_bundle)
    no_mining = _tamper(path, tmp_path / "no-mining.npz",
                        manifest_edit=lambda m: m.pop("mining"))
    with pytest.raises(ArtifactError, match="mining"):
        load_bundle(no_mining)
    no_model = _tamper(path, tmp_path / "no-model.npz",
                       manifest_edit=lambda m: m.pop("model"))
    with pytest.raises(ArtifactError, match="'model' section"):
        load_bundle(no_model)


def test_missing_array_rejected(model_bundle, tmp_path):
    path = save_bundle(tmp_path / "model.npz", model_bundle)
    broken = _tamper(path, tmp_path / "broken.npz", drop="topic_counts")
    with pytest.raises(ArtifactError, match="missing arrays"):
        load_bundle(broken)


def test_unknown_manifest_keys_ignored(model_bundle, tmp_path):
    """Forward compatibility: additive manifest fields must not break loads."""
    path = save_bundle(tmp_path / "model.npz", model_bundle)

    def add_fields(manifest):
        manifest["future_field"] = {"nested": True}
        manifest["preprocess"]["future_option"] = 42

    extended = _tamper(path, tmp_path / "extended.npz", manifest_edit=add_fields)
    loaded = load_model(extended)
    assert loaded.render_topics(n_rows=5) == model_bundle.render_topics(n_rows=5)


# -- zero-copy loading -----------------------------------------------------------------
def test_loaded_model_arrays_are_mmap_backed(model_bundle, tmp_path):
    """Bundle arrays come back as read-only views over one shared mmap of
    the file — page-cache-shared across processes, not writable copies."""
    path = save_bundle(tmp_path / "model.npz", model_bundle)
    loaded = load_model(path)
    for name in ("topic_word_counts", "doc_topic_counts", "topic_counts",
                 "alpha"):
        array = getattr(loaded, name)
        assert mmap_backing(array) is not None, f"{name} not mmap-backed"
        assert not array.flags.writeable, f"{name} must be read-only"
        with pytest.raises(ValueError):
            array[...] = 0
    assert np.array_equal(loaded.topic_word_counts,
                          model_bundle.topic_word_counts)


def test_republish_keeps_prior_mapping_readable(model_bundle, tmp_path):
    """save_bundle publishes atomically (tempfile + os.replace), so a
    process still mapping the previous file keeps reading valid pages
    instead of crashing with SIGBUS on truncated storage."""
    path = save_bundle(tmp_path / "model.npz", model_bundle)
    loaded = load_model(path)
    before = loaded.topic_word_counts.copy()
    save_bundle(path, model_bundle)  # republish over the mapped file
    assert np.array_equal(loaded.topic_word_counts, before)
    assert load_model(path).render_topics(n_rows=5) == \
        model_bundle.render_topics(n_rows=5)


def test_compressed_npz_falls_back_to_materialized_arrays(model_bundle,
                                                          tmp_path):
    """Deflated members cannot be mapped; the loader transparently falls
    back to materialized (but equal) arrays for compressed bundles."""
    path = save_bundle(tmp_path / "model.npz", model_bundle)
    compressed = _tamper(path, tmp_path / "compressed.npz")  # savez_compressed
    loaded = load_model(compressed)
    assert mmap_backing(loaded.topic_word_counts) is None
    assert np.array_equal(loaded.topic_word_counts,
                          model_bundle.topic_word_counts)


def test_wrong_kind_rejected(fitted_pipeline, model_bundle, tmp_path):
    seg_path = save_bundle(tmp_path / "seg.npz",
                           _segmentation_bundle(fitted_pipeline))
    model_path = save_bundle(tmp_path / "model.npz", model_bundle)
    with pytest.raises(ArtifactError, match="expected 'model'"):
        load_model(seg_path)
    with pytest.raises(ArtifactError, match="expected 'segmentation'"):
        load_segmentation(model_path)
