"""repro.serve.fleet: N SO_REUSEPORT worker processes behind one address.

Covers the fleet's three contracts: replies are bit-identical to a
single-process server (any worker, any kernel load-balancing), model
memory is shared read-only via mmap (not per-worker copies), and the
supervisor keeps the address serving through worker crashes — including
a crash injected mid-hot-swap under concurrent inference load, after
which every worker must converge on the newly published version.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.core.infer import InferenceConfig
from repro.io.artifacts import ModelBundle, mmap_backing, save_bundle
from repro.serve import (
    ModelRegistry,
    ServeClient,
    ServeConfig,
    ServeFleet,
)

UNSEEN = [
    "support vector machine training data and feature selection",
    "natural language processing for machine translation",
    "association rules and frequent itemsets for data mining",
    "query processing over relational database systems",
]


@pytest.fixture(scope="module")
def bundle_path(model_bundle, tmp_path_factory):
    """The session model bundle saved once for the fleet tests."""
    path = tmp_path_factory.mktemp("fleet") / "model.npz"
    save_bundle(path, model_bundle)
    return path


def test_registry_load_is_mmap_backed(bundle_path):
    """The serving path's arrays are read-only views over a file mapping —
    the property that lets N worker processes share one physical copy of
    every model through the page cache."""
    registry = ModelRegistry()
    registry.register("m", bundle_path)
    model = registry.get("m")
    for name in ("topic_word_counts", "doc_topic_counts", "topic_counts",
                 "alpha"):
        array = getattr(model.bundle, name)
        assert mmap_backing(array) is not None, f"{name} not mmap-backed"
        assert not array.flags.writeable, f"{name} must be read-only"


def test_fleet_requires_sources_and_resolves_port(bundle_path):
    with pytest.raises(ValueError, match="at least one model"):
        ServeFleet(ServeConfig(port=0, workers=1), {})
    fleet = ServeFleet(ServeConfig(port=0, workers=1),
                       {"model": bundle_path})
    with fleet:
        assert fleet.config.port != 0  # ephemeral port pinned at start
        assert fleet.url.endswith(str(fleet.config.port))
        fleet.wait_until_ready(timeout=30)
    assert fleet.alive_workers() == []  # stop() reaped every worker


def test_fleet_replies_bit_identical_to_solo_runs(model_bundle, bundle_path):
    """Whichever worker the kernel picks, a seeded request reproduces the
    solo single-process inference bit-for-bit."""
    config = ServeConfig(port=0, workers=2)
    with ServeFleet(config, {"model": bundle_path}) as fleet:
        fleet.wait_until_ready(timeout=30)
        client = ServeClient(fleet.url, retries=2)
        inferencer = model_bundle.inferencer()
        for index, text in enumerate(UNSEEN):
            reply = client.infer([text], seed=31 * index + 1, iterations=10)
            solo = inferencer.infer_texts(
                [text], InferenceConfig(n_iterations=10, seed=31 * index + 1,
                                        engine="numpy"))
            assert reply["documents"][0]["theta"] == \
                [float(p) for p in solo.documents[0].theta]


def test_fleet_worker_crash_mid_hot_swap_under_load(model_bundle, tmp_path):
    """Kill one worker right as a new bundle version is published, while
    concurrent /v1/infer traffic is in flight: the address keeps serving
    (clients may retry connection errors, never see wrong answers), the
    supervisor restarts the dead worker, and /v1/models converges — every
    worker ends up resident on the new version."""
    path = tmp_path / "model.npz"
    stamped = ModelBundle(**{**model_bundle.__dict__,
                             "metadata": {"stream_version": 1}})
    save_bundle(path, stamped)
    config = ServeConfig(port=0, workers=2, health_interval=0.1,
                         restart_backoff=0.1)
    errors = []
    stop_load = threading.Event()

    def load_loop(thread_id):
        client = ServeClient(fleet.url, retries=4, retry_delay=0.05)
        while not stop_load.is_set():
            try:
                reply = client.infer([UNSEEN[thread_id % len(UNSEEN)]],
                                     seed=thread_id, iterations=5)
                assert reply["documents"]
            except Exception as exc:  # noqa: BLE001 — recorded, asserted below
                errors.append(exc)
                return

    with ServeFleet(config, {"model": path}) as fleet:
        fleet.wait_until_ready(timeout=30)
        threads = [threading.Thread(target=load_loop, args=(i,), daemon=True)
                   for i in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.3)  # let traffic reach both workers

        first_pid = fleet.worker_pid(0)
        stamped.metadata = {"stream_version": 2}
        save_bundle(path, stamped)      # atomic republish (os.replace)
        os.utime(path, ns=(9, 9))       # force a new stat signature
        fleet.kill_worker(0)            # crash injection mid-swap

        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if fleet.alive_workers() == [0, 1] \
                    and fleet.worker_pid(0) != first_pid:
                break
            time.sleep(0.1)
        assert fleet.alive_workers() == [0, 1], "worker 0 was not restarted"
        assert fleet.worker_pid(0) != first_pid
        assert fleet.restarts >= 1

        # Convergence: sample /v1/models (each fresh connection lands on a
        # kernel-chosen worker) until both workers answer with the new
        # version resident.
        observer = ServeClient(fleet.url, retries=4, retry_delay=0.05)
        versions = {}
        while time.monotonic() < deadline:
            entry = observer.models()[0]
            versions[entry["worker_id"]] = entry.get("resident_version")
            if versions.get(0) == 2 and versions.get(1) == 2:
                break
            time.sleep(0.05)
        assert versions == {0: 2, 1: 2}, \
            f"fleet did not converge on v2: {versions}"

        stop_load.set()
        for thread in threads:
            thread.join(timeout=10)
    assert not errors, f"requests failed during crash/hot-swap: {errors[:3]}"


def test_fleet_worker_ids_cover_configured_range(bundle_path):
    """wait_until_ready(require_all=True) really saw every worker."""
    config = ServeConfig(port=0, workers=2)
    with ServeFleet(config, {"model": bundle_path}) as fleet:
        seen = fleet.wait_until_ready(timeout=30)
        assert seen == {0, 1}
