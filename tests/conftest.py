"""Shared fixtures: one session-scoped fitted pipeline for the io/infer/CLI tests.

Fitting ToPMine once (600 dblp-titles documents — the smallest size at which
the significance threshold yields a healthy number of multi-word phrases)
keeps the artifact round-trip, inference, and docs tests seconds-scale.
"""

import pytest

from repro import ModelBundle, ToPMine, ToPMineConfig
from repro.datasets.registry import load_dataset

N_DOCS = 600
N_TOPICS = 5
SEED = 7


@pytest.fixture(scope="session")
def fitted_pipeline():
    """Return ``(config, result)`` of one deterministic ToPMine run."""
    generated = load_dataset("dblp-titles", n_documents=N_DOCS, seed=SEED)
    config = ToPMineConfig(n_topics=N_TOPICS, min_support=None,
                           n_iterations=30, alpha=0.5, seed=SEED)
    result = ToPMine(config).fit(generated.texts, name="dblp-titles")
    return config, result


@pytest.fixture(scope="session")
def model_bundle(fitted_pipeline):
    """A :class:`ModelBundle` built from the session's fitted pipeline."""
    config, result = fitted_pipeline
    return ModelBundle.from_result(result, config)
