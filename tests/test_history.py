"""Metrics history: the frame ring, windowed math, and crash safety.

The tentpole contracts under test:

* :class:`~repro.obs.history.HistoryRecorder` samples the aggregated
  shard state into CRC-guarded fixed-width frames, rotates segments at
  the frame cap (and on column-set changes), and bounds the ring;
* :class:`~repro.obs.history.HistoryWindow` turns frames into rates,
  deltas, and histogram-quantile estimates — with every delta clamped at
  zero so a reaped worker can never fabricate a negative rate;
* a SIGKILL mid-frame-write or mid-segment-rotation never tears a
  committed frame: the parent reopens the ring and reads everything the
  child committed, and the recorder appends cleanly on top.
"""

import os
import signal
import struct
import subprocess
import sys
import textwrap
import zlib
from pathlib import Path

import pytest

from repro.obs import ShardWriter, reap_stale_shards, shard_path
from repro.obs.history import (HISTORY_MAGIC, HistoryRecorder, history_dir,
                               read_history, read_window)

SRC = Path(__file__).resolve().parent.parent / "src"


def _recorder(tmp_path, **kwargs):
    """A recorder over ``tmp_path`` with a deterministic injected clock."""
    ticks = iter(float(i) for i in range(10_000))
    kwargs.setdefault("clock", lambda: next(ticks))
    return HistoryRecorder(tmp_path, interval=60.0, **kwargs)


# -- recorder + window math ------------------------------------------------------------
def test_recorder_frames_and_counter_rate(tmp_path):
    writer = ShardWriter(shard_path(tmp_path, "0"))
    recorder = _recorder(tmp_path, inline=[("0", writer)])
    writer.inc_counter("http_requests_total", 5)
    writer.flush()
    recorder.sample_once()
    writer.inc_counter("http_requests_total", 15)
    writer.flush()
    recorder.sample_once()
    recorder.stop()
    writer.close()

    window = read_window(history_dir(tmp_path))
    assert window.n_frames == 2
    assert window.span_seconds() == pytest.approx(1.0)
    assert window.counter_delta("http_requests_total") == 15.0
    assert window.counter_rate("http_requests_total") == \
        pytest.approx(15.0)
    assert window.counter_delta("absent_total") is None
    assert window.counter_rate("absent_total") is None


def test_window_gauge_histogram_and_quantile(tmp_path):
    writer = ShardWriter(shard_path(tmp_path, "0"))
    recorder = _recorder(tmp_path, inline=[("0", writer)])
    writer.set_gauge("replica_lag_docs", 3.0)
    writer.observe("http_v1_infer_seconds", 0.004)
    writer.flush()
    recorder.sample_once()
    writer.set_gauge("replica_lag_docs", 8.0)
    for seconds in (0.004, 0.004, 0.004, 0.04):  # p95 lands in 0.025-0.05
        writer.observe("http_v1_infer_seconds", seconds)
    writer.flush()
    recorder.sample_once()
    recorder.stop()
    writer.close()

    window = read_window(history_dir(tmp_path))
    assert window.gauge_latest("replica_lag_docs") == 8.0
    assert window.gauge_latest("absent") is None
    assert window.histogram_count_delta("http_v1_infer_seconds") == 4.0
    assert window.histogram_mean("http_v1_infer_seconds") == \
        pytest.approx((3 * 0.004 + 0.04) / 4)
    p50 = window.quantile("http_v1_infer_seconds", 50.0)
    assert p50 is not None and 0.0025 <= p50 <= 0.005
    p95 = window.quantile("http_v1_infer_seconds", 95.0)
    assert p95 is not None and 0.025 <= p95 <= 0.05
    assert window.quantile("absent_seconds", 95.0) is None
    with pytest.raises(ValueError):
        window.quantile("http_v1_infer_seconds", 101.0)


def test_window_ratio_and_zero_denominator(tmp_path):
    writer = ShardWriter(shard_path(tmp_path, "0"))
    recorder = _recorder(tmp_path, inline=[("0", writer)])
    writer.inc_counter("http_requests_total", 10)
    writer.inc_counter("http_errors_total", 0)
    writer.flush()
    recorder.sample_once()
    writer.inc_counter("http_requests_total", 10)
    writer.inc_counter("http_errors_total", 2)
    writer.flush()
    recorder.sample_once()
    recorder.stop()
    writer.close()

    window = read_window(history_dir(tmp_path))
    assert window.ratio("http_errors_total",
                        ("http_requests_total",)) == pytest.approx(0.2)
    # No traffic over the window = no budget burned, not a division error.
    first_only = read_window(history_dir(tmp_path), seconds=0.0)
    assert first_only.n_frames == 1
    assert first_only.ratio("http_errors_total",
                            ("http_requests_total",)) is None
    assert window.ratio("absent_total", ("http_requests_total",)) is None


def test_reaped_worker_never_yields_negative_rate(tmp_path):
    """A worker dying between samples regresses nothing: the reaper folds
    its counts into the accumulator and the window clamps at zero."""
    recorder = _recorder(tmp_path)
    live = ShardWriter(shard_path(tmp_path, "0"))
    live.inc_counter("http_requests_total", 3)
    live.flush()
    dead = ShardWriter(shard_path(tmp_path, "1", pid=99999999))
    dead.inc_counter("http_requests_total", 9)
    dead.flush()
    dead.close()
    recorder.sample_once()

    reap_stale_shards(tmp_path, live_pids=[os.getpid()])
    recorder.sample_once()
    recorder.stop()
    live.close()

    window = read_window(history_dir(tmp_path))
    assert window.n_frames == 2
    delta = window.counter_delta("http_requests_total")
    assert delta is not None and delta >= 0.0
    rate = window.counter_rate("http_requests_total")
    assert rate is not None and rate >= 0.0


def test_segment_rotation_and_ring_bound(tmp_path):
    writer = ShardWriter(shard_path(tmp_path, "0"))
    recorder = _recorder(tmp_path, inline=[("0", writer)],
                         max_frames_per_segment=3, max_segments=2)
    writer.inc_counter("http_requests_total")
    writer.flush()
    for _ in range(10):
        recorder.sample_once()
    recorder.stop()
    writer.close()

    segments = sorted(history_dir(tmp_path).glob("history-*.seg"))
    assert len(segments) <= 2  # ring trimmed to max_segments
    frames = read_history(history_dir(tmp_path))
    assert 0 < len(frames) <= 6  # at most max_segments * frames_per_segment
    stamps = [timestamp for timestamp, _ in frames]
    assert stamps == sorted(stamps)


def test_column_set_change_rotates_segment(tmp_path):
    """New metric families mid-run start a new segment (fixed frame width
    per segment), and reads stitch both segments back together."""
    writer = ShardWriter(shard_path(tmp_path, "0"))
    recorder = _recorder(tmp_path, inline=[("0", writer)])
    writer.inc_counter("http_requests_total")
    writer.flush()
    recorder.sample_once()
    writer.inc_counter("http_errors_total")  # new column appears
    writer.flush()
    recorder.sample_once()
    recorder.sample_once()
    recorder.stop()
    writer.close()

    assert len(list(history_dir(tmp_path).glob("history-*.seg"))) == 2
    window = read_window(history_dir(tmp_path))
    assert window.n_frames == 3
    # The new column spans only the frames that carry it — still >= 2, so
    # deltas work; the shorter series never poisons the longer one.
    assert window.counter_delta("http_errors_total") == 0.0
    assert window.counter_delta("http_requests_total") == 0.0


def test_torn_trailing_frame_is_dropped_not_fatal(tmp_path):
    writer = ShardWriter(shard_path(tmp_path, "0"))
    recorder = _recorder(tmp_path, inline=[("0", writer)])
    writer.inc_counter("http_requests_total")
    writer.flush()
    recorder.sample_once()
    recorder.sample_once()
    recorder.stop()
    writer.close()

    segment = next(iter(history_dir(tmp_path).glob("history-*.seg")))
    data = segment.read_bytes()
    segment.write_bytes(data[:-5])  # tear the final frame's CRC
    frames = read_history(history_dir(tmp_path))
    assert len(frames) == 1  # the torn frame is gone, the first survives

    corrupted = bytearray(data)
    corrupted[-12] ^= 0xFF  # flip a payload byte under an intact length
    segment.write_bytes(bytes(corrupted))
    assert len(read_history(history_dir(tmp_path))) == 1  # CRC catches it


def test_recorder_resumes_ring_index_after_reopen(tmp_path):
    writer = ShardWriter(shard_path(tmp_path, "0"))
    first = _recorder(tmp_path, inline=[("0", writer)])
    writer.inc_counter("http_requests_total")
    writer.flush()
    first.sample_once()
    first.stop()

    second = _recorder(tmp_path, inline=[("0", writer)])
    second.sample_once()
    second.stop()
    writer.close()

    names = sorted(path.name for path in
                   history_dir(tmp_path).glob("history-*.seg"))
    assert names == ["history-00000000.seg", "history-00000001.seg"]
    assert len(read_history(history_dir(tmp_path))) == 2


# -- crash safety ----------------------------------------------------------------------
_CHILD = textwrap.dedent("""\
    import os
    import signal
    import sys

    import repro.obs.history as history_module
    from repro.obs import ShardWriter, shard_path

    metrics_dir, mode = sys.argv[1], sys.argv[2]
    writer = ShardWriter(shard_path(metrics_dir, "0"))
    recorder = history_module.HistoryRecorder(
        metrics_dir, interval=60.0, inline=[("0", writer)],
        max_frames_per_segment=2)
    writer.inc_counter("http_requests_total", 5)
    writer.flush()
    recorder.sample_once()  # one committed frame
    writer.inc_counter("http_requests_total", 5)
    writer.flush()

    if mode == "mid-frame":
        # Die after half the next frame's bytes hit the file.
        segment = recorder._segment
        real_write = segment._file.write
        def dying_write(blob):
            real_write(blob[:len(blob) // 2])
            segment._file.flush()
            os.kill(os.getpid(), signal.SIGKILL)
        segment._file.write = dying_write
        recorder.sample_once()
    elif mode == "mid-rotation":
        # Die inside the atomic segment creation: temp header written,
        # the os.replace that lands it never runs.
        real_replace = os.replace
        def dying_replace(src, dst):
            if str(dst).endswith(".seg"):
                os.kill(os.getpid(), signal.SIGKILL)
            return real_replace(src, dst)
        history_module.os.replace = dying_replace
        recorder.sample_once()  # fills the 2-frame segment
        recorder.sample_once()  # forces the rotation that dies
    else:
        raise SystemExit(f"unknown mode {mode}")
    raise SystemExit("sample survived the scheduled crash")
""")


def _crash_recorder(metrics_dir: Path, mode: str) -> None:
    """Run the child until its self-SIGKILL; assert it really crashed."""
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, str(metrics_dir), mode],
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        capture_output=True, text=True, timeout=120)
    assert proc.returncode == -signal.SIGKILL, \
        f"child exited {proc.returncode}, not SIGKILL:\n{proc.stderr}"


@pytest.mark.parametrize("mode", ["mid-frame", "mid-rotation"])
def test_sigkill_never_tears_committed_frames(tmp_path, mode):
    _crash_recorder(tmp_path, mode)

    frames = read_history(history_dir(tmp_path))
    assert frames, "the committed pre-crash frames must survive"
    # Every surviving frame is whole: the totals it recorded are intact
    # and monotone; the torn trailing write is simply absent.
    values = [columns["c:http_requests_total"] for _, columns in frames]
    assert values == sorted(values)
    assert all(value in (5.0, 10.0) for value in values)
    window = read_window(history_dir(tmp_path))
    if window.n_frames >= 2:
        rate = window.counter_rate("http_requests_total")
        assert rate is None or rate >= 0.0

    # A fresh recorder appends on top of the survivor ring cleanly.
    writer = ShardWriter(shard_path(tmp_path, "0"))
    writer.inc_counter("http_requests_total", 20)
    writer.flush()
    recorder = _recorder(tmp_path, inline=[("0", writer)])
    recorder.sample_once()
    recorder.stop()
    writer.close()
    recovered = read_history(history_dir(tmp_path))
    assert len(recovered) == len(frames) + 1
    assert recovered[-1][1]["c:http_requests_total"] == 20.0


def test_segment_header_magic_and_crc_layout(tmp_path):
    """Pin the on-disk layout: magic, header, then ts+values+crc frames."""
    writer = ShardWriter(shard_path(tmp_path, "0"))
    recorder = _recorder(tmp_path, inline=[("0", writer)])
    writer.inc_counter("http_requests_total", 7)
    writer.flush()
    recorder.sample_once()
    recorder.stop()
    writer.close()

    segment = next(iter(history_dir(tmp_path).glob("history-*.seg")))
    data = segment.read_bytes()
    assert data.startswith(HISTORY_MAGIC)
    header_len, reserved = struct.unpack_from("<II", data, len(HISTORY_MAGIC))
    assert reserved == 0
    start = len(HISTORY_MAGIC) + 8
    columns = data[start:start + header_len].decode("utf-8").split("\n")
    assert "c:http_requests_total" in columns
    frame = data[start + header_len:]
    assert len(frame) == 8 * (1 + len(columns)) + 8
    payload, (crc,) = frame[:-8], struct.unpack("<Q", frame[-8:])
    assert crc == zlib.crc32(payload)
