"""Unit tests for the addressable max-heap used by Algorithm 2."""

from repro.utils.heap import AddressableMaxHeap


def test_pop_returns_highest_priority():
    heap = AddressableMaxHeap()
    heap.push("a", 1.0)
    heap.push("b", 3.0)
    heap.push("c", 2.0)
    assert [heap.pop_max().key for _ in range(3)] == ["b", "c", "a"]
    assert heap.pop_max() is None


def test_ties_break_by_insertion_order():
    heap = AddressableMaxHeap()
    heap.push("first", 1.0)
    heap.push("second", 1.0)
    assert heap.pop_max().key == "first"
    assert heap.pop_max().key == "second"


def test_update_replaces_priority():
    heap = AddressableMaxHeap()
    heap.push("a", 1.0)
    heap.push("b", 2.0)
    heap.update("a", 5.0)
    assert len(heap) == 2
    top = heap.pop_max()
    assert top.key == "a"
    assert top.priority == 5.0


def test_remove_invalidates_entry():
    heap = AddressableMaxHeap()
    heap.push("a", 5.0)
    heap.push("b", 1.0)
    assert heap.remove("a") is True
    assert heap.remove("a") is False
    assert "a" not in heap
    assert heap.pop_max().key == "b"
    assert not heap


def test_peek_does_not_remove():
    heap = AddressableMaxHeap()
    heap.push("a", 2.0, payload="data")
    entry = heap.peek_max()
    assert entry.key == "a"
    assert entry.payload == "data"
    assert len(heap) == 1


def test_payload_round_trip_through_update():
    heap = AddressableMaxHeap()
    heap.push("k", 1.0, payload="old")
    heap.push("k", 2.0, payload="new")
    assert heap.priority_of("k") == 2.0
    assert heap.pop_max().payload == "new"


def test_many_stale_entries_are_skipped():
    heap = AddressableMaxHeap()
    for i in range(50):
        heap.push("hot", float(i))
    heap.push("cold", -1.0)
    assert heap.pop_max().priority == 49.0
    assert heap.pop_max().key == "cold"
    assert heap.pop_max() is None
