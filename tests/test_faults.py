"""repro.testing.faults: the deterministic fault-injection harness itself.

A tiny stdlib HTTP upstream sits behind a :class:`FaultyProxy`; each test
schedules faults by connection index and asserts the client-visible
failure mode — so the chaos tests built on this harness can trust its
semantics.
"""

import http.client
import socket
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.testing import (
    Fault,
    FaultInjector,
    FaultyProxy,
    kill_process,
    terminate_process,
)

BODY = b"x" * 10_000


class _Upstream(BaseHTTPRequestHandler):
    """Answers every GET with a fixed 10 kB body, one connection each."""

    def do_GET(self):
        """Serve the fixed body."""
        self.send_response(200)
        self.send_header("Content-Length", str(len(BODY)))
        self.end_headers()
        self.wfile.write(BODY)

    def log_message(self, *args):
        """Silence request logging."""


@pytest.fixture(scope="module")
def upstream():
    """One live upstream HTTP server on an ephemeral port."""
    server = ThreadingHTTPServer(("127.0.0.1", 0), _Upstream)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server.server_address
    server.shutdown()
    server.server_close()


def _get(url, timeout=5.0):
    with urllib.request.urlopen(url + "/anything", timeout=timeout) as reply:
        return reply.read()


def test_fault_validation():
    with pytest.raises(ValueError, match="unknown fault kind"):
        Fault("explode")
    with pytest.raises(ValueError):
        Fault("truncate", after_bytes=-1)


def test_proxy_passes_through_without_faults(upstream):
    host, port = upstream
    with FaultyProxy(host, port) as proxy:
        assert _get(proxy.url) == BODY
        assert proxy.injector.connections == 1


def test_refuse_fault_then_recovery(upstream):
    host, port = upstream
    injector = FaultInjector(plan={0: Fault("refuse")})
    with FaultyProxy(host, port, injector) as proxy:
        with pytest.raises((urllib.error.URLError, ConnectionError)):
            _get(proxy.url)
        assert _get(proxy.url) == BODY  # connection 1 is clean


def test_truncate_fault_tears_the_body(upstream):
    host, port = upstream
    injector = FaultInjector(plan={0: Fault("truncate", after_bytes=500)})
    with FaultyProxy(host, port, injector) as proxy:
        with pytest.raises((http.client.IncompleteRead, ConnectionError,
                            urllib.error.URLError, OSError)):
            _get(proxy.url)


def test_slow_fault_times_out_a_short_read(upstream):
    host, port = upstream
    injector = FaultInjector(plan={0: Fault("slow", delay=2.0)})
    with FaultyProxy(host, port, injector) as proxy:
        with pytest.raises((socket.timeout, urllib.error.URLError)) as info:
            _get(proxy.url, timeout=0.2)
        wrapped = getattr(info.value, "reason", info.value)
        assert isinstance(wrapped, (socket.timeout, TimeoutError))


def test_hold_fault_blocks_until_released(upstream):
    host, port = upstream
    injector = FaultInjector(plan={0: Fault("hold")})
    result = {}
    with FaultyProxy(host, port, injector) as proxy:
        worker = threading.Thread(
            target=lambda: result.update(body=_get(proxy.url, timeout=30)),
            daemon=True)
        worker.start()
        # The proxy accepted the connection but must not answer yet.
        deadline_poll(lambda: injector.connections == 1)
        worker.join(timeout=0.2)
        assert worker.is_alive() and "body" not in result
        injector.release()
        worker.join(timeout=30)
        assert result.get("body") == BODY


def deadline_poll(condition, timeout=10.0, interval=0.01):
    """Wait for ``condition()`` with a wall-clock deadline (no raw sleeps)."""
    import time

    deadline = time.monotonic() + timeout
    while not condition():
        if time.monotonic() >= deadline:
            raise TimeoutError("condition not reached in time")
        time.sleep(interval)


def test_default_fault_applies_to_every_connection(upstream):
    host, port = upstream
    injector = FaultInjector(default=Fault("refuse"))
    with FaultyProxy(host, port, injector) as proxy:
        for _ in range(2):
            with pytest.raises((urllib.error.URLError, ConnectionError)):
                _get(proxy.url)


def test_kill_process_is_sigkill():
    child = subprocess.Popen([sys.executable, "-c",
                              "import time; time.sleep(600)"])
    kill_process(child)
    assert child.returncode == -9


def test_terminate_process_is_clean_sigterm():
    child = subprocess.Popen([sys.executable, "-c",
                              "import time; time.sleep(600)"])
    assert terminate_process(child) == -15
