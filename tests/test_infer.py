"""Fold-in inference: engine equivalence, determinism, and semantics."""

import numpy as np
import pytest

from repro.core.infer import (
    InferenceConfig,
    TopicInferencer,
    resolve_inference_engine,
)
from repro.topicmodel.gibbs import FlatPhraseCorpus, FoldInSampler


@pytest.fixture(scope="module")
def inferencer(model_bundle):
    return model_bundle.inferencer()


@pytest.fixture(scope="module")
def unseen_texts():
    # Unseen documents leaning on distinct dblp-titles topics.
    return [
        "support vector machine training data and feature selection",
        "natural language processing for machine translation and speech recognition",
        "association rules and frequent itemsets for data mining over data streams",
        "source code generation for java programs in a programming language",
    ]


def test_resolve_inference_engine():
    assert resolve_inference_engine("auto") == "batch"
    assert resolve_inference_engine("batch") == "batch"
    assert resolve_inference_engine("numpy") == "numpy"
    assert resolve_inference_engine("reference") == "reference"
    with pytest.raises(ValueError, match="not available for fold-in"):
        resolve_inference_engine("c")
    with pytest.raises(ValueError, match="unknown inference engine"):
        resolve_inference_engine("cuda")


def test_engines_identical_under_fixed_seed(inferencer, unseen_texts):
    """All three fold-in engines must agree bit-for-bit under one seed."""
    results = {
        engine: inferencer.infer_texts(
            unseen_texts, InferenceConfig(n_iterations=25, seed=3, engine=engine))
        for engine in ("batch", "numpy", "reference")
    }
    for engine in ("numpy", "reference"):
        assert np.array_equal(results["batch"].theta, results[engine].theta)
        for a, b in zip(results["batch"].documents, results[engine].documents):
            assert np.array_equal(a.clique_topics, b.clique_topics)
            assert a.phrases == b.phrases


def test_grouped_inference_matches_solo_runs(inferencer, unseen_texts):
    """One batched multi-request pass must be bit-identical to running each
    request alone with its own seed (the micro-batching contract)."""
    groups = [unseen_texts[:2], unseen_texts[2:3], [], unseen_texts[3:]]
    seeds = [11, 22, 33, 44]
    config = InferenceConfig(n_iterations=20)
    grouped = inferencer.infer_texts_grouped(groups, seeds, config)
    assert len(grouped) == len(groups)
    for texts, seed, result in zip(groups, seeds, grouped):
        solo = inferencer.infer_texts(
            texts, InferenceConfig(n_iterations=20, seed=seed, engine="numpy"))
        assert np.array_equal(result.theta, solo.theta)
        for a, b in zip(result.documents, solo.documents):
            assert np.array_equal(a.clique_topics, b.clique_topics)
            assert a.phrases == b.phrases
            assert a.n_unknown_tokens == b.n_unknown_tokens


def test_grouped_inference_validates_arguments(inferencer, unseen_texts):
    with pytest.raises(ValueError, match="groups but"):
        inferencer.infer_texts_grouped([unseen_texts], [1, 2])
    with pytest.raises(ValueError, match="batch"):
        inferencer.infer_texts_grouped([unseen_texts], [1],
                                       InferenceConfig(engine="reference"))


def test_segment_texts_matches_infer_segmentation(inferencer, unseen_texts):
    """segment_texts must return exactly the segmentation fold-in uses."""
    phrases, unknown = inferencer.segment_texts(unseen_texts)
    result = inferencer.infer_texts(unseen_texts, InferenceConfig(seed=0))
    assert phrases == [doc.phrases for doc in result.documents]
    assert unknown == [doc.n_unknown_tokens for doc in result.documents]


def test_fold_in_exercises_multiword_cliques(inferencer, unseen_texts):
    result = inferencer.infer_texts(unseen_texts, InferenceConfig(seed=0))
    multiword = sum(1 for doc in result.documents
                    for phrase in doc.phrases if len(phrase) >= 2)
    assert multiword > 0, "test corpus should segment into multi-word cliques"


def test_deterministic_under_fixed_seed(inferencer, unseen_texts):
    config = InferenceConfig(n_iterations=20, seed=42)
    first = inferencer.infer_texts(unseen_texts, config)
    second = inferencer.infer_texts(unseen_texts, config)
    assert np.array_equal(first.theta, second.theta)
    for a, b in zip(first.documents, second.documents):
        assert np.array_equal(a.clique_topics, b.clique_topics)


def test_seed_changes_assignments(inferencer, unseen_texts):
    first = inferencer.infer_texts(unseen_texts, InferenceConfig(seed=1))
    second = inferencer.infer_texts(unseen_texts, InferenceConfig(seed=2))
    assert any(not np.array_equal(a.clique_topics, b.clique_topics)
               for a, b in zip(first.documents, second.documents))


def test_theta_shape_and_normalisation(model_bundle, inferencer, unseen_texts):
    result = inferencer.infer_texts(unseen_texts, InferenceConfig(seed=5))
    assert result.theta.shape == (len(unseen_texts), model_bundle.n_topics)
    assert np.allclose(result.theta.sum(axis=1), 1.0)
    assert (result.theta > 0).all()


def test_topical_documents_land_on_topical_topics(model_bundle, inferencer):
    """A document made of one topic's signature phrases should fold onto the
    topic that owns those phrases in the trained model."""
    visualization = model_bundle.visualization(n_phrases=10)
    # Pick the topic owning "data mining" (present in the dblp-titles spec).
    owners = [k for k, phrases in enumerate(visualization.top_phrases)
              if "data mining" in phrases]
    assert owners, "trained model should surface 'data mining' as a topical phrase"
    text = ("data mining association rules frequent itemsets. "
            "data mining time series data streams. " * 3)
    result = inferencer.infer_texts([text], InferenceConfig(n_iterations=40, seed=9))
    assert int(np.argmax(result.theta[0])) in owners


def test_rare_word_filtering_matches_training():
    """With min_word_frequency > 1, inference must drop the same rare words
    training dropped (they are in the vocabulary but not in the model)."""
    from repro import ModelBundle, ToPMine, ToPMineConfig
    from repro.text.preprocess import PreprocessConfig

    texts = ["alpha beta gamma delta"] * 15 + ["raretoken alpha beta"]
    config = ToPMineConfig(
        n_topics=2, min_support=3, n_iterations=5, seed=1,
        preprocess=PreprocessConfig(stem=False, remove_stop_words=False,
                                    min_word_frequency=2))
    result = ToPMine(config).fit(texts)
    bundle = ModelBundle.from_result(result, config)
    assert "raretoken" in bundle.vocabulary  # id exists, but trained as rare

    inference = bundle.infer_texts(["raretoken alpha beta"],
                                   InferenceConfig(n_iterations=5, seed=2))
    doc = inference.documents[0]
    assert doc.n_unknown_tokens == 1  # raretoken dropped, like in training
    token_ids = [w for phrase in doc.phrases for w in phrase]
    assert bundle.vocabulary.id_of("raretoken") not in token_ids


def test_unknown_tokens_are_dropped_and_counted(inferencer):
    result = inferencer.infer_texts(
        ["zzzunknownzzz qqqneverseenqqq data mining"], InferenceConfig(seed=0))
    doc = result.documents[0]
    assert doc.n_unknown_tokens == 2
    assert doc.phrases, "known tokens should still be segmented"


def test_fully_unknown_document_gets_prior_theta(model_bundle, inferencer):
    result = inferencer.infer_texts(
        ["zzzunknownzzz qqqneverseenqqq"], InferenceConfig(seed=0))
    doc = result.documents[0]
    assert doc.phrases == []
    alpha = np.asarray(model_bundle.alpha, dtype=float)
    assert np.allclose(doc.theta, alpha / alpha.sum())


def test_infer_segmented_matches_text_path(model_bundle, inferencer, unseen_texts):
    """Feeding the text path's segmentation back through infer_segmented must
    reproduce the same fold-in exactly."""
    config = InferenceConfig(n_iterations=15, seed=21)
    by_text = inferencer.infer_texts(unseen_texts, config)
    phrase_docs = [doc.phrases for doc in by_text.documents]
    by_segments = inferencer.infer_segmented(phrase_docs, config)
    assert np.array_equal(by_text.theta, by_segments.theta)


def test_top_topics_ordering(inferencer, unseen_texts):
    result = inferencer.infer_texts(unseen_texts, InferenceConfig(seed=4))
    for doc in result.documents:
        tops = doc.top_topics(3)
        probabilities = [p for _, p in tops]
        assert probabilities == sorted(probabilities, reverse=True)


def test_underflowed_posterior_falls_back_uniformly_and_identically():
    """A clique long enough to underflow Eq. 7 to exactly 0 must fall back
    to an unbiased uniform draw — identically in both engines."""
    from repro.topicmodel.lda import TopicModelState

    n_topics, vocabulary = 5, 10
    state = TopicModelState(
        topic_word_counts=np.zeros((vocabulary, n_topics), dtype=np.int64),
        doc_topic_counts=np.zeros((1, n_topics), dtype=np.int64),
        topic_counts=np.full(n_topics, 10**7, dtype=np.int64),
        alpha=np.full(n_topics, 0.5), beta=0.01)
    inferencer = TopicInferencer(state, segmenter=None)
    giant_clique = [[tuple([0] * 40)]]  # (0.01 / 1e7)^40 underflows to 0.0

    assigned = set()
    for seed in range(12):
        results = [
            inferencer.infer_segmented(
                giant_clique,
                InferenceConfig(n_iterations=3, seed=seed, engine=engine))
            for engine in ("numpy", "reference", "batch")
        ]
        for other in results[1:]:
            assert np.array_equal(results[0].documents[0].clique_topics,
                                  other.documents[0].clique_topics)
        assigned.add(int(results[0].documents[0].clique_topics[0]))
    assert len(assigned) > 1, "fallback must not be biased to one topic"


def test_fold_in_sampler_rejects_degenerate_priors(model_bundle):
    flat = FlatPhraseCorpus([[(0, 1)]])
    with pytest.raises(ValueError, match="alpha > 0 and beta > 0"):
        FoldInSampler(flat, model_bundle.topic_word_counts,
                      model_bundle.topic_counts,
                      np.zeros(model_bundle.n_topics), model_bundle.beta)


def test_fold_in_sampler_rejects_out_of_range_tokens(model_bundle):
    vocabulary_size = model_bundle.topic_word_counts.shape[0]
    flat = FlatPhraseCorpus([[(vocabulary_size + 5,)]])
    with pytest.raises(ValueError, match="token ids must be in"):
        FoldInSampler(flat, model_bundle.topic_word_counts,
                      model_bundle.topic_counts, model_bundle.alpha,
                      model_bundle.beta)


def test_inferencer_without_vocabulary_rejects_raw_text(model_bundle):
    inferencer = TopicInferencer(model_bundle.state(), model_bundle.segmenter(),
                                 vocabulary=None)
    with pytest.raises(RuntimeError, match="without a vocabulary"):
        inferencer.infer_texts(["some text"])
