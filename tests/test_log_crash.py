"""DocumentLog crash recovery: SIGKILL at the two commit-critical points.

A child process appends a batch and kills itself (SIGKILL — no cleanup
handlers, exactly like a crash) at a deterministic point:

* ``mid-append`` — after the shard file hit disk, before the manifest
  commit (the manifest write is replaced by the kill);
* ``mid-manifest`` — inside the atomic manifest replace, after the temp
  file is written but before ``os.replace`` lands it.

In both cases the parent reopens the log and asserts the invariants the
replication layer builds on: the manifest is never torn, committed
documents stay committed and deduplicated, and replaying the interrupted
batch converges to a consistent log.
"""

import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.stream.log import DocumentLog

SRC = Path(__file__).resolve().parent.parent / "src"

BATCH_1 = ["stable document one", "stable document two"]
BATCH_2 = ["crashing batch alpha", "crashing batch beta"]

_CHILD = textwrap.dedent("""\
    import os
    import signal
    import sys

    import repro.stream.log as log_module

    root, mode = sys.argv[1], sys.argv[2]
    log = log_module.DocumentLog.open(root)
    batch = ["crashing batch alpha", "crashing batch beta"]

    if mode == "mid-append":
        # Shard file written, manifest commit replaced by the kill.
        def die():
            os.kill(os.getpid(), signal.SIGKILL)
        log._write_manifest = die
    elif mode == "mid-manifest":
        # Temp manifest written, the atomic rename itself never runs.
        real_replace = os.replace
        def dying_replace(src, dst):
            if str(dst).endswith("manifest.json"):
                os.kill(os.getpid(), signal.SIGKILL)
            return real_replace(src, dst)
        log_module.os.replace = dying_replace
    else:
        raise SystemExit(f"unknown mode {mode}")
    log.append(batch, source="crash")
    raise SystemExit("append survived the scheduled crash")
""")


def _crash_append(root: Path, mode: str) -> None:
    """Run the child until its self-SIGKILL; assert it really crashed."""
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, str(root), mode],
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        capture_output=True, text=True, timeout=120)
    assert proc.returncode == -9, \
        f"child exited {proc.returncode}, not SIGKILL:\n{proc.stderr}"


@pytest.mark.parametrize("mode", ["mid-append", "mid-manifest"])
def test_sigkill_during_append_never_tears_the_log(tmp_path, mode):
    root = tmp_path / "log"
    log = DocumentLog.create(root)
    log.append(BATCH_1, source="seed")
    manifest_before = (root / "manifest.json").read_bytes()

    _crash_append(root, mode)

    # The manifest is exactly the pre-crash bytes: nothing torn, the
    # interrupted batch is simply not committed.
    assert (root / "manifest.json").read_bytes() == manifest_before
    recovered = DocumentLog.open(root)
    assert recovered.n_shards == 1
    assert recovered.n_documents == len(BATCH_1)

    # Dedup against committed history survives the crash...
    replay_old = recovered.append(BATCH_1, source="seed")
    assert replay_old.shard is None
    assert replay_old.n_duplicates == len(BATCH_1)

    # ...and replaying the interrupted batch converges: the orphan shard
    # file (mid-append) is overwritten under the same name, never leaked
    # as a dangling manifest entry.
    replay_new = recovered.append(BATCH_2, source="crash")
    assert replay_new.n_appended == len(BATCH_2)
    assert recovered.n_documents == len(BATCH_1) + len(BATCH_2)
    assert list(recovered.iter_texts()) == BATCH_1 + BATCH_2

    # A fresh open agrees byte-for-byte with the in-memory view.
    reread = DocumentLog.open(root)
    assert list(reread.iter_texts()) == BATCH_1 + BATCH_2
    assert [s.as_dict() for s in reread.shards] == \
        [s.as_dict() for s in recovered.shards]
