"""Docs checks: README quickstart, serving docs, doctests, docstring coverage.

Four gates keep the documentation honest:

* the README's CLI quickstart block is extracted verbatim and executed in
  a temporary directory, so the copy-pasteable commands can never drift
  from the shipped entry points;
* the serving docs (`docs/serving.md` and the README "Serve a model"
  section) are pinned to the implementation: every documented endpoint
  must exist (and vice versa), every documented `repro serve` flag must
  parse, and the documented `/v1/infer` schema is exercised against a
  live in-process server;
* public-API doctests are collected explicitly so their examples stay
  executable;
* an AST walk enforces docstring coverage (pydocstyle's D100–D104: every
  public module, class, function, and method) over the whole package, so
  coverage can't regress.
"""

import ast
import doctest
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
README = REPO / "README.md"
SRC = REPO / "src"


def _quickstart_commands():
    """Extract the `python -m repro ...` lines of the README quickstart."""
    text = README.read_text(encoding="utf-8")
    blocks = re.findall(r"```bash\n(.*?)```", text, flags=re.DOTALL)
    for block in blocks:
        lines = [line.strip() for line in block.splitlines() if line.strip()]
        if any(line.startswith("python -m repro mine") for line in lines):
            return [line for line in lines if line.startswith("python -m repro")]
    raise AssertionError("README quickstart block with `python -m repro mine` "
                         "not found")


def test_readme_quickstart_commands_run(tmp_path):
    """Every command in the README quickstart completes from a clean dir."""
    commands = _quickstart_commands()
    assert len(commands) >= 4, "quickstart should cover mine/fit/topics/infer"
    for command in commands:
        argv = command.split()
        assert argv[:3] == ["python", "-m", "repro"]
        proc = subprocess.run(
            [sys.executable] + argv[1:], cwd=tmp_path, text=True,
            capture_output=True, timeout=600,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0, f"{command!r} failed:\n{proc.stderr}"
    assert (tmp_path / "segmentation.npz").exists()
    assert (tmp_path / "model.npz").exists()
    assert (tmp_path / "mixtures.json").exists()


SERVING_DOC = REPO / "docs" / "serving.md"


def test_serving_doc_endpoints_match_implementation():
    """Every endpoint in docs/serving.md exists in the server, and vice
    versa — the endpoint reference cannot drift from the routes."""
    from repro.serve import ENDPOINTS

    text = SERVING_DOC.read_text(encoding="utf-8")
    documented = set(re.findall(
        r"`(/(?:healthz|metrics|debug/[a-z]+"
        r"|v1/[a-z]+(?:/[a-z]+|/<name>)*))`", text))
    assert documented == set(ENDPOINTS), (
        f"docs/serving.md endpoints {sorted(documented)} != implemented "
        f"{sorted(ENDPOINTS)}")
    readme = README.read_text(encoding="utf-8")
    assert "## Serve a model" in readme
    for endpoint in ENDPOINTS:
        assert f"`{endpoint}`" in readme, f"README must mention {endpoint}"


def test_readme_serve_quickstart_flags_parse():
    """The README's `repro serve` command uses only flags the CLI accepts."""
    from repro.cli import build_parser

    readme = README.read_text(encoding="utf-8")
    commands = [line.strip()
                for block in re.findall(r"```bash\n(.*?)```", readme,
                                        flags=re.DOTALL)
                for line in block.splitlines()
                if line.strip().startswith("python -m repro serve")]
    assert commands, "README must carry a `python -m repro serve` quickstart"
    serve_parser = None
    for action in build_parser()._subparsers._group_actions:
        serve_parser = action.choices.get("serve")
    assert serve_parser is not None
    known_flags = {option for action in serve_parser._actions
                   for option in action.option_strings}
    for command in commands:
        used = [token for token in command.split() if token.startswith("--")]
        unknown = set(used) - known_flags
        assert not unknown, f"README serve flags not in CLI: {sorted(unknown)}"


def test_serving_doc_schema_against_live_server(model_bundle, tmp_path):
    """Exercise the documented /v1/infer request/response schema for real."""
    from repro.io.artifacts import save_bundle
    from repro.serve import ModelRegistry, ReproServer, ServeClient

    path = tmp_path / "model.npz"
    save_bundle(path, model_bundle)
    registry = ModelRegistry()
    registry.register("model", path)
    server = ReproServer(registry, port=0)
    server.start_background()
    try:
        client = ServeClient(server.url)
        health = client.health()
        assert {"status", "models", "loaded", "uptime_seconds"} <= set(health)
        reply = client.infer(["an unseen document about data mining"],
                             seed=7, iterations=5)
        assert {"model", "n_topics", "iterations", "seed",
                "documents"} <= set(reply)
        document = reply["documents"][0]
        assert {"theta", "top_topics", "n_phrases",
                "n_unknown_tokens"} <= set(document)
        assert len(document["theta"]) == reply["n_topics"]
    finally:
        server.stop()


def test_serving_doc_covers_multi_process_contract():
    """docs/serving.md documents the fleet: the section exists, names the
    mechanism and the flag, and lists every ServeConfig field — so the
    config surface cannot grow undocumented knobs."""
    from repro.serve import ServeConfig

    text = SERVING_DOC.read_text(encoding="utf-8")
    assert "## Multi-process serving" in text
    for required in ("SO_REUSEPORT", "--workers", "ServeConfig",
                     "worker_id", "resident_version", "mmap",
                     "DeprecationWarning", "worker_scaling"):
        assert required in text, f"docs/serving.md must mention {required!r}"
    for field in ServeConfig.__dataclass_fields__:
        assert f"`{field}`" in text, \
            f"docs/serving.md must document ServeConfig.{field}"
    readme = README.read_text(encoding="utf-8")
    assert "--workers" in readme, "README serve quickstart must show --workers"
    assert "SO_REUSEPORT" in readme


STREAMING_DOC = REPO / "docs" / "streaming.md"


def _subparser(name):
    """Fetch one subcommand's parser from the CLI's argument tree."""
    from repro.cli import build_parser

    for action in build_parser()._subparsers._group_actions:
        parser = action.choices.get(name)
        if parser is not None:
            return parser
    raise AssertionError(f"CLI has no {name!r} subcommand")


def _repro_commands(text):
    """All `python -m repro ...` lines inside bash blocks of ``text``."""
    return [line.strip()
            for block in re.findall(r"```bash\n(.*?)```", text,
                                    flags=re.DOTALL)
            for line in block.splitlines()
            if line.strip().startswith("python -m repro ")]


def test_readme_streaming_quickstart_runs(tmp_path):
    """The README's streaming quickstart (ingest → ingest → refresh →
    models) executes verbatim from a clean directory and publishes v1."""
    readme = README.read_text(encoding="utf-8")
    blocks = re.findall(r"```bash\n(.*?)```", readme, flags=re.DOTALL)
    streaming = next((block for block in blocks
                      if "python -m repro ingest" in block), None)
    assert streaming, "README must carry a streaming quickstart block"
    commands = [line.strip() for line in streaming.splitlines()
                if line.strip()]
    assert any(cmd.startswith("python -m repro refresh") for cmd in commands)
    for command in commands:
        argv = command.split()
        assert argv[:3] == ["python", "-m", "repro"]
        proc = subprocess.run(
            [sys.executable] + argv[1:], cwd=tmp_path, text=True,
            capture_output=True, timeout=600,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0, f"{command!r} failed:\n{proc.stderr}"
    assert (tmp_path / "stream" / "models" / "current.npz").exists()
    assert (tmp_path / "stream" / "models" / "model-v00001.npz").exists()


def test_streaming_docs_flags_parse():
    """Every documented streaming command (README + docs/streaming.md)
    names a real subcommand and uses only flags its parser accepts."""
    text = README.read_text(encoding="utf-8") + \
        STREAMING_DOC.read_text(encoding="utf-8")
    commands = [cmd for cmd in _repro_commands(text)
                if cmd.split()[3] in ("ingest", "refresh", "models", "serve")]
    assert any("ingest" in cmd for cmd in commands)
    assert any("--stream" in cmd for cmd in commands
               if " serve " in cmd + " "), \
        "the docs must show serve --stream"
    for command in commands:
        subcommand = command.split()[3]
        known_flags = {option for action in _subparser(subcommand)._actions
                       for option in action.option_strings}
        used = [token for token in command.split() if token.startswith("--")]
        unknown = set(used) - known_flags
        assert not unknown, \
            f"documented flags not in `repro {subcommand}`: {sorted(unknown)}"


def test_streaming_doc_covers_the_contract():
    """docs/streaming.md documents the pieces the subsystem promises: the
    log format, merge semantics, refresh policy, and determinism
    contract — and the architecture doc points at the stream layer."""
    text = STREAMING_DOC.read_text(encoding="utf-8")
    for required in ("## Log format", "## Merge semantics",
                     "## Refresh policy", "## Determinism contract",
                     "## Incremental cost",
                     "current.npz", "repro ingest", "repro refresh",
                     "test_stream_refresh_matches_offline_pipeline"):
        assert required in text, f"docs/streaming.md must cover {required!r}"
    architecture = (REPO / "docs" / "architecture.md").read_text("utf-8")
    assert "repro.stream" in architecture
    assert "streaming.md" in architecture
    readme = README.read_text(encoding="utf-8")
    assert "## Stream documents into a model" in readme
    assert "docs/streaming.md" in readme


REPLICATION_DOC = REPO / "docs" / "replication.md"


def test_replication_doc_covers_the_contract():
    """docs/replication.md documents the shipping protocol, the rollout
    state machine, and the fault matrix the chaos tests enforce — and the
    README carries the quickstart that points at it."""
    text = REPLICATION_DOC.read_text(encoding="utf-8")
    for required in ("## Log shipping", "## Rollout", "## Fault matrix",
                     "`/v1/log/manifest`", "`/v1/log/shard/<name>`",
                     "X-Content-SHA256", "SHA-256", ".partial",
                     "adopt_shard", "byte-identical",
                     "canary", "rollback", ".rollback",
                     "rolled_back", "repro replicate", "repro rollout",
                     "SIGKILL", "truncate"):
        assert required in text, f"docs/replication.md must cover {required!r}"
    for state in ("idle", "canary", "fanout", "done", "rolled_back"):
        assert f"`{state}`" in text, \
            f"docs/replication.md must name rollout state {state!r}"
    readme = README.read_text(encoding="utf-8")
    assert "## Replicate and roll out" in readme
    assert "docs/replication.md" in readme


def test_replication_docs_flags_parse():
    """Every documented replicate/rollout command (README +
    docs/replication.md) uses only flags its parser accepts."""
    text = README.read_text(encoding="utf-8") + \
        REPLICATION_DOC.read_text(encoding="utf-8")
    commands = [cmd for cmd in _repro_commands(text)
                if cmd.split()[3] in ("replicate", "rollout")]
    assert any(cmd.split()[3] == "replicate" for cmd in commands), \
        "the docs must show repro replicate"
    assert any(cmd.split()[3] == "rollout" for cmd in commands), \
        "the docs must show repro rollout"
    for command in commands:
        subcommand = command.split()[3]
        known_flags = {option for action in _subparser(subcommand)._actions
                       for option in action.option_strings}
        used = [token for token in command.split() if token.startswith("--")]
        unknown = set(used) - known_flags
        assert not unknown, \
            f"documented flags not in `repro {subcommand}`: {sorted(unknown)}"


def test_observability_docs_pin_metric_catalog():
    """docs/observability.md lists every exported metric family and every
    span name, and the README points at it — the obs surface cannot
    drift undocumented."""
    from repro.obs import METRIC_CATALOG, SPAN_NAMES

    doc = (REPO / "docs" / "observability.md").read_text(encoding="utf-8")
    documented = set(re.findall(r"`repro_([a-z0-9_]+)`", doc))
    missing = set(METRIC_CATALOG) - documented
    assert not missing, f"metrics missing from docs table: {sorted(missing)}"
    for span in SPAN_NAMES:
        assert f"`{span}`" in doc, f"span {span} missing from glossary"
    for required in ("repro status", "X-Request-Id", "worker_id",
                     "metrics-reaped"):
        assert required in doc, f"docs/observability.md must cover {required!r}"
    readme = README.read_text(encoding="utf-8")
    assert "docs/observability.md" in readme
    assert "repro status" in readme or "-m repro status" in readme


def test_status_and_serve_observability_flags_parse():
    """The documented `repro status` / serve observability flags exist."""
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(["status", "--url", "http://x:1", "--json"])
    assert args.command == "status" and args.json
    args = parser.parse_args(["serve", "--model", "m.npz",
                              "--metrics-dir", "/tmp/m",
                              "--slow-request-seconds", "0.5"])
    assert args.metrics_dir == "/tmp/m"
    assert args.slow_request_seconds == 0.5
    args = parser.parse_args(["infer", "--url", "http://x:1", "--smoke"])
    assert args.url == "http://x:1" and args.model is None
    args = parser.parse_args(["serve", "--model", "m.npz",
                              "--history-interval", "0.5",
                              "--profile-dir", "/tmp/p"])
    assert args.history_interval == 0.5 and args.profile_dir == "/tmp/p"
    args = parser.parse_args(["status", "--url", "http://x:1", "--slo"])
    assert args.slo
    args = parser.parse_args(["slo", "--url", "http://x:1", "--json",
                              "--watch", "--interval", "1.5"])
    assert args.command == "slo" and args.json and args.watch
    assert args.interval == 1.5
    args = parser.parse_args(["rollout", "--version", "m.npz",
                              "--target", "a=http://x:1=/tmp/c.npz",
                              "--slo-gate"])
    assert args.slo_gate


@pytest.mark.parametrize("module_name", [
    "repro.core.topmine",
    "repro.core.phrase_lda",
    "repro.topicmodel.lda",
    "repro.utils.timing",
    "repro.obs.profile",
])
def test_public_api_doctests(module_name):
    """The usage examples in public docstrings must stay executable."""
    module = __import__(module_name, fromlist=["_"])
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module_name} should carry doctest examples"
    assert result.failed == 0, f"{module_name} has {result.failed} failing doctests"


def _missing_docstrings(path: Path):
    """Yield pydocstyle-style findings (D100–D104) for one source file."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    relative = path.relative_to(REPO)
    if ast.get_docstring(tree) is None:
        code = "D104" if path.name == "__init__.py" else "D100"
        yield f"{relative}: {code} missing module docstring"

    def walk(node, prefix=""):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if child.name.startswith("_"):
                    continue  # private class: its members are not public API
                if ast.get_docstring(child) is None:
                    yield f"{relative}: D101 undocumented class {child.name}"
                yield from walk(child, prefix=f"{child.name}.")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Public defs only; dunders (D105/D107) and nested functions
                # are out of scope, as in the default pydocstyle selection.
                if not child.name.startswith("_") and \
                        ast.get_docstring(child) is None:
                    code = "D102" if prefix else "D103"
                    yield (f"{relative}: {code} undocumented "
                           f"{'method' if prefix else 'function'} "
                           f"{prefix}{child.name}")

    yield from walk(tree)


def test_docstring_coverage_of_package():
    """Every public module, class, function, and method has a docstring."""
    findings = []
    for path in sorted((SRC / "repro").rglob("*.py")):
        if "_build" in path.parts:
            continue
        findings.extend(_missing_docstrings(path))
    assert not findings, "missing docstrings:\n" + "\n".join(findings)
