"""repro.replicate: log shipping and health-gated rollout, faults included.

The shipping tests pin the tentpole guarantee — a replica's log converges
byte-identical to the primary's manifest snapshot — under clean networks,
torn (truncated) shard bodies, partial-file resume, and a SIGKILLed
follower process restarting mid-replay.  The rollout tests drive two live
servers through a canary-first promotion and through a rollback forced by
a deliberately corrupt canary bundle.  All synchronization is
deadline-polling on observable state; no sleeps-as-coordination.
"""

import dataclasses
import json
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.io.artifacts import save_bundle
from repro.obs import parse_prometheus, sample_value
from repro.replicate import (
    LogFollower,
    ReplicationError,
    RolloutCoordinator,
    RolloutTarget,
)
from repro.serve import ModelRegistry, ReproServer, ServeClient, ServeConfig
from repro.stream.log import DocumentLog
from repro.testing import Fault, FaultInjector, FaultyProxy, kill_process
from repro.utils.retry import RetryPolicy

SRC = Path(__file__).resolve().parent.parent / "src"

BATCH_1 = ["frequent pattern mining in large databases",
           "topic models for short text corpora"]
BATCH_2 = ["support vector machines for classification",
           "query optimization in relational systems",
           "neural network training dynamics"]
BATCH_3 = ["phrase extraction with significance scores"]


def _build_primary_log(root):
    """A primary document log with two shards and an extra section."""
    log = DocumentLog.create(root)
    log.append(BATCH_1, source="batch-1")
    log.append(BATCH_2, source="batch-2")
    log.set_extra(owner="primary")
    return log


def _tree_bytes(root: Path):
    """Relative-path → bytes map of every file under ``root``."""
    return {path.relative_to(root).as_posix(): path.read_bytes()
            for path in sorted(root.rglob("*")) if path.is_file()}


def _serve_log(log_root, registry=None):
    """A live ReproServer publishing ``log_root`` on an ephemeral port."""
    config = ServeConfig(port=0, log_root=str(log_root))
    server = ReproServer(registry or ModelRegistry(), config)
    server.start_background()
    return server


def _poll(condition, timeout=30.0, interval=0.01):
    """Deadline-poll ``condition()`` (bounded wait, not a blind sleep)."""
    deadline = time.monotonic() + timeout
    while not condition():
        if time.monotonic() >= deadline:
            raise TimeoutError("condition not reached in time")
        time.sleep(interval)


# -- log endpoints ---------------------------------------------------------------------
def test_log_endpoints_serve_verified_ranges(tmp_path):
    log = _build_primary_log(tmp_path / "log")
    server = _serve_log(tmp_path / "log")
    try:
        client = ServeClient(server.url)
        body, headers = client.log_manifest()
        assert body == (tmp_path / "log" / "manifest.json").read_bytes()
        import hashlib
        assert headers["X-Content-SHA256"] == \
            hashlib.sha256(body).hexdigest()

        name = log.shards[0].name
        shard_bytes = log.shard_file_path(name).read_bytes()
        chunk, headers = client.log_shard_range(name, offset=3, length=10)
        assert chunk == shard_bytes[3:13]
        assert headers["X-Content-Offset"] == "3"
        assert int(headers["X-Shard-Size"]) == len(shard_bytes)
        digest = client.log_shard_digest(name)
        assert digest["size"] == len(shard_bytes)
        assert digest["sha256"] == hashlib.sha256(shard_bytes).hexdigest()

        reply = client.models_reply()
        assert reply["log"] == {"n_documents": 5, "n_shards": 2}
    finally:
        server.stop()


def test_log_endpoints_reject_bad_requests(tmp_path):
    from repro.serve import ServeError

    _build_primary_log(tmp_path / "log")
    server = _serve_log(tmp_path / "log")
    try:
        client = ServeClient(server.url, retries=0)
        with pytest.raises(ServeError) as info:
            client.log_shard_range("no-such-shard")
        assert info.value.status == 404
        with pytest.raises(ServeError) as info:
            client.log_shard_range("shard-00001", offset=10_000_000)
        assert info.value.status == 416
        with pytest.raises(ServeError) as info:
            client._request("/v1/log/shard/..%2fescape")
        assert info.value.status in (400, 404)
    finally:
        server.stop()


def test_log_endpoints_404_when_unconfigured(tmp_path):
    from repro.serve import ServeError

    server = ReproServer(ModelRegistry(), ServeConfig(port=0))
    server.start_background()
    try:
        with pytest.raises(ServeError) as info:
            ServeClient(server.url, retries=0).log_manifest()
        assert info.value.status == 404
    finally:
        server.stop()


# -- shipping --------------------------------------------------------------------------
def test_follower_replicates_byte_identically(tmp_path):
    _build_primary_log(tmp_path / "primary")
    server = _serve_log(tmp_path / "primary")
    try:
        follower = LogFollower(server.url, tmp_path / "replica")
        report = follower.sync_once()
        assert report.converged
        assert report.n_shards_fetched == 2
        assert report.n_documents_fetched == 5
        assert report.lag_documents == 0
        assert _tree_bytes(tmp_path / "replica") == \
            _tree_bytes(tmp_path / "primary")
    finally:
        server.stop()


def test_follower_is_incremental_and_idempotent(tmp_path):
    log = _build_primary_log(tmp_path / "primary")
    server = _serve_log(tmp_path / "primary")
    try:
        follower = LogFollower(server.url, tmp_path / "replica")
        assert follower.sync_once().n_shards_fetched == 2
        # Nothing new: a second cycle ships zero bytes.
        repeat = follower.sync_once()
        assert repeat.n_shards_fetched == 0
        assert repeat.n_bytes_fetched == 0
        assert repeat.converged
        # The primary appends; only the tail shard ships.
        log.append(BATCH_3, source="batch-3")
        tail = follower.sync_once()
        assert tail.n_shards_fetched == 1
        assert tail.n_documents_fetched == 1
        assert tail.converged
        assert _tree_bytes(tmp_path / "replica") == \
            _tree_bytes(tmp_path / "primary")
    finally:
        server.stop()


def test_follower_small_chunks_assemble_resumably(tmp_path):
    """Multi-range assembly (tiny chunk_bytes) and resume from a partial."""
    log = _build_primary_log(tmp_path / "primary")
    server = _serve_log(tmp_path / "primary")
    try:
        follower = LogFollower(server.url, tmp_path / "replica",
                               chunk_bytes=16)
        # Simulate a dead follower that got the first 10 bytes of shard 0.
        shard = log.shards[0]
        shard_bytes = log.shard_file_path(shard.name).read_bytes()
        partial = (tmp_path / "replica" / "shards" /
                   (shard.name + ".jsonl.partial"))
        partial.parent.mkdir(parents=True)
        partial.write_bytes(shard_bytes[:10])
        report = follower.sync_once()
        assert report.converged
        # Resume skipped the bytes already on disk.
        total = sum(len(log.shard_file_path(s.name).read_bytes())
                    for s in log.shards)
        assert report.n_bytes_fetched == total - 10
        assert _tree_bytes(tmp_path / "replica") == \
            _tree_bytes(tmp_path / "primary")
    finally:
        server.stop()


def test_follower_detects_divergence(tmp_path):
    _build_primary_log(tmp_path / "primary")
    divergent = DocumentLog.create(tmp_path / "replica")
    divergent.append(["a completely different document"], source="other")
    server = _serve_log(tmp_path / "primary")
    try:
        follower = LogFollower(server.url, tmp_path / "replica")
        with pytest.raises(ReplicationError, match="diverges"):
            follower.sync_once()
    finally:
        server.stop()


def test_truncated_shard_is_refetched_never_torn(tmp_path):
    """Chaos: the first shard body is cut mid-flight; the follower retries
    and converges, and at no commit point is the replica's manifest torn."""
    _build_primary_log(tmp_path / "primary")
    server = _serve_log(tmp_path / "primary")
    # Connection order for a 2-shard sync: 0 = manifest, 1 = shard-0 range
    # (truncated after the headers + a few body bytes), then retries.
    injector = FaultInjector(plan={1: Fault("truncate", after_bytes=200)})
    proxy = FaultyProxy("127.0.0.1", server.server_port, injector)
    proxy.start()
    commits = []

    def on_shard(shard):
        # At every commit the replica must reopen cleanly: no torn state.
        reopened = DocumentLog.open(tmp_path / "replica")
        commits.append((shard.name, reopened.n_documents))

    try:
        follower = LogFollower(
            proxy.url, tmp_path / "replica",
            retry=RetryPolicy(retries=5, base_delay=0.01, max_delay=0.05),
            on_shard=on_shard)
        report = follower.sync_once()
        assert report.converged
        assert follower.metrics.counter("shipping_retries_total") >= 1
        assert commits == [("shard-00001", 2), ("shard-00002", 5)]
        assert _tree_bytes(tmp_path / "replica") == \
            _tree_bytes(tmp_path / "primary")
    finally:
        proxy.stop()
        server.stop()


def test_sigkilled_follower_restarts_and_converges(tmp_path):
    """Chaos: SIGKILL the follower process mid-replay (after shard 0
    committed, while shard 1 is in flight), then restart — the replica
    must converge byte-identical, never exposing a torn manifest."""
    _build_primary_log(tmp_path / "primary")
    server = _serve_log(tmp_path / "primary")
    # Connections 0-2 complete shard 0 (manifest, range, digest); the
    # shard-1 range fetch (index 3) freezes until released — the
    # deterministic point where the SIGKILL lands.
    injector = FaultInjector(plan={3: Fault("hold")})
    proxy = FaultyProxy("127.0.0.1", server.server_port, injector)
    proxy.start()
    replica = tmp_path / "replica"
    child = subprocess.Popen(
        [sys.executable, "-m", "repro", "replicate",
         "--primary", proxy.url, "--root", str(replica), "--once"],
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    try:
        _poll(lambda: injector.connections >= 4, timeout=60.0)
        kill_process(child)
        assert child.returncode == -9
    finally:
        proxy.stop()

    # Mid-crash state is consistent: shard 0 committed, nothing torn.
    interrupted = DocumentLog.open(replica)
    assert interrupted.n_shards == 1
    assert interrupted.n_documents == 2

    try:
        follower = LogFollower(server.url, replica)
        report = follower.sync_once()
        assert report.converged
        assert report.n_shards_fetched == 1  # only the missing tail
        assert _tree_bytes(replica) == _tree_bytes(tmp_path / "primary")
    finally:
        server.stop()


# -- rollout ---------------------------------------------------------------------------
@pytest.fixture()
def fleet(model_bundle, tmp_path):
    """Two live serve targets, each watching its own publish path."""
    servers = []
    targets = []
    old = tmp_path / "model-v00001.npz"
    bundle_v1 = dataclasses.replace(
        model_bundle, metadata={**model_bundle.metadata, "stream_version": 1})
    save_bundle(old, bundle_v1)
    for name in ("alpha", "beta"):
        publish = tmp_path / name / "current.npz"
        publish.parent.mkdir()
        publish.write_bytes(old.read_bytes())
        registry = ModelRegistry()
        registry.register("m", publish)
        server = ReproServer(registry, ServeConfig(port=0))
        server.start_background()
        servers.append(server)
        targets.append(RolloutTarget(name=name, url=server.url,
                                     publish_path=str(publish)))
    yield targets, old, tmp_path
    for server in servers:
        server.stop()


def test_rollout_happy_path_promotes_whole_fleet(model_bundle, fleet):
    targets, _, tmp_path = fleet
    new = tmp_path / "model-v00002.npz"
    bundle_v2 = dataclasses.replace(
        model_bundle, metadata={**model_bundle.metadata, "stream_version": 2})
    save_bundle(new, bundle_v2)

    coordinator = RolloutCoordinator(targets, health_timeout=30.0,
                                     poll_interval=0.05)
    report = coordinator.rollout(new)
    assert report.succeeded and report.state == "done"
    assert [t.name for t in report.targets] == ["alpha", "beta"]
    assert all(t.promoted and t.healthy and not t.rolled_back
               for t in report.targets)
    for target in targets:
        publish = Path(target.publish_path)
        assert publish.read_bytes() == new.read_bytes()
        assert not publish.with_name(publish.name + ".rollback").exists()
        entry = ServeClient(target.url).models()[0]
        assert entry.get("error") is None
        assert entry["metadata"]["stream_version"] == 2
    assert coordinator.metrics.counter("rollout_promotions_total") == 2
    assert coordinator.metrics.gauge("rollout_state") == 3  # done


def test_rollout_broken_canary_rolls_back_cleanly(fleet):
    targets, old, tmp_path = fleet
    broken = tmp_path / "model-v00002.npz"
    broken.write_bytes(b"this is not an npz bundle")

    coordinator = RolloutCoordinator(targets, health_timeout=1.0,
                                     poll_interval=0.05)
    report = coordinator.rollout(broken)
    assert not report.succeeded and report.state == "rolled_back"
    # Only the canary was ever promoted; the fleet never fanned out.
    assert [t.name for t in report.targets] == ["alpha"]
    canary = report.targets[0]
    assert canary.promoted and canary.rolled_back and canary.healthy
    assert "model error" in canary.error
    # Every target is back on (or never left) the old bundle and serves.
    for target in targets:
        assert Path(target.publish_path).read_bytes() == old.read_bytes()
        entry = ServeClient(target.url).models()[0]
        assert entry.get("error") is None
        reply = ServeClient(target.url).infer(["a probe document"],
                                              iterations=2)
        assert reply["documents"][0]["theta"]
    assert coordinator.metrics.counter("rollout_rollbacks_total") == 1
    assert coordinator.metrics.gauge("rollout_state") == 4  # rolled_back


def test_rollout_rejects_bad_specs():
    with pytest.raises(ValueError, match="name=url=publish_path"):
        RolloutTarget.parse("only-a-name")
    target = RolloutTarget.parse("a=http://x:1=/tmp/current.npz")
    assert (target.name, target.url) == ("a", "http://x:1")
    with pytest.raises(ValueError, match="duplicate"):
        RolloutCoordinator([target, target])
    with pytest.raises(ValueError, match="canary"):
        RolloutCoordinator([target], canary="ghost")


def test_rollout_missing_version_raises():
    from repro.replicate import RolloutError

    target = RolloutTarget("a", "http://127.0.0.1:1", "/tmp/current.npz")
    coordinator = RolloutCoordinator([target])
    with pytest.raises(RolloutError, match="not found"):
        coordinator.rollout("/nonexistent/model-v00009.npz")


# -- metrics surface -------------------------------------------------------------------
def test_shipping_metrics_appear_in_a_scrape(tmp_path):
    """The replication families flow through the standard exposition."""
    _build_primary_log(tmp_path / "primary")
    server = _serve_log(tmp_path / "primary")
    try:
        follower = LogFollower(server.url, tmp_path / "replica")
        follower.sync_once()
        families = parse_prometheus(
            follower.metrics.render_prometheus())
        assert sample_value(families, "repro_shipping_shards_total") == 2.0
        assert sample_value(families, "repro_replica_lag_docs") == 0.0
        assert sample_value(families,
                            "repro_shipping_sync_seconds_count") == 1.0
    finally:
        server.stop()


# -- request-id propagation ------------------------------------------------------------
def test_client_extra_headers_reach_the_server(tmp_path, model_bundle):
    """``ServeClient(extra_headers=...)`` stamps every request: the
    server honours and echoes the supplied X-Request-Id."""
    bundle = tmp_path / "model.npz"
    save_bundle(bundle, model_bundle)
    registry = ModelRegistry()
    registry.register("m", bundle)
    server = ReproServer(registry, ServeConfig(port=0, batch_delay=0.0))
    server.start_background()
    try:
        client = ServeClient(server.url,
                             extra_headers={"X-Request-Id": "ship-42"})
        reply = client.infer(["phrase mining"], seed=1, iterations=2)
        assert reply["request_id"] == "ship-42"
        client.extra_headers["X-Request-Id"] = "ship-43"  # dict stays live
        reply = client.infer(["phrase mining"], seed=1, iterations=2)
        assert reply["request_id"] == "ship-43"
    finally:
        server.stop()


def test_follower_mints_one_request_id_per_sync(tmp_path):
    """Every sync cycle gets a fresh correlation id, stamped onto every
    HTTP call of that cycle via the client's live header dict."""
    _build_primary_log(tmp_path / "primary")
    server = _serve_log(tmp_path / "primary")
    try:
        follower = LogFollower(server.url, tmp_path / "replica")
        assert follower.request_id is None
        follower.sync_once()
        first = follower.request_id
        assert first is not None
        assert follower.client.extra_headers["X-Request-Id"] == first
        follower.sync_once()
        second = follower.request_id
        assert second is not None and second != first
        assert follower.client.extra_headers["X-Request-Id"] == second
    finally:
        server.stop()


def test_rollout_mints_request_id_and_slo_gate_passes_no_data(
        model_bundle, fleet):
    """A promotion carries one correlation id, and the SLO gate lets
    targets without history (no verdicts) through unchanged."""
    targets, _, tmp_path = fleet
    new = tmp_path / "model-v00002.npz"
    bundle_v2 = dataclasses.replace(
        model_bundle, metadata={**model_bundle.metadata, "stream_version": 2})
    save_bundle(new, bundle_v2)

    coordinator = RolloutCoordinator(targets, health_timeout=30.0,
                                     poll_interval=0.05, slo_gate=True)
    assert coordinator.request_id is None
    report = coordinator.rollout(new)
    assert report.succeeded
    assert coordinator.request_id is not None


def test_rollout_slo_gate_blocks_breaching_target(model_bundle, tmp_path):
    """A target actively burning error budget fails its health probe with
    an ``SLO breach`` reason and the canary rolls back."""
    from repro.obs import ShardWriter, shard_path

    old = tmp_path / "model-v00001.npz"
    save_bundle(old, dataclasses.replace(
        model_bundle,
        metadata={**model_bundle.metadata, "stream_version": 1}))
    publish = tmp_path / "publish" / "current.npz"
    publish.parent.mkdir()
    publish.write_bytes(old.read_bytes())
    registry = ModelRegistry()
    registry.register("m", publish)
    metrics_dir = tmp_path / "metrics"
    server = ReproServer(registry, ServeConfig(
        port=0, batch_delay=0.0, metrics_dir=str(metrics_dir),
        history_interval_seconds=0.1))
    server.start_background()
    try:
        # A sibling shard burns error budget hard — ~100% of requests
        # error, far over the 5% objective — and keeps burning through
        # the gated rollout so the breach never decays out of the fast
        # window mid-probe.
        import threading

        burner = ShardWriter(shard_path(metrics_dir, "9"))
        stop_burning = threading.Event()

        def burn():
            while not stop_burning.is_set():
                burner.inc_counter("http_requests_total", 100)
                burner.inc_counter("http_errors_total", 100)
                burner.flush()
                time.sleep(0.05)

        burning = threading.Thread(target=burn, daemon=True)
        burning.start()
        try:
            client = ServeClient(server.url)
            _poll(lambda: any(
                verdict["name"] == "http_error_ratio" and
                verdict["status"] == "breach"
                for verdict in client.health().get("slo") or []),
                timeout=30.0)

            new = tmp_path / "model-v00002.npz"
            save_bundle(new, dataclasses.replace(
                model_bundle,
                metadata={**model_bundle.metadata, "stream_version": 2}))
            target = RolloutTarget(name="only", url=server.url,
                                   publish_path=str(publish))
            gated = RolloutCoordinator([target], health_timeout=2.0,
                                       poll_interval=0.05, slo_gate=True)
            report = gated.rollout(new)
            assert not report.succeeded
            assert "SLO breach: http_error_ratio" in \
                report.targets[0].error
            assert publish.read_bytes() == old.read_bytes()  # rolled back
        finally:
            stop_burning.set()
            burning.join(timeout=10)
            burner.close()

        # The same fleet state passes without the gate: opt-in only.
        ungated = RolloutCoordinator([target], health_timeout=30.0,
                                     poll_interval=0.05)
        assert ungated.rollout(new).succeeded
    finally:
        server.stop()
