"""Tests for the benchmark harness and its JSON artifact schema."""

import json

import pytest

from repro.bench import BenchConfig, run_benchmarks, validate_report
from repro.bench.report import SCHEMA, load_report, make_report, write_report


@pytest.fixture(scope="module")
def smoke_reports(tmp_path_factory):
    output_dir = tmp_path_factory.mktemp("bench")
    config = BenchConfig(sizes=(40,), sweeps=1, repeats=1, n_topics=4,
                         serving_requests=12, serving_concurrency=4,
                         output_dir=output_dir)
    reports = run_benchmarks(config)
    return output_dir, reports


def test_all_stages_write_artifacts(smoke_reports):
    output_dir, reports = smoke_reports
    for stage in ("phrase_mining", "segmentation", "phrase_lda", "topmine",
                  "serving", "ingestion"):
        assert stage in reports
        path = output_dir / f"BENCH_{stage}.json"
        assert path.exists()
        loaded = load_report(path)
        assert loaded["benchmark"] == stage
        assert loaded["schema"] == SCHEMA


def test_reports_validate_and_round_trip(smoke_reports):
    output_dir, reports = smoke_reports
    for report in reports.values():
        validate_report(report)
        # JSON round trip preserves validity
        validate_report(json.loads(json.dumps(report)))


def test_mining_and_segmentation_reports_race_engines(smoke_reports):
    """The front-end stages record both engines plus headline speedups."""
    _, reports = smoke_reports
    for stage in ("phrase_mining", "segmentation"):
        report = reports[stage]
        engines = {r["engine"] for r in report["records"]}
        assert engines == {"reference", "numpy"}
        numpy_records = [r for r in report["records"] if r["engine"] == "numpy"]
        assert all("speedup_vs_reference" in r for r in numpy_records)
        summary = report["summary"]
        assert summary["speedups"]["numpy"] > 0
        assert summary["best_speedup"] == summary["speedups"]["numpy"]
        assert summary["tokens_per_second"]


def test_compare_reports_matches_and_flags_regressions(smoke_reports):
    from repro.bench.compare import compare_reports, compare_runs

    _, reports = smoke_reports
    report = reports["phrase_mining"]
    same = compare_reports(report, report, threshold=2.0)
    assert same and all(not c.regressed for c in same)
    assert all(c.speedup == pytest.approx(1.0) for c in same)

    slowed = json.loads(json.dumps(report))
    for record in slowed["records"]:
        record["seconds"] *= 10.0
    regressions = compare_reports(report, slowed, threshold=2.0)
    assert all(c.regressed for c in regressions)
    # ...but a forgiving threshold passes
    assert not any(c.regressed
                   for c in compare_reports(report, slowed, threshold=20.0))

    lines, n_regressions = compare_runs({"phrase_mining": report},
                                        {"phrase_mining": slowed})
    assert n_regressions == len(regressions)
    assert any("REGRESSION" in line for line in lines)

    with pytest.raises(ValueError, match="cannot compare"):
        compare_reports(report, reports["segmentation"])


def test_compare_skips_unmatched_records(smoke_reports):
    from repro.bench.compare import compare_runs

    _, reports = smoke_reports
    report = reports["segmentation"]
    other = json.loads(json.dumps(report))
    for record in other["records"]:
        record["n_documents"] += 1  # no key overlap
    lines, n_regressions = compare_runs({"segmentation": report},
                                        {"segmentation": other})
    assert n_regressions == 0
    assert any("no records matched" in line for line in lines)

    # Partial overlap: unmatched records are *reported* as skipped, never
    # silently dropped from the gate's output.
    partial = json.loads(json.dumps(report))
    partial["records"][0]["n_documents"] += 1
    lines, n_regressions = compare_runs({"segmentation": report},
                                        {"segmentation": partial})
    assert n_regressions == 0
    assert any("1 record(s) had no baseline match" in line for line in lines)


def test_load_baselines_from_directory_and_files(smoke_reports, tmp_path):
    from repro.bench.compare import load_baselines

    output_dir, reports = smoke_reports
    baselines = load_baselines([output_dir], ["phrase_mining", "segmentation"])
    assert set(baselines) == {"phrase_mining", "segmentation"}
    by_file = load_baselines([output_dir / "BENCH_serving.json"], [])
    assert set(by_file) == {"serving"}
    with pytest.raises(FileNotFoundError):
        load_baselines([tmp_path], ["phrase_mining"])


def test_bench_cli_compare_gate(smoke_reports, tmp_path):
    """`--compare` exits 0 against itself and 1 against a faked-fast baseline."""
    from repro.bench.__main__ import main

    output_dir, reports = smoke_reports
    argv = ["--smoke", "--sizes", "40", "--topics", "4",
            "--stages", "phrase_mining",
            "--output-dir", str(tmp_path / "fresh"),
            "--compare", str(output_dir)]
    assert main(argv) == 0

    impossible = json.loads(json.dumps(reports["phrase_mining"]))
    for record in impossible["records"]:
        record["seconds"] /= 1e6  # nothing real can keep up with this
    baseline_dir = tmp_path / "impossible"
    write_report(impossible, baseline_dir)
    argv[-1] = str(baseline_dir)
    assert main(argv) == 1

    # Regression: when the output directory IS the baseline directory, the
    # baselines must be loaded before the fresh run overwrites them —
    # otherwise the gate compares the run against itself and always passes.
    argv[argv.index("--output-dir") + 1] = str(baseline_dir)
    assert main(argv) == 1


def test_phrase_lda_report_has_speedups(smoke_reports):
    _, reports = smoke_reports
    summary = reports["phrase_lda"]["summary"]
    assert "speedups" in summary
    assert "numpy" in summary["speedups"]
    assert summary["speedups"]["numpy"] > 0
    assert summary["best_speedup"] >= summary["speedups"]["numpy"]
    engines = {r["engine"] for r in reports["phrase_lda"]["records"]}
    assert {"reference", "numpy"} <= engines


def test_serving_report_records_throughput(smoke_reports):
    """The serving bench must record a measurable docs/sec figure plus
    latency percentiles in the validated schema."""
    _, reports = smoke_reports
    report = reports["serving"]
    summary = report["summary"]
    assert summary["docs_per_second"] > 0
    assert summary["latency_p95_ms"] >= summary["latency_p50_ms"] > 0
    assert summary["requests"] == 12
    record = report["records"][0]
    assert record["stage"] == "serving"
    assert record["n_documents"] == 12
    assert record["seconds"] > 0
    assert record["concurrency"] == 4


def test_ingestion_report_records_throughput_and_latency(smoke_reports):
    """The ingestion stage reports ingest docs/sec plus refresh latency in
    records keyed compatibly with the --compare regression gate."""
    _, reports = smoke_reports
    report = reports["ingestion"]
    record = report["records"][0]
    assert record["stage"] == "ingestion"
    assert record["engine"] == "numpy"
    assert record["shards"] >= 1
    assert record["docs_per_second"] > 0
    assert record["seconds"] == pytest.approx(
        record["ingest_seconds"] + record["refresh_seconds"])
    assert record["model_documents"] == record["n_unique_documents"]
    summary = report["summary"]
    assert summary["docs_per_second"] > 0
    assert summary["refresh_seconds"] > 0
    # The record key matches the committed-baseline gate's matching rule.
    from repro.bench.compare import record_key

    assert record_key(record) == ("ingestion", report["config"]["dataset"],
                                  "numpy", record["n_documents"])


def test_timing_helpers_shared_by_bench_and_metrics():
    """percentile/LatencyTracker/MetricsRegistry are the one stats path."""
    from repro.utils.timing import LatencyTracker, MetricsRegistry, percentile

    assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)
    assert percentile([5.0], 95) == 5.0
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 200)

    tracker = LatencyTracker(max_samples=3)
    for value in (0.1, 0.2, 0.3, 0.4):  # 0.1 falls out of the window
        tracker.observe(value)
    assert tracker.count == 4
    assert tracker.quantile(50) == pytest.approx(0.3)

    metrics = MetricsRegistry()
    metrics.increment("hits", 2)
    metrics.observe("latency_seconds", 0.25)
    snapshot = metrics.snapshot()
    assert snapshot["counters"]["hits"] == 2
    assert snapshot["latencies"]["latency_seconds"]["count"] == 1
    text = metrics.render_prometheus()
    assert "repro_hits 2" in text
    assert 'repro_latency_seconds{quantile="0.5"} 0.25' in text


def test_topmine_report_records_figure8(smoke_reports):
    _, reports = smoke_reports
    summary = reports["topmine"]["summary"]
    assert "figure8" in summary
    for split in summary["figure8"].values():
        assert set(split) == {"phrase_mining", "topic_modeling"}


def test_speedups_come_from_largest_size(tmp_path):
    """Headline speedups must reflect the largest corpus even when sizes
    are listed in descending order."""
    from repro.bench.runner import bench_phrase_lda

    config = BenchConfig(sizes=(60, 40), sweeps=1, repeats=1, n_topics=3,
                         engines=("reference", "numpy"), output_dir=tmp_path)
    report = bench_phrase_lda(config)
    largest = [r for r in report["records"]
               if r["n_documents"] == 60 and r["engine"] == "numpy"][0]
    assert report["summary"]["speedups"]["numpy"] == pytest.approx(
        largest["speedup_vs_reference"])


def test_validate_report_rejects_malformed():
    with pytest.raises(ValueError):
        validate_report({"schema": SCHEMA})
    with pytest.raises(ValueError):
        validate_report("not a dict")
    good = make_report("unit", {}, [], {})
    bad = dict(good)
    bad["records"] = [{"stage": "x"}]  # missing dataset/n_documents/seconds
    with pytest.raises(ValueError):
        validate_report(bad)
    bad_schema = dict(good)
    bad_schema["schema"] = "something/else"
    with pytest.raises(ValueError):
        validate_report(bad_schema)


def test_write_report_rejects_invalid(tmp_path):
    with pytest.raises(ValueError):
        write_report({"schema": SCHEMA}, tmp_path)


def test_unknown_stage_raises(tmp_path):
    config = BenchConfig(stages=("warp_drive",), output_dir=tmp_path)
    with pytest.raises(ValueError):
        run_benchmarks(config)


def test_cli_smoke(tmp_path):
    from repro.bench.__main__ import main

    exit_code = main(["--smoke", "--sizes", "40", "--topics", "4",
                      "--stages", "phrase_lda", "--output-dir", str(tmp_path)])
    assert exit_code == 0
    assert (tmp_path / "BENCH_phrase_lda.json").exists()
