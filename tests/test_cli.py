"""`python -m repro` CLI: the mine → fit → topics → infer workflow."""

import json

import pytest

from repro.cli import main
from repro.io.artifacts import load_model, load_segmentation


@pytest.fixture(scope="module")
def pipeline_artifacts(tmp_path_factory):
    """Run the CI smoke pipeline once: mine → fit, returning both paths."""
    root = tmp_path_factory.mktemp("cli")
    seg = root / "seg.npz"
    model = root / "model.npz"
    assert main(["mine", "--smoke", "--seed", "7", "--output", str(seg)]) == 0
    assert main(["fit", "--smoke", "--segmentation", str(seg), "--seed", "7",
                 "--output", str(model)]) == 0
    return seg, model


def test_mine_writes_valid_segmentation_bundle(pipeline_artifacts):
    seg, _ = pipeline_artifacts
    bundle = load_segmentation(seg)
    assert len(bundle.segmented) > 0
    assert bundle.mining.num_frequent_phrases() > 0
    assert sum(d.num_multiword_phrases for d in bundle.segmented) > 0


def test_fit_writes_valid_model_bundle(pipeline_artifacts):
    _, model = pipeline_artifacts
    bundle = load_model(model)
    assert bundle.n_topics == 5  # the --smoke default
    assert bundle.metadata["engine"] in ("numpy", "c")
    assert any(bundle.topical_frequencies)


def test_topics_command_renders_tables(pipeline_artifacts, capsys):
    _, model = pipeline_artifacts
    assert main(["topics", "--model", str(model), "--n", "4"]) == 0
    out = capsys.readouterr().out
    assert "1-grams" in out and "n-grams" in out
    assert "Topic 1" in out


def test_infer_command_writes_mixtures(pipeline_artifacts, tmp_path, capsys):
    _, model = pipeline_artifacts
    mixtures = tmp_path / "mixtures.json"
    assert main(["infer", "--smoke", "--model", str(model), "--seed", "11",
                 "--output", str(mixtures)]) == 0
    out = capsys.readouterr().out
    assert "folded in" in out

    payload = json.loads(mixtures.read_text())
    assert payload["n_topics"] == 5
    assert len(payload["documents"]) == 20  # the --smoke default
    for document in payload["documents"]:
        assert len(document["theta"]) == 5
        assert abs(sum(document["theta"]) - 1.0) < 1e-3


def test_infer_is_deterministic_across_invocations(pipeline_artifacts, tmp_path):
    _, model = pipeline_artifacts
    payloads = []
    for name in ("a.json", "b.json"):
        out = tmp_path / name
        assert main(["infer", "--smoke", "--model", str(model), "--seed", "5",
                     "--output", str(out)]) == 0
        payloads.append(json.loads(out.read_text()))
    assert payloads[0]["documents"] == payloads[1]["documents"]


def test_infer_from_input_file(pipeline_artifacts, tmp_path, capsys):
    _, model = pipeline_artifacts
    docs = tmp_path / "docs.txt"
    docs.write_text("data mining association rules\n"
                    "machine translation speech recognition\n")
    assert main(["infer", "--model", str(model), "--input", str(docs),
                 "--iterations", "10", "--seed", "3"]) == 0
    assert "folded in 2 documents" in capsys.readouterr().out


def test_infer_reads_jsonl_from_stdin(pipeline_artifacts, tmp_path,
                                      monkeypatch, capsys):
    """`--input -` consumes JSONL documents (strings or {"text": ...})."""
    import io

    _, model = pipeline_artifacts
    jsonl = ('"data mining association rules"\n'
             '\n'
             '{"text": "machine translation speech recognition"}\n')
    monkeypatch.setattr("sys.stdin", io.StringIO(jsonl))
    out_path = tmp_path / "stdin-mixtures.json"
    assert main(["infer", "--model", str(model), "--input", "-",
                 "--iterations", "5", "--seed", "3",
                 "--output", str(out_path)]) == 0
    assert "folded in 2 documents from stdin" in capsys.readouterr().out
    payload = json.loads(out_path.read_text())
    assert len(payload["documents"]) == 2


def test_infer_stdin_rejects_invalid_jsonl(pipeline_artifacts, monkeypatch):
    import io

    _, model = pipeline_artifacts
    monkeypatch.setattr("sys.stdin", io.StringIO("not json at all\n"))
    with pytest.raises(SystemExit, match="line 1 is not valid JSON"):
        main(["infer", "--model", str(model), "--input", "-"])
    monkeypatch.setattr("sys.stdin", io.StringIO('{"no_text_field": 1}\n'))
    with pytest.raises(SystemExit, match="JSON string or an"):
        main(["infer", "--model", str(model), "--input", "-"])


def test_serve_requires_a_model_source(capsys):
    assert main(["serve"]) == 2
    assert "nothing to serve" in capsys.readouterr().err


def test_serve_command_serves_saved_bundle(pipeline_artifacts):
    """`repro serve` answers /healthz and /v1/infer for a CLI-trained bundle."""
    import threading

    from repro.serve import ModelRegistry, ReproServer, ServeClient

    _, model = pipeline_artifacts
    # Drive the same stack cmd_serve wires up, on an ephemeral port (the
    # foreground serve_forever loop itself is exercised by the CI smoke).
    registry = ModelRegistry(capacity=2)
    registry.register("model", model)
    server = ReproServer(registry, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        client = ServeClient(server.url)
        assert client.health()["status"] == "ok"
        reply = client.infer(["data mining association rules"], seed=5,
                             iterations=5)
        assert len(reply["documents"][0]["theta"]) == 5
    finally:
        server.stop()
        thread.join(timeout=5)
    assert not thread.is_alive()


def test_fit_rejects_conflicting_source_with_segmentation(pipeline_artifacts,
                                                          tmp_path, capsys):
    seg, _ = pipeline_artifacts
    code = main(["fit", "--segmentation", str(seg), "--dataset", "dblp-titles",
                 "--output", str(tmp_path / "o.npz")])
    assert code == 2
    err = capsys.readouterr().err
    assert "--dataset" in err and "inline mining" in err


def test_fit_rejects_model_bundle_as_segmentation(pipeline_artifacts, tmp_path,
                                                  capsys):
    _, model = pipeline_artifacts
    code = main(["fit", "--segmentation", str(model),
                 "--output", str(tmp_path / "out.npz")])
    assert code == 2
    assert "expected 'segmentation'" in capsys.readouterr().err


def test_topics_rejects_missing_bundle(tmp_path, capsys):
    code = main(["topics", "--model", str(tmp_path / "missing.npz")])
    assert code == 2
    assert "not found" in capsys.readouterr().err


def test_smoke_does_not_override_explicit_values(pipeline_artifacts, tmp_path):
    seg, _ = pipeline_artifacts
    out = tmp_path / "explicit.npz"
    assert main(["fit", "--smoke", "--segmentation", str(seg), "--topics", "7",
                 "--iterations", "2", "--seed", "1", "--output", str(out)]) == 0
    assert load_model(out).n_topics == 7


def test_fit_unavailable_engine_fails_cleanly(pipeline_artifacts, tmp_path):
    import os
    import subprocess
    import sys
    from pathlib import Path

    seg, _ = pipeline_artifacts
    src = Path(__file__).resolve().parent.parent / "src"
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "fit", "--segmentation", str(seg),
         "--engine", "c", "--iterations", "1", "--output",
         str(tmp_path / "m.npz")],
        capture_output=True, text=True,
        env={**os.environ, "PYTHONPATH": str(src),
             "REPRO_DISABLE_C_KERNEL": "1"})
    assert proc.returncode == 2
    assert proc.stderr.startswith("error:")
    assert "Traceback" not in proc.stderr


def test_no_command_prints_help(capsys):
    assert main([]) == 1
    assert "mine" in capsys.readouterr().out


def test_bench_subcommand_forwards(tmp_path, capsys):
    code = main(["bench", "--smoke", "--stages", "phrase_mining",
                 "--sizes", "40", "--output-dir", str(tmp_path)])
    assert code == 0
    assert (tmp_path / "BENCH_phrase_mining.json").exists()


# -- streaming subcommands ------------------------------------------------------------
def test_ingest_refresh_models_workflow(tmp_path, capsys):
    """The full streaming CLI loop: create-on-first-ingest, frozen config,
    policy-gated refresh, forced refresh, and the models listing."""
    stream = tmp_path / "stream"
    assert main(["ingest", "--stream", str(stream), "--dataset",
                 "dblp-titles", "--n-docs", "150", "--seed", "7",
                 "--topics", "4", "--iterations", "5"]) == 0
    out = capsys.readouterr().out
    assert "created stream" in out and "ingested 150 document(s)" in out

    # The configuration froze at creation: later config flags are errors.
    assert main(["ingest", "--stream", str(stream), "--dataset",
                 "dblp-titles", "--n-docs", "10", "--topics", "6"]) == 2
    assert "--topics" in capsys.readouterr().err

    # Ingest fresh documents and refresh in one go.
    assert main(["ingest", "--stream", str(stream), "--dataset",
                 "dblp-titles", "--n-docs", "100", "--seed", "9",
                 "--refresh"]) == 0
    out = capsys.readouterr().out
    assert "published version 1" in out
    assert "hot-swap" in out

    # Nothing pending: the policy declines, --force overrides.
    assert main(["refresh", "--stream", str(stream)]) == 0
    assert "policy not satisfied" in capsys.readouterr().out
    assert main(["refresh", "--stream", str(stream), "--force"]) == 0
    assert "published version 2" in capsys.readouterr().out

    # The models listing sees current.npz plus both immutable versions.
    assert main(["models", str(stream / "models")]) == 0
    table = capsys.readouterr().out
    for name in ("current", "model-v00001", "model-v00002"):
        assert name in table
    assert main(["models", str(stream / "models"), "--json"]) == 0
    listing = json.loads(capsys.readouterr().out)
    assert {entry["name"] for entry in listing} == \
        {"current", "model-v00001", "model-v00002"}
    assert all(entry["kind"] == "model" for entry in listing)
    assert listing[0]["metadata"]["stream_version"] == 2


def test_ingest_all_duplicates_reports_nothing_new(tmp_path, capsys):
    stream = tmp_path / "stream"
    assert main(["ingest", "--stream", str(stream), "--dataset",
                 "dblp-titles", "--n-docs", "50", "--seed", "7",
                 "--topics", "4", "--iterations", "5"]) == 0
    capsys.readouterr()
    assert main(["ingest", "--stream", str(stream), "--dataset",
                 "dblp-titles", "--n-docs", "50", "--seed", "7"]) == 0
    assert "ingested nothing" in capsys.readouterr().out


def test_models_handles_junk_and_missing_directories(tmp_path, capsys):
    bundles = tmp_path / "bundles"
    bundles.mkdir()
    (bundles / "junk.npz").write_bytes(b"not a bundle")
    assert main(["models", str(bundles)]) == 0
    assert "junk" in capsys.readouterr().out
    assert main(["models", str(tmp_path / "empty-nonexistent")]) == 2
    assert "not found" in capsys.readouterr().err
    (tmp_path / "empty").mkdir()
    assert main(["models", str(tmp_path / "empty")]) == 0
    assert "no .npz bundles" in capsys.readouterr().out
