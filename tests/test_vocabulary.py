"""Vocabulary serialisation under incremental growth: id stability across
export/from_entries round-trips, OOV behaviour, and the lossless
export_state/from_state path the streaming layer depends on."""

import pytest

from repro.text.preprocess import Preprocessor
from repro.text.vocabulary import Vocabulary
from repro.datasets.registry import load_dataset


@pytest.fixture()
def shard_texts():
    """Two batches of titles sharing much of their vocabulary."""
    texts = load_dataset("dblp-titles", n_documents=240, seed=11).texts
    return texts[:120], texts[120:]


def _grown(vocabulary, texts):
    """Grow ``vocabulary`` with preprocessed ``texts`` (ingest-style)."""
    preprocessor = Preprocessor()
    for text in texts:
        for chunk in preprocessor.process_text(text):
            for stem, surface in chunk:
                vocabulary.add(stem, surface_form=surface)
    return vocabulary


def test_export_entries_round_trip_preserves_ids_and_unstem():
    vocabulary = Vocabulary()
    vocabulary.add("mine", surface_form="mining")
    vocabulary.add("data", surface_form="data")
    vocabulary.add("mine", surface_form="mining")
    rebuilt = Vocabulary.from_entries(vocabulary.export_entries())
    assert rebuilt.word_to_id == vocabulary.word_to_id
    assert rebuilt.id_to_word == vocabulary.id_to_word
    for word_id in range(len(vocabulary)):
        assert rebuilt.frequency_of(word_id) == vocabulary.frequency_of(word_id)
        assert rebuilt.unstem_id(word_id) == vocabulary.unstem_id(word_id)


def test_round_trip_then_growth_never_remaps_existing_ids(shard_texts):
    """Merging shard vocabularies (round-trip + grow) keeps every existing
    id, and assigns the same new ids a single offline pass would."""
    first, second = shard_texts
    grown_once = _grown(Vocabulary(), first)
    snapshot_ids = dict(grown_once.word_to_id)

    # Round-trip through both serialisation paths, then grow with shard 2.
    for restore in (lambda v: Vocabulary.from_entries(v.export_entries()),
                    lambda v: Vocabulary.from_state(v.export_state())):
        restored = restore(grown_once)
        merged = _grown(restored, second)
        for word, word_id in snapshot_ids.items():
            assert merged.word_to_id[word] == word_id, \
                f"id of {word!r} was remapped under incremental growth"
        offline = _grown(Vocabulary(), list(first) + list(second))
        assert merged.word_to_id == offline.word_to_id
        assert [merged.frequency_of(i) for i in range(len(merged))] == \
            [offline.frequency_of(i) for i in range(len(offline))]


def test_oov_handling_unchanged_after_round_trip(shard_texts):
    first, _ = shard_texts
    vocabulary = _grown(Vocabulary(), first)
    rebuilt = Vocabulary.from_entries(vocabulary.export_entries())
    tokens = ["zzz-unknown-zzz", vocabulary.id_to_word[0]]
    assert vocabulary.encode(tokens, grow=False) == \
        rebuilt.encode(tokens, grow=False) == [0]
    assert len(rebuilt) == len(vocabulary)  # grow=False never added


def test_export_state_preserves_minority_surface_forms():
    """from_entries keeps only the best surface form (fine for bundles);
    from_state keeps the full counters, which incremental growth needs to
    track unstem flips exactly like an offline pass."""
    def base():
        vocabulary = Vocabulary()
        for _ in range(2):
            vocabulary.add("run", surface_form="running")
        for _ in range(3):
            vocabulary.add("run", surface_form="runs")
        assert vocabulary.unstem("run") == "runs"
        return vocabulary

    def grow(target):
        for _ in range(2):
            target.add("run", surface_form="running")
        return target

    offline = grow(base())                  # running=4 > runs=3: flips
    assert offline.unstem("run") == "running"

    lossless = grow(Vocabulary.from_state(base().export_state()))
    assert lossless.unstem("run") == "running"
    # The lossy path cannot represent this: only the best form survives
    # (with its count inflated to the word frequency), so the flip that an
    # offline pass would see is missed after the round trip.
    lossy = grow(Vocabulary.from_entries(base().export_entries()))
    assert lossy.unstem("run") == "runs"


def test_export_state_round_trip_is_lossless(shard_texts):
    vocabulary = _grown(Vocabulary(), shard_texts[0])
    rebuilt = Vocabulary.from_state(vocabulary.export_state())
    assert rebuilt.export_state() == vocabulary.export_state()
    assert rebuilt.export_entries() == vocabulary.export_entries()
