"""repro.obs: metric shards, fleet aggregation, tracing, structured logs.

The tentpole contracts under test:

* shard files take concurrent writers (threads in one process, and real
  sibling processes) without losing a single count;
* any scrape aggregates every live shard — per-``worker_id`` series plus
  fleet totals, with reaped (dead-worker) shards preserved in the
  totals;
* a two-worker fleet under load answers a single ``/metrics`` scrape
  whose fleet-total ``repro_http_requests_total`` equals the sum of the
  per-worker series, and every ``/v1/infer`` reply carries a request id
  whose span timings appear in the same scrape;
* ``METRIC_CATALOG`` is authoritative: a live scrape emits no family the
  catalog does not list.
"""

import io
import json
import multiprocessing
import os
import re
import threading
import urllib.request
from pathlib import Path

import pytest

from repro.io.artifacts import save_bundle
from repro.obs import (
    METRIC_CATALOG,
    REAPED_SHARD_NAME,
    SPAN_NAMES,
    ShardWriter,
    build_info,
    collect_shards,
    log_event,
    parse_prometheus,
    parse_shard_name,
    reap_stale_shards,
    render_fleet,
    sample_value,
    sanitize_request_id,
    shard_path,
    span_metric,
)
from repro.obs.tracing import RequestTrace, new_request_id
from repro.serve import ModelRegistry, ReproServer, ServeConfig, ServeFleet
from repro.serve.client import ServeClient


@pytest.fixture(scope="module")
def bundle_path(model_bundle, tmp_path_factory):
    """The session model bundle saved once for the scrape tests."""
    path = tmp_path_factory.mktemp("obs") / "model.npz"
    save_bundle(path, model_bundle)
    return path


# -- shard files -----------------------------------------------------------------------
def test_shard_counter_and_histogram_roundtrip(tmp_path):
    path = shard_path(tmp_path, "0")
    writer = ShardWriter(path)
    writer.inc_counter("requests_total", 3)
    writer.inc_counter("requests_total", 2)
    for seconds in (0.001, 0.01, 0.1):
        writer.observe("http_healthz_seconds", seconds)
    writer.observe("infer_batch_size", 4)
    writer.flush()

    entries = {name: entry for name, entry in
               collect_shards(tmp_path).workers["0"].items()}
    assert entries["requests_total"].value == 5.0
    latency = entries["http_healthz_seconds"]
    assert latency.count == 3
    assert latency.sum == pytest.approx(0.111)
    assert sum(latency.bucket_counts) == 3  # every sample fell in a bucket
    assert entries["infer_batch_size"].count == 1
    writer.close()


def test_shard_reopen_accumulates(tmp_path):
    """Reopening an existing shard file reindexes it: counts continue."""
    path = shard_path(tmp_path, "0")
    first = ShardWriter(path)
    first.inc_counter("requests_total", 7)
    first.observe("http_healthz_seconds", 0.02)
    first.close()

    second = ShardWriter(path)
    second.inc_counter("requests_total", 5)
    second.observe("http_healthz_seconds", 0.03)
    second.flush()
    sample = collect_shards(tmp_path)
    assert sample.workers["0"]["requests_total"].value == 12.0
    assert sample.workers["0"]["http_healthz_seconds"].count == 2
    second.close()


def test_shard_name_parse_roundtrip(tmp_path):
    path = shard_path(tmp_path, "stream", pid=4242)
    parsed = parse_shard_name(Path(path).name)
    assert parsed == ("stream", 4242)
    assert parse_shard_name("not-a-shard.txt") is None


def test_concurrent_thread_writers_lose_nothing(tmp_path):
    """8 threads hammering one writer: counter totals stay exact."""
    writer = ShardWriter(shard_path(tmp_path, "0"))
    n_threads, per_thread = 8, 400

    def hammer(thread_id: int) -> None:
        for i in range(per_thread):
            writer.inc_counter("requests_total")
            writer.observe("http_healthz_seconds", 0.001 * (i % 7 + 1))

    threads = [threading.Thread(target=hammer, args=(t,))
               for t in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    writer.flush()

    entries = collect_shards(tmp_path).workers["0"]
    assert entries["requests_total"].value == n_threads * per_thread
    latency = entries["http_healthz_seconds"]
    assert latency.count == n_threads * per_thread
    assert sum(latency.bucket_counts) == n_threads * per_thread
    writer.close()


def _process_writer(directory: str, label: str, n: int) -> None:
    """Entry point of one sibling writer process."""
    writer = ShardWriter(shard_path(directory, label))
    for i in range(n):
        writer.inc_counter("requests_total")
        writer.observe("span_fold_in_seconds", 0.002)
    writer.flush()
    writer.close()


def test_two_process_writers_aggregate_exactly(tmp_path):
    """Two real processes write their own shards; the scrape-side view
    sums them exactly — the fleet's one-scrape-sees-everything property."""
    context = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods()
        else "spawn")
    counts = {"a": 300, "b": 500}
    processes = [context.Process(target=_process_writer,
                                 args=(str(tmp_path), label, n))
                 for label, n in counts.items()]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=60)
        assert process.exitcode == 0

    sample = collect_shards(tmp_path)
    assert set(sample.workers) == {"a", "b"}
    for label, n in counts.items():
        assert sample.workers[label]["requests_total"].value == n
        assert sample.workers[label]["span_fold_in_seconds"].count == n
    totals = sample.totals()
    assert totals["requests_total"].value == sum(counts.values())
    merged = totals["span_fold_in_seconds"]
    assert merged.count == sum(counts.values())
    assert merged.sum == pytest.approx(0.002 * sum(counts.values()))
    assert sum(merged.bucket_counts) == merged.count


def test_reap_preserves_totals(tmp_path):
    """Reaping a dead worker's shard removes its per-worker series but
    keeps every count in the fleet totals — counters never go backwards."""
    live = ShardWriter(shard_path(tmp_path, "0"))
    live.inc_counter("requests_total", 3)
    live.flush()
    dead = ShardWriter(shard_path(tmp_path, "1", pid=99999999))
    dead.inc_counter("requests_total", 4)
    dead.observe("span_fold_in_seconds", 0.01)
    dead.flush()
    dead.close()

    reaped = reap_stale_shards(tmp_path, live_pids=[os.getpid()])
    assert reaped, "the dead shard should have been reaped"
    assert not Path(shard_path(tmp_path, "1", pid=99999999)).exists()
    assert (Path(tmp_path) / REAPED_SHARD_NAME).exists()

    sample = collect_shards(tmp_path)
    assert "1" not in sample.workers  # stale per-worker series gone
    totals = sample.totals()
    assert totals["requests_total"].value == 7.0  # 3 live + 4 reaped
    assert totals["span_fold_in_seconds"].count == 1
    live.close()


def test_shard_gauge_overwrites_and_max_merges(tmp_path):
    """Gauges are set-not-add per worker; fleet totals take the max.

    Replication lag is the motivating family: the fleet's lag is the
    worst worker's lag, not the sum of everyone's."""
    from repro.obs.shards import KIND_GAUGE

    fast = ShardWriter(shard_path(tmp_path, "0"))
    fast.set_gauge("replica_lag_docs", 5.0)
    fast.set_gauge("replica_lag_docs", 2.0)  # overwrite, no accumulation
    fast.flush()
    slow = ShardWriter(shard_path(tmp_path, "1", pid=os.getpid()))
    slow.set_gauge("replica_lag_docs", 7.0)
    slow.flush()

    sample = collect_shards(tmp_path)
    assert sample.workers["0"]["replica_lag_docs"].value == 2.0
    assert sample.workers["1"]["replica_lag_docs"].value == 7.0
    total = sample.totals()["replica_lag_docs"]
    assert total.kind == KIND_GAUGE
    assert total.value == 7.0  # max across workers, not 9.0
    fast.close()
    slow.close()


def test_reap_drops_gauges_but_keeps_counters(tmp_path):
    """A dead worker's last gauge sample is stale information: the reaper
    folds its counters into the accumulator and drops its gauges."""
    dead = ShardWriter(shard_path(tmp_path, "9", pid=99999999))
    dead.inc_counter("shipping_shards_total", 4)
    dead.set_gauge("replica_lag_docs", 9.0)
    dead.flush()
    dead.close()

    assert reap_stale_shards(tmp_path, live_pids=[os.getpid()])
    totals = collect_shards(tmp_path).totals()
    assert totals["shipping_shards_total"].value == 4.0
    assert "replica_lag_docs" not in totals


def test_reaping_is_idempotent_and_additive(tmp_path):
    """Two successive reaps fold both dead shards into one accumulator."""
    for label, pid, count in (("1", 111111111, 2), ("2", 222222222, 5)):
        writer = ShardWriter(shard_path(tmp_path, label, pid=pid))
        writer.inc_counter("requests_total", count)
        writer.flush()
        writer.close()
        reap_stale_shards(tmp_path, live_pids=[])
    reap_stale_shards(tmp_path, live_pids=[])  # nothing left: a no-op
    totals = collect_shards(tmp_path).totals()
    assert totals["requests_total"].value == 7.0


# -- rendering + parsing ---------------------------------------------------------------
def test_render_fleet_per_worker_and_totals(tmp_path):
    for label, n in (("0", 3), ("1", 2)):
        writer = ShardWriter(shard_path(tmp_path, label, pid=1000 + int(label)))
        writer.inc_counter("http_requests_total", n)
        writer.observe("span_fold_in_seconds", 0.004)
        writer.flush()
        writer.close()
    text = render_fleet(collect_shards(tmp_path), build_info=build_info())
    families = parse_prometheus(text)

    assert sample_value(families, "repro_http_requests_total",
                        {"worker_id": "0"}) == 3.0
    assert sample_value(families, "repro_http_requests_total",
                        {"worker_id": "1"}) == 2.0
    assert sample_value(families, "repro_http_requests_total") == 5.0
    assert sample_value(families, "repro_span_fold_in_seconds_count") == 2.0
    buckets = families["repro_span_fold_in_seconds_bucket"]
    values = [value for labels, value in buckets if labels["le"] == "+Inf"]
    assert values == [2.0]  # cumulative +Inf bucket == fleet count
    build = next(labels for labels, _ in families["repro_build_info"])
    assert build["version"] == build_info()["version"]
    assert "# TYPE repro_http_requests_total counter" in text
    assert "# TYPE repro_span_fold_in_seconds histogram" in text


def test_render_fleet_emits_gauge_families(tmp_path):
    for label, lag in (("0", 3.0), ("1", 11.0)):
        writer = ShardWriter(shard_path(tmp_path, label, pid=2000 + int(label)))
        writer.set_gauge("replica_lag_docs", lag)
        writer.flush()
        writer.close()
    text = render_fleet(collect_shards(tmp_path), build_info=build_info())
    families = parse_prometheus(text)

    assert "# TYPE repro_replica_lag_docs gauge" in text
    assert sample_value(families, "repro_replica_lag_docs",
                        {"worker_id": "0"}) == 3.0
    assert sample_value(families, "repro_replica_lag_docs",
                        {"worker_id": "1"}) == 11.0
    assert sample_value(families, "repro_replica_lag_docs") == 11.0


def test_metrics_registry_gauge_roundtrip():
    from repro.utils.timing import MetricsRegistry

    registry = MetricsRegistry()
    assert registry.gauge("rollout_state") == 0.0  # never set
    registry.set_gauge("rollout_state", 2.0)
    registry.set_gauge("rollout_state", 3.0)  # last write wins
    assert registry.gauge("rollout_state") == 3.0
    text = registry.render_prometheus()
    assert "# TYPE repro_rollout_state gauge" in text
    assert "repro_rollout_state 3.0" in text


def test_parse_prometheus_round_trips_escaped_label_values(tmp_path):
    """Pin the escape/unescape pair: label values containing ``\\``,
    ``\"`` and newlines survive a render -> parse round trip exactly.

    A sequential ``str.replace`` unescape chain corrupts adjacent
    escapes (``\\\\n`` reads back as a newline instead of ``\\n``); this
    test holds the single-pass parser to the exact inverse of the
    renderer's escaping."""
    writer = ShardWriter(shard_path(tmp_path, "0", pid=3000))
    writer.inc_counter("http_requests_total", 1)
    writer.flush()
    writer.close()
    tricky = {
        "version": 'quote " backslash \\ newline \n done',
        "adjacent": "\\n",          # literal backslash-n, NOT a newline
        "trailing": "ends with \\",
    }
    text = render_fleet(collect_shards(tmp_path), build_info=tricky)
    families = parse_prometheus(text)
    parsed = next(labels for labels, _ in families["repro_build_info"])
    assert parsed == tricky


def test_parse_prometheus_handles_foreign_exposition():
    text = ('# HELP up Scrape health\n'
            '# TYPE up gauge\n'
            'up{job="api",instance="a:1"} 1\n'
            'not a sample line\n'
            'plain_total 41\n')
    families = parse_prometheus(text)
    assert sample_value(families, "up",
                        {"job": "api", "instance": "a:1"}) == 1.0
    assert sample_value(families, "plain_total") == 41.0
    assert sample_value(families, "absent") is None


# -- tracing + logging -----------------------------------------------------------------
def test_request_id_sanitize_and_mint():
    assert sanitize_request_id("abc-123.X_z") == "abc-123.X_z"
    assert sanitize_request_id("bad id\n") is None
    assert sanitize_request_id("x" * 200) is None
    assert sanitize_request_id(None) is None
    minted = new_request_id()
    assert sanitize_request_id(minted) == minted


def test_request_trace_accumulates_spans():
    trace = RequestTrace(request_id="req-1", route="/v1/infer")
    trace.record("fold_in", 0.25)
    trace.record("fold_in", 0.25)
    report = trace.as_dict()
    assert report["request_id"] == "req-1"
    assert report["spans_ms"]["fold_in"] == pytest.approx(500.0)
    assert report["total_ms"] >= 0.0
    assert span_metric("fold_in") == "span_fold_in_seconds"


def test_log_event_emits_one_json_line():
    stream = io.StringIO()
    line = log_event("slow_request", file=stream, request_id="r-1",
                     total_ms=12.5)
    parsed = json.loads(stream.getvalue())
    assert parsed == json.loads(line)
    assert parsed["event"] == "slow_request"
    assert parsed["request_id"] == "r-1"
    assert isinstance(parsed["ts"], float)


# -- live scrapes ----------------------------------------------------------------------
_SUFFIX = re.compile(r"_(bucket|sum|count)$")


def _catalog_base(family: str) -> str:
    """Map a rendered family name back to its METRIC_CATALOG key."""
    name = family[len("repro_"):]
    if name in METRIC_CATALOG:
        return name
    return _SUFFIX.sub("", name)


def test_single_server_scrape_is_catalog_clean(bundle_path):
    """A solo server's scrape: worker_id=\"0\" labels everywhere, build
    info present, and no family outside METRIC_CATALOG."""
    registry = ModelRegistry()
    registry.register("m", bundle_path)
    server = ReproServer(registry, ServeConfig(port=0, batch_delay=0.0))
    server.start_background()
    try:
        client = ServeClient(server.url)
        client.infer(["frequent pattern mining over data streams"], seed=3)
        families = parse_prometheus(client.metrics_text())
    finally:
        server.stop()

    assert sample_value(families, "repro_http_requests_total",
                        {"worker_id": "0"}) >= 1.0
    assert sample_value(families, "repro_http_requests_total") >= 1.0
    build = next(labels for labels, _ in families["repro_build_info"])
    assert build["version"] == build_info()["version"]
    for family in families:
        assert family.startswith("repro_")
        assert _catalog_base(family) in METRIC_CATALOG, \
            f"{family} not in METRIC_CATALOG"


def test_fleet_scrape_aggregates_and_traces(bundle_path):
    """The PR's acceptance bar, asserted: a 2-worker fleet under load
    answers one scrape whose fleet-total requests equal the sum of the
    per-worker series, and every infer reply carries a request id whose
    span series appear in that same scrape."""
    config = ServeConfig(port=0, workers=2, batch_delay=0.0)
    with ServeFleet(config, {"m": bundle_path}) as fleet:
        fleet.wait_until_ready(timeout=60)
        client = ServeClient(fleet.url)
        request_ids = []
        for i in range(8):
            reply = client.infer(["mining frequent phrase patterns"],
                                 seed=i, iterations=3)
            request_ids.append(reply.get("request_id"))
        # A custom X-Request-Id is honoured and echoed on the reply.
        request = urllib.request.Request(
            fleet.url + "/v1/infer",
            data=json.dumps({"documents": ["topic models"],
                             "seed": 1}).encode(),
            headers={"Content-Type": "application/json",
                     "X-Request-Id": "obs-test-42"})
        with urllib.request.urlopen(request, timeout=30) as reply:
            echoed = reply.headers.get("X-Request-Id")
            body = json.loads(reply.read())
        families = parse_prometheus(client.metrics_text())

    assert all(request_ids), "every /v1/infer reply must carry request_id"
    assert echoed == "obs-test-42"
    assert body["request_id"] == "obs-test-42"

    per_worker = [(labels["worker_id"], value) for labels, value in
                  families["repro_http_requests_total"]
                  if "worker_id" in labels]
    assert {wid for wid, _ in per_worker} == {"0", "1"}, \
        "scrape must carry series for both workers"
    fleet_total = sample_value(families, "repro_http_requests_total")
    assert fleet_total == pytest.approx(sum(v for _, v in per_worker))
    # The traced requests' span timings landed in the same scrape.
    for span in ("segmentation", "fold_in", "queue_wait"):
        count = sample_value(families,
                             f"repro_{span_metric(span)}_count")
        assert count and count >= 1.0, f"span {span} missing from scrape"
    assert sample_value(families, "repro_infer_requests_total") >= 9.0


def test_status_cli_renders_fleet_report(bundle_path, capsys):
    """``repro status`` digests a live scrape into the health table."""
    from repro.cli import main

    registry = ModelRegistry()
    registry.register("m", bundle_path)
    server = ReproServer(registry, ServeConfig(port=0, batch_delay=0.0))
    server.start_background()
    try:
        client = ServeClient(server.url)
        client.infer(["data mining"], seed=7, iterations=3)
        assert main(["status", "--url", server.url, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert main(["status", "--url", server.url]) == 0
        table = capsys.readouterr().out
    finally:
        server.stop()

    assert report["workers"][0]["worker_id"] == "0"
    assert report["fleet"]["requests"] >= 1.0
    assert {row["span"] for row in report["spans"]} >= {"fold_in"}
    assert report["models"][0]["name"] == "m"
    assert report["build"]["version"] == build_info()["version"]
    assert "WORKER" in table and "fleet" in table and "SPAN" in table


def test_status_cli_unreachable_server_fails_cleanly(capsys):
    from repro.cli import main

    assert main(["status", "--url", "http://127.0.0.1:9",
                 "--timeout", "0.5"]) == 2
    assert "error:" in capsys.readouterr().err


# -- docs pinning ----------------------------------------------------------------------
def test_every_catalog_metric_documented():
    """docs/observability.md lists every exported metric family (and the
    catalog lists nothing undocumented) — the table cannot drift."""
    doc = (Path(__file__).resolve().parents[1] /
           "docs" / "observability.md").read_text(encoding="utf-8")
    documented = set(re.findall(r"`repro_([a-z0-9_]+)`", doc))
    catalog = set(METRIC_CATALOG)
    assert catalog - documented == set(), "catalog metrics missing from docs"
    for span in SPAN_NAMES:
        assert f"`{span}`" in doc, f"span {span} missing from glossary"
