"""Unit tests for the hash-based phrase counter (Algorithm 1 support)."""

import pytest

from repro.utils.counter import HashCounter


def test_default_count_is_zero():
    counter = HashCounter()
    assert counter[(1, 2)] == 0
    assert counter.get((1, 2)) == 0
    assert counter.get((1, 2), default=7) == 7
    assert (1, 2) not in counter
    assert len(counter) == 0


def test_increment_and_mapping_protocol():
    counter = HashCounter()
    assert counter.increment((1,)) == 1
    assert counter.increment((1,), by=4) == 5
    counter[(2, 3)] = 2
    assert counter[(1,)] == 5
    assert counter[(2, 3)] == 2
    assert (1,) in counter
    assert set(counter) == {(1,), (2, 3)}
    assert counter.total() == 7


def test_lists_are_normalised_to_tuples():
    counter = HashCounter()
    counter.increment([1, 2])
    assert counter[(1, 2)] == 1
    assert [1, 2] in counter


def test_negative_count_rejected():
    counter = HashCounter()
    with pytest.raises(ValueError):
        counter[(1,)] = -1


def test_update_from_counts_each_occurrence():
    counter = HashCounter()
    counter.update_from([(1,), (1,), (2, 3)])
    assert counter[(1,)] == 2
    assert counter[(2, 3)] == 1


def test_prune_below_removes_and_reports():
    counter = HashCounter({(1,): 5, (2,): 1, (3, 4): 2})
    removed = counter.prune_below(3)
    assert removed == 2
    assert counter.as_dict() == {(1,): 5}
    assert counter.prune_below(0) == 0


def test_filtered_returns_new_counter():
    counter = HashCounter({(1,): 5, (2,): 1})
    kept = counter.filtered(2)
    assert kept.as_dict() == {(1,): 5}
    # original untouched
    assert counter[(2,)] == 1


def test_length_queries():
    counter = HashCounter({(1,): 1, (2, 3): 2, (4, 5, 6): 3})
    assert counter.phrases_of_length(2) == {(2, 3): 2}
    assert counter.max_phrase_length() == 3
    assert HashCounter().max_phrase_length() == 0


def test_merge_add_sums_counts():
    counter = HashCounter({(1,): 2, (1, 2): 1})
    counter.merge_add(HashCounter({(1,): 3, (2,): 4}))
    assert counter.as_dict() == {(1,): 5, (1, 2): 1, (2,): 4}
    counter.merge_add({(1, 2): 2})  # plain mappings merge too
    assert counter[(1, 2)] == 3
    with pytest.raises(ValueError):
        counter.merge_add({(9,): -1})


def test_merge_add_is_equivalent_to_joint_counting():
    """Counting two streams separately and merging == counting them
    together — the additivity incremental mining relies on."""
    left, right, joint = HashCounter(), HashCounter(), HashCounter()
    phrases_a = [(1,), (1, 2), (1,), (3,)]
    phrases_b = [(1, 2), (3,), (4, 5, 6)]
    left.update_from(phrases_a)
    right.update_from(phrases_b)
    joint.update_from(phrases_a + phrases_b)
    left.merge_add(right)
    assert left.as_dict() == joint.as_dict()
