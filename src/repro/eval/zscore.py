"""Z-score standardisation used by the expert-rating experiments.

Figures 4 and 5 of the paper report coherence and phrase-quality ratings
"standardized to a z-score" per expert and then averaged over five experts.
The same normalisation is applied here to the simulated raters' scores so the
reproduced figures are on the same scale as the paper's.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

import numpy as np


def standardize(values: Sequence[float]) -> List[float]:
    """Return the z-scores of ``values`` (zero vector when variance is zero)."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        return []
    std = array.std()
    if std == 0:
        return [0.0] * array.size
    return list((array - array.mean()) / std)


def standardize_per_rater(ratings: Mapping[str, Sequence[float]]) -> Dict[str, List[float]]:
    """Standardise each rater's scores independently.

    ``ratings`` maps rater name → scores (one per rated item, in a fixed item
    order shared by all raters).
    """
    return {rater: standardize(scores) for rater, scores in ratings.items()}


def average_standardized_scores(ratings: Mapping[str, Sequence[float]]) -> List[float]:
    """Z-score each rater then average per item (the paper's aggregation).

    Returns one averaged z-score per item, in the shared item order.
    """
    standardized = standardize_per_rater(ratings)
    if not standardized:
        return []
    lengths = {len(scores) for scores in standardized.values()}
    if len(lengths) != 1:
        raise ValueError("all raters must score the same number of items")
    matrix = np.asarray([standardized[r] for r in sorted(standardized)], dtype=float)
    return list(matrix.mean(axis=0))
