"""Phrase-quality scoring (Figure 5).

The paper's experts rated whether extracted phrases are "meaningful and not
just an agglomeration of words assigned to the same topic".  The automatic
proxy scores a phrase by how much its constituent words actually co-occur as
a contiguous unit in the reference corpus, compared to what word-level
independence predicts:

* single words receive a neutral score (they are valid but carry no phrase
  information),
* multi-word phrases are scored by the average NPMI of *adjacent* word pairs
  measured on contiguous occurrences in the raw corpus, with a length
  penalty for phrases longer than a readability cap — this punishes both
  random word agglomerations (KERT's failure mode in the paper) and the
  overly long phrases produced by unconstrained pattern mining.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, List, Sequence

from repro.eval.output import MethodOutput


class ContiguityModel:
    """Bigram contiguity statistics from raw (whitespace-tokenised) texts."""

    def __init__(self, texts: Iterable[str]) -> None:
        self._unigrams: Counter = Counter()
        self._bigrams: Counter = Counter()
        self._total = 0
        for text in texts:
            words = [w for w in _normalise(text).split() if w]
            self._total += len(words)
            self._unigrams.update(words)
            self._bigrams.update(zip(words, words[1:]))
        if self._total == 0:
            raise ValueError("contiguity model needs non-empty texts")

    def bigram_npmi(self, first: str, second: str) -> float:
        """NPMI of the contiguous bigram ``first second`` over the corpus."""
        n = float(self._total)
        p_first = max(self._unigrams.get(first, 0), 1e-12) / n
        p_second = max(self._unigrams.get(second, 0), 1e-12) / n
        joint = (self._bigrams.get((first, second), 0) + 0.5) / n
        pmi = math.log(joint / (p_first * p_second))
        denominator = -math.log(joint)
        if denominator <= 0:
            return 1.0
        return max(-1.0, min(1.0, pmi / denominator))


def phrase_quality_score(phrase: str, contiguity: ContiguityModel,
                         max_readable_length: int = 5) -> float:
    """Quality of a single phrase in roughly [-1, 1].

    Single words score 0; multi-word phrases score the mean adjacent-pair
    NPMI, scaled down linearly when they exceed ``max_readable_length``
    words.
    """
    words = [w for w in _normalise(phrase).split() if w]
    if len(words) <= 1:
        return 0.0
    pair_scores = [contiguity.bigram_npmi(a, b) for a, b in zip(words, words[1:])]
    score = sum(pair_scores) / len(pair_scores)
    if len(words) > max_readable_length:
        score *= max_readable_length / len(words)
    return score


def phrase_quality_scores(output: MethodOutput, contiguity: ContiguityModel,
                          n_phrases: int = 10) -> List[float]:
    """Per-topic mean phrase quality of a method's output."""
    per_topic: List[float] = []
    for topic in output.topics:
        phrases = topic[:n_phrases]
        if not phrases:
            per_topic.append(0.0)
            continue
        scores = [phrase_quality_score(p, contiguity) for p in phrases]
        per_topic.append(sum(scores) / len(scores))
    return per_topic


def mean_phrase_quality(output: MethodOutput, contiguity: ContiguityModel,
                        n_phrases: int = 10) -> float:
    """Mean phrase quality over all topics."""
    scores = phrase_quality_scores(output, contiguity, n_phrases)
    return sum(scores) / len(scores) if scores else 0.0


def _normalise(text: str) -> str:
    return "".join(ch if ch.isalnum() or ch.isspace() or ch == "'" else " "
                   for ch in text.lower())
