"""Evaluation substrate: the paper's interpretability and scalability studies.

The paper evaluates with two user studies (phrase intrusion, Figure 3;
domain-expert coherence and phrase-quality ratings, Figures 4-5), held-out
perplexity (Figures 6-7) and runtime measurements (Figure 8, Table 3).  The
human annotators are simulated with distributional proxies (see DESIGN.md §3):

* :mod:`repro.eval.cooccurrence` — document co-occurrence statistics (the
  reference model the simulated annotators consult).
* :mod:`repro.eval.intrusion` — the phrase-intrusion task of Chang et al.
  with simulated annotators.
* :mod:`repro.eval.coherence` — NPMI-style topical coherence.
* :mod:`repro.eval.phrase_quality` — phrase-quality scoring.
* :mod:`repro.eval.zscore` — z-score standardisation used in Figures 4-5.
* :mod:`repro.eval.output` — the method-agnostic ``MethodOutput`` container
  every topical-phrase method produces for evaluation.
* :mod:`repro.eval.runtime` — runtime measurement helpers for Table 3 and
  Figure 8.
"""

from repro.eval.cooccurrence import CooccurrenceModel
from repro.eval.coherence import topic_coherence, coherence_scores
from repro.eval.intrusion import (
    IntrusionQuestion,
    PhraseIntrusionTask,
    SimulatedAnnotator,
)
from repro.eval.output import MethodOutput
from repro.eval.phrase_quality import phrase_quality_score, phrase_quality_scores
from repro.eval.runtime import MethodTimer, RuntimeRecord
from repro.eval.zscore import standardize, standardize_per_rater

__all__ = [
    "CooccurrenceModel",
    "topic_coherence",
    "coherence_scores",
    "IntrusionQuestion",
    "PhraseIntrusionTask",
    "SimulatedAnnotator",
    "MethodOutput",
    "phrase_quality_score",
    "phrase_quality_scores",
    "MethodTimer",
    "RuntimeRecord",
    "standardize",
    "standardize_per_rater",
]
