"""Topical coherence scoring (Figure 4).

The paper's domain experts rated "topical coherence", defined as the
homogeneity of a topical phrase list's thematic structure.  The automatic
proxy used here is the standard NPMI topic-coherence measure: the average
normalised PMI between all pairs of items in the topic's top phrase list,
computed against document co-occurrence in a reference corpus.  Highly
homogeneous lists (all phrases from one theme) score high; lists that mix
themes score low — the same property the human raters were asked to judge.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.eval.cooccurrence import CooccurrenceModel
from repro.eval.output import MethodOutput


def topic_coherence(phrases: Sequence[str], reference: CooccurrenceModel) -> float:
    """Average pairwise phrase relatedness (NPMI) of one topic's phrase list.

    Returns 0.0 for lists with fewer than two phrases.
    """
    phrases = [p for p in phrases if p]
    if len(phrases) < 2:
        return 0.0
    total = 0.0
    n_pairs = 0
    for i, first in enumerate(phrases):
        for second in phrases[i + 1:]:
            total += reference.phrase_relatedness(first, second)
            n_pairs += 1
    return total / n_pairs


def coherence_scores(output: MethodOutput, reference: CooccurrenceModel,
                     n_phrases: int = 10) -> List[float]:
    """Per-topic coherence of a method's output (top ``n_phrases`` each)."""
    return [topic_coherence(topic[:n_phrases], reference) for topic in output.topics]


def mean_coherence(output: MethodOutput, reference: CooccurrenceModel,
                   n_phrases: int = 10) -> float:
    """Mean coherence over all topics (0.0 for an empty output)."""
    scores = coherence_scores(output, reference, n_phrases)
    return sum(scores) / len(scores) if scores else 0.0
