"""Runtime measurement helpers for the scalability experiments.

Table 3 reports end-to-end runtimes of every method on datasets of different
sizes; Figure 8 decomposes ToPMine's runtime into its phrase-mining and
topic-modeling halves across corpus sizes.  :class:`MethodTimer` wraps the
"run a method, record its wall-clock time, keep its output" pattern that the
benchmark harness repeats for every (method, dataset) cell.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.eval.output import MethodOutput


@dataclass
class RuntimeRecord:
    """One timed run of one method on one dataset."""

    method: str
    dataset: str
    seconds: float
    output: Optional[MethodOutput] = None
    extra: Dict[str, float] = field(default_factory=dict)


class MethodTimer:
    """Collects :class:`RuntimeRecord` entries for a method × dataset grid."""

    def __init__(self) -> None:
        self.records: List[RuntimeRecord] = []

    def run(self, method: str, dataset: str,
            func: Callable[[], MethodOutput],
            extra: Optional[Dict[str, float]] = None) -> RuntimeRecord:
        """Time ``func`` (which returns the method output) and record it."""
        start = time.perf_counter()
        output = func()
        elapsed = time.perf_counter() - start
        record = RuntimeRecord(method=method, dataset=dataset, seconds=elapsed,
                               output=output, extra=dict(extra or {}))
        self.records.append(record)
        return record

    def seconds_table(self) -> Dict[str, Dict[str, float]]:
        """Return ``{method: {dataset: seconds}}`` for table rendering."""
        table: Dict[str, Dict[str, float]] = {}
        for record in self.records:
            table.setdefault(record.method, {})[record.dataset] = record.seconds
        return table
