"""Runtime measurement helpers for the scalability experiments.

Table 3 reports end-to-end runtimes of every method on datasets of different
sizes; Figure 8 decomposes ToPMine's runtime into its phrase-mining and
topic-modeling halves across corpus sizes.  :class:`MethodTimer` wraps the
"run a method, record its wall-clock time, keep its output" pattern that the
benchmark harness repeats for every (method, dataset) cell.

Figure 8 mapping
----------------
The paper's decomposition corresponds to the stage names recorded by
:meth:`repro.core.topmine.ToPMine.fit` in ``ToPMineResult.timings``:

* ``"phrase_mining"`` — Algorithm 1 (frequent phrase mining) **plus**
  Algorithm 2 (significance-guided segmentation), the left half of each
  Figure 8 bar;
* ``"topic_modeling"`` — the PhraseLDA Gibbs sampler (Section 5), the right
  half.

``python -m repro.bench`` (stage ``topmine``) records exactly this split
across corpus sizes into ``BENCH_topmine.json``;
:func:`figure8_decomposition` reshapes a set of timed runs the same way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.eval.output import MethodOutput


@dataclass
class RuntimeRecord:
    """One timed run of one method on one dataset."""

    method: str
    dataset: str
    seconds: float
    output: Optional[MethodOutput] = None
    extra: Dict[str, float] = field(default_factory=dict)


class MethodTimer:
    """Collects :class:`RuntimeRecord` entries for a method × dataset grid."""

    def __init__(self) -> None:
        self.records: List[RuntimeRecord] = []

    def run(self, method: str, dataset: str,
            func: Callable[[], MethodOutput],
            extra: Optional[Dict[str, float]] = None) -> RuntimeRecord:
        """Time ``func`` (which returns the method output) and record it."""
        start = time.perf_counter()
        output = func()
        elapsed = time.perf_counter() - start
        record = RuntimeRecord(method=method, dataset=dataset, seconds=elapsed,
                               output=output, extra=dict(extra or {}))
        self.records.append(record)
        return record

    def seconds_table(self) -> Dict[str, Dict[str, float]]:
        """Return ``{method: {dataset: seconds}}`` for table rendering."""
        table: Dict[str, Dict[str, float]] = {}
        for record in self.records:
            table.setdefault(record.method, {})[record.dataset] = record.seconds
        return table


def figure8_decomposition(timings_by_dataset: Dict[str, Dict[str, float]],
                          ) -> Dict[str, Dict[str, float]]:
    """Reshape per-run stage timings into the Figure 8 decomposition.

    Parameters
    ----------
    timings_by_dataset:
        ``{dataset: ToPMineResult.timings}`` — the stage → seconds mapping
        produced by :meth:`repro.core.topmine.ToPMine.fit`.

    Returns
    -------
    ``{dataset: {"phrase_mining": s, "topic_modeling": s}}`` with missing
    stages reported as ``0.0`` — the two bar segments of Figure 8.
    """
    return {
        dataset: {
            "phrase_mining": float(timings.get("phrase_mining", 0.0)),
            "topic_modeling": float(timings.get("topic_modeling", 0.0)),
        }
        for dataset, timings in timings_by_dataset.items()
    }
