"""The phrase intrusion task (Figure 3) with simulated annotators.

Following Chang et al. (2009), each question shows four phrases: three drawn
from the top-10 phrases of one topic and one *intruder* drawn from the top
phrases of a different topic.  A human annotator is asked to spot the
intruder; the paper reports, per method, the average number of the 20
questions answered correctly (averaged over three annotators).

The human annotators are simulated: an annotator measures each candidate's
topical relatedness to the other three candidates under a reference
co-occurrence model of the corpus and picks the least related one.  A
configurable noise rate makes the annotator occasionally answer at random,
modelling human error and the "unable to choose" option.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.eval.cooccurrence import CooccurrenceModel
from repro.eval.output import MethodOutput
from repro.utils.rng import SeedLike, new_rng


@dataclass
class IntrusionQuestion:
    """One intrusion question: four candidates, one of them the intruder.

    Attributes
    ----------
    candidates:
        The four phrase strings, in presentation order.
    intruder_index:
        Index of the intruder within ``candidates``.
    topic:
        The topic the three genuine phrases came from.
    """

    candidates: List[str]
    intruder_index: int
    topic: int


@dataclass
class SimulatedAnnotator:
    """An annotator that answers by distributional relatedness.

    Parameters
    ----------
    reference:
        The co-occurrence model the annotator consults.
    noise_rate:
        Probability of answering uniformly at random instead.
    seed:
        Seed of the annotator's private randomness.
    """

    reference: CooccurrenceModel
    noise_rate: float = 0.1
    seed: SeedLike = None

    def __post_init__(self) -> None:
        self._rng = new_rng(self.seed)

    def answer(self, question: IntrusionQuestion) -> int:
        """Return the index of the candidate the annotator believes intrudes."""
        if self._rng.random() < self.noise_rate:
            return int(self._rng.integers(0, len(question.candidates)))
        scores = []
        for i, candidate in enumerate(question.candidates):
            others = [c for j, c in enumerate(question.candidates) if j != i]
            scores.append(self.reference.relatedness_to_set(candidate, others))
        return int(np.argmin(scores))


class PhraseIntrusionTask:
    """Builds intrusion questions from a method's output and scores annotators.

    Parameters
    ----------
    reference:
        Co-occurrence model of the evaluation corpus.
    n_questions:
        Number of questions sampled per method (paper: 20).
    n_annotators:
        Number of simulated annotators (paper: 3).
    n_top_phrases:
        Pool size per topic from which genuine phrases are drawn (paper: 10).
    annotator_noise:
        Noise rate of each simulated annotator.
    seed:
        Seed for question sampling and annotator seeds.
    """

    def __init__(self, reference: CooccurrenceModel, n_questions: int = 20,
                 n_annotators: int = 3, n_top_phrases: int = 10,
                 annotator_noise: float = 0.1, seed: SeedLike = None) -> None:
        self.reference = reference
        self.n_questions = n_questions
        self.n_annotators = n_annotators
        self.n_top_phrases = n_top_phrases
        self.annotator_noise = annotator_noise
        self._rng = new_rng(seed)

    # -- question construction -----------------------------------------------------------
    def build_questions(self, output: MethodOutput) -> List[IntrusionQuestion]:
        """Sample intrusion questions from a method's per-topic phrase lists."""
        eligible_topics = [k for k, phrases in enumerate(output.topics)
                           if len(phrases) >= 3]
        if len(eligible_topics) < 2:
            return []
        questions: List[IntrusionQuestion] = []
        for _ in range(self.n_questions):
            topic = int(self._rng.choice(eligible_topics))
            other_topics = [k for k in eligible_topics if k != topic
                            and len(output.topics[k]) >= 1]
            if not other_topics:
                continue
            intruder_topic = int(self._rng.choice(other_topics))

            topic_pool = output.topics[topic][:self.n_top_phrases]
            genuine = [topic_pool[i] for i in
                       self._rng.choice(len(topic_pool), size=3, replace=False)]
            intruder_pool = output.topics[intruder_topic][:self.n_top_phrases]
            intruder = str(intruder_pool[int(self._rng.integers(0, len(intruder_pool)))])

            candidates = list(genuine)
            insert_at = int(self._rng.integers(0, 4))
            candidates.insert(insert_at, intruder)
            questions.append(IntrusionQuestion(candidates=candidates,
                                               intruder_index=insert_at,
                                               topic=topic))
        return questions

    # -- scoring -------------------------------------------------------------------------
    def evaluate(self, output: MethodOutput) -> Dict[str, float]:
        """Run the task for one method.

        Returns a dictionary with the average number of correct answers per
        annotator (``"avg_correct"``, the quantity plotted in Figure 3), the
        per-annotator counts, and the number of questions asked.
        """
        questions = self.build_questions(output)
        if not questions:
            return {"avg_correct": 0.0, "n_questions": 0, "per_annotator": []}
        per_annotator: List[int] = []
        for a in range(self.n_annotators):
            annotator = SimulatedAnnotator(self.reference,
                                           noise_rate=self.annotator_noise,
                                           seed=self._rng.integers(0, 2**31 - 1))
            correct = sum(1 for q in questions
                          if annotator.answer(q) == q.intruder_index)
            per_annotator.append(correct)
        return {
            "avg_correct": float(np.mean(per_annotator)),
            "n_questions": len(questions),
            "per_annotator": per_annotator,
        }
