"""Document co-occurrence statistics used by the simulated evaluations.

The simulated annotators (intrusion task) and the automatic coherence /
phrase-quality proxies all need the same reference information: how often
words appear in documents and how often pairs of words appear in the *same*
document.  :class:`CooccurrenceModel` precomputes document frequencies over a
corpus of word-string documents and exposes PMI / NPMI calculations.

Phrases are compared through their constituent words: the relatedness of two
phrases is the average NPMI over cross-phrase word pairs.  This is the
standard automatic stand-in for human topical-relatedness judgements
(Newman et al. 2010; Lau et al. 2014).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.text.corpus import Corpus


class CooccurrenceModel:
    """Document-frequency and co-document-frequency statistics.

    Parameters
    ----------
    documents:
        An iterable of documents, each an iterable of word strings.  Use
        :meth:`from_corpus` to build one from a token-id corpus.
    """

    def __init__(self, documents: Iterable[Iterable[str]]) -> None:
        self._doc_freq: Counter = Counter()
        self._pair_freq: Counter = Counter()
        self._n_documents = 0
        for document in documents:
            words = frozenset(document)
            if not words:
                continue
            self._n_documents += 1
            for word in words:
                self._doc_freq[word] += 1
            word_list = sorted(words)
            for i, first in enumerate(word_list):
                for second in word_list[i + 1:]:
                    self._pair_freq[(first, second)] += 1
        if self._n_documents == 0:
            raise ValueError("co-occurrence model needs at least one non-empty document")

    # -- constructors ------------------------------------------------------------------
    @classmethod
    def from_corpus(cls, corpus: Corpus, unstem: bool = True) -> "CooccurrenceModel":
        """Build the model from a preprocessed :class:`Corpus`.

        Words are decoded through the corpus vocabulary (unstemmed by default
        so that evaluation phrases written in surface form match).
        """
        def decode(doc) -> List[str]:
            if unstem:
                return [corpus.vocabulary.unstem_id(w) for w in doc.tokens]
            return [corpus.vocabulary.word_of(w) for w in doc.tokens]

        return cls(decode(doc) for doc in corpus)

    @classmethod
    def from_texts(cls, texts: Sequence[str]) -> "CooccurrenceModel":
        """Build the model from raw whitespace-tokenised lowercase texts."""
        return cls((text.lower().split() for text in texts))

    # -- statistics ----------------------------------------------------------------------
    @property
    def n_documents(self) -> int:
        """Number of documents the statistics were collected from."""
        return self._n_documents

    def document_frequency(self, word: str) -> int:
        """Number of documents containing ``word``."""
        return self._doc_freq.get(word, 0)

    def pair_frequency(self, first: str, second: str) -> int:
        """Number of documents containing both words."""
        if first == second:
            return self.document_frequency(first)
        key = (first, second) if first < second else (second, first)
        return self._pair_freq.get(key, 0)

    def npmi(self, first: str, second: str, smoothing: float = 1.0) -> float:
        """Normalised pointwise mutual information of two words, in [-1, 1].

        ``NPMI(a, b) = PMI(a, b) / (−log p(a, b))`` with add-``smoothing``
        joint counts so unseen pairs get a finite negative value.
        """
        n = float(self._n_documents)
        p_first = max(self.document_frequency(first), 1e-12) / n
        p_second = max(self.document_frequency(second), 1e-12) / n
        joint = (self.pair_frequency(first, second) + smoothing) / (n + smoothing)
        pmi = math.log(joint / (p_first * p_second))
        denominator = -math.log(joint)
        if denominator <= 0:
            return 1.0
        return max(-1.0, min(1.0, pmi / denominator))

    # -- phrase-level relatedness -----------------------------------------------------------
    def phrase_words(self, phrase: str) -> List[str]:
        """Split a phrase string into lowercase words."""
        return [w for w in phrase.lower().split() if w]

    def phrase_relatedness(self, phrase_a: str, phrase_b: str) -> float:
        """Average NPMI over cross-phrase word pairs (topical relatedness)."""
        words_a = self.phrase_words(phrase_a)
        words_b = self.phrase_words(phrase_b)
        if not words_a or not words_b:
            return 0.0
        scores = [self.npmi(a, b) for a in words_a for b in words_b if a != b]
        if not scores:
            # identical single words: maximally related
            return 1.0
        return sum(scores) / len(scores)

    def relatedness_to_set(self, phrase: str, others: Sequence[str]) -> float:
        """Average relatedness of ``phrase`` to each phrase in ``others``."""
        if not others:
            return 0.0
        return sum(self.phrase_relatedness(phrase, other) for other in others) / len(others)
