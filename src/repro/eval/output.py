"""Method-agnostic container for topical phrase output.

Every method compared in the paper (ToPMine, TNG, PD-LDA, KERT, Turbo
Topics) ultimately produces, per topic, a ranked list of representative
phrases (and usually also unigrams).  The evaluation tasks only need that
ranked-list view, so the baselines and ToPMine all export a
:class:`MethodOutput` for the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class MethodOutput:
    """Per-topic ranked phrase lists produced by a topical-phrase method.

    Attributes
    ----------
    method:
        Method name (e.g. ``"ToPMine"``, ``"TNG"``).
    topics:
        ``topics[k]`` is the ranked list of phrase strings for topic ``k``
        (most representative first).  Single-word phrases are allowed.
    unigrams:
        Optional ranked unigram lists per topic (for visualisation parity
        with the paper's tables).
    metadata:
        Free-form extras (runtime, hyper-parameters, ...).
    """

    method: str
    topics: List[List[str]]
    unigrams: Optional[List[List[str]]] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def n_topics(self) -> int:
        """Number of topics in the output."""
        return len(self.topics)

    def top_phrases(self, topic: int, n: int = 10) -> List[str]:
        """Return up to ``n`` top phrases of ``topic``."""
        return self.topics[topic][:n]

    def all_phrases(self) -> List[str]:
        """Return every phrase across all topics (with duplicates removed,
        order preserved by first occurrence)."""
        seen: Dict[str, None] = {}
        for phrases in self.topics:
            for phrase in phrases:
                seen.setdefault(phrase, None)
        return list(seen)

    def multiword_fraction(self, n_per_topic: int = 10) -> float:
        """Fraction of the top-``n`` phrases that contain two or more words."""
        total = 0
        multi = 0
        for phrases in self.topics:
            for phrase in phrases[:n_per_topic]:
                total += 1
                if len(phrase.split()) >= 2:
                    multi += 1
        return multi / total if total else 0.0
