"""Reproduction of "Scalable Topical Phrase Mining from Text Corpora" (ToPMine).

El-Kishky, Song, Wang, Voss, Han — PVLDB 8(3), 2014.

The package is organised as:

* :mod:`repro.core` — the paper's contribution: frequent phrase mining,
  significance-guided phrase construction, PhraseLDA, and the ToPMine
  pipeline.
* :mod:`repro.text` — tokenisation, Porter stemming, stop-word handling, and
  corpus containers.
* :mod:`repro.topicmodel` — collapsed-Gibbs LDA, hyper-parameter
  optimisation, and perplexity evaluation.
* :mod:`repro.baselines` — the comparison methods from the paper's
  evaluation: TNG, PD-LDA, KERT, and Turbo Topics.
* :mod:`repro.datasets` — synthetic generators standing in for the paper's
  six corpora (DBLP titles/abstracts, 20Conf, ACL, AP News, Yelp).
* :mod:`repro.eval` — phrase intrusion, coherence, phrase quality, and
  runtime measurement used by the benchmark harness.
* :mod:`repro.serve` — the batched-inference model server: registry,
  micro-batching scheduler, JSON-over-HTTP endpoints, and client
  (``python -m repro serve``).
* :mod:`repro.stream` — incremental corpus ingestion: an append-only
  document log, mergeable per-shard mining statistics, deterministic
  online refreshes, and versioned bundle publishing that live servers
  hot-swap with zero downtime (``python -m repro ingest`` /
  ``repro refresh``).

Quickstart::

    from repro import ToPMine, ToPMineConfig

    topmine = ToPMine(ToPMineConfig(n_topics=5, min_support=5, seed=42))
    result = topmine.fit(list_of_document_strings)
    print(result.render_topics())
"""

from repro.core.topmine import ToPMine, ToPMineConfig, ToPMineResult
from repro.core.phrase_lda import PhraseLDA, PhraseLDAConfig, ReferencePhraseLDA
from repro.core.frequent_phrases import FrequentPhraseMiner, PhraseMiningConfig
from repro.core.infer import InferenceConfig, InferenceResult, TopicInferencer
from repro.core.phrase_construction import PhraseConstructionConfig, PhraseConstructor
from repro.core.segmentation import CorpusSegmenter, SegmentedCorpus
from repro.core.significance import SignificanceScorer
from repro.io.artifacts import (
    ModelBundle,
    SegmentationBundle,
    load_bundle,
    load_model,
    load_segmentation,
    save_bundle,
)
from repro.text.corpus import Corpus, Document
from repro.text.preprocess import PreprocessConfig, preprocess_corpus
from repro.topicmodel.lda import LDAConfig, LatentDirichletAllocation

__version__ = "1.2.0"

__all__ = [
    "ToPMine",
    "ToPMineConfig",
    "ToPMineResult",
    "PhraseLDA",
    "PhraseLDAConfig",
    "ReferencePhraseLDA",
    "FrequentPhraseMiner",
    "PhraseMiningConfig",
    "PhraseConstructionConfig",
    "PhraseConstructor",
    "CorpusSegmenter",
    "SegmentedCorpus",
    "SignificanceScorer",
    "TopicInferencer",
    "InferenceConfig",
    "InferenceResult",
    "ModelBundle",
    "SegmentationBundle",
    "save_bundle",
    "load_bundle",
    "load_model",
    "load_segmentation",
    "Corpus",
    "Document",
    "PreprocessConfig",
    "preprocess_corpus",
    "LDAConfig",
    "LatentDirichletAllocation",
    "__version__",
]
