"""Versioned model-artifact bundles (``.npz`` + embedded JSON manifest).

A bundle is a single compressed NumPy archive whose arrays carry the bulk
numeric state and whose ``manifest`` entry is a JSON document describing
format, version, kind, configurations, and array shapes.  Two kinds exist:

``"segmentation"``
    The output of the phrase-mining half of ToPMine (Algorithms 1 + 2):
    frozen vocabulary, significant-phrase table, segmenter parameters, and
    the training corpus' bag-of-phrases segmentation.  ``repro fit``
    consumes this to run PhraseLDA without re-mining.

``"model"``
    A fully fitted model: everything inference needs (vocabulary, phrase
    table, segmenter and preprocessing parameters) plus the PhraseLDA count
    matrices, final hyper-parameters, per-topic topical-frequency tables
    (Eq. 8), and engine metadata.  ``repro topics`` and ``repro infer``
    consume this.

Format guarantees
-----------------
* **Versioning** — every bundle records ``format`` (``"repro.topmine"``)
  and an integer ``version``.  Readers accept any version up to their own
  :data:`FORMAT_VERSION` and reject newer bundles with
  :class:`ArtifactVersionError`; within a version, writers may only add
  optional manifest fields (readers ignore unknown keys).  Array names,
  dtypes, and shape relations are frozen per version.
* **Validation** — structural invariants (manifest presence, kind, array
  set, offset monotonicity, shape cross-consistency) are checked on load;
  violations raise :class:`ArtifactError` with a message naming the defect.
* **Round-trips** — saving and loading a model bundle preserves the topic
  tables exactly: the decoded top topical phrases and unigram rankings of
  the reloaded bundle are identical to the in-memory training run's,
  regardless of which sampling engine produced the fit (asserted by
  ``tests/test_artifacts.py``).

Only the *most frequent* surface form of each stem is persisted (that is
all unstemming ever consults); minority surface spellings are not.

Zero-copy loading
-----------------
Bundles are written **uncompressed** (``np.savez``) so every array member
sits contiguously inside the ``.npz`` zip container.  :func:`load_bundle`
memory-maps the whole file read-only and builds each array directly over
the mapping (``np.frombuffer`` at the member's data offset) — no array
payload is ever copied into private process memory.  Because the mapping
is shared and read-only, N serving worker processes that load the same
bundle share **one** physical copy of its arrays through the OS page
cache; this is what lets the multi-process serve fleet
(:mod:`repro.serve.fleet`) scale out without multiplying model memory.
Compressed bundles written by older versions still load (the reader
falls back to materializing them) — they just aren't shareable.
"""

from __future__ import annotations

import contextlib
import io
import json
import mmap
import os
import tempfile
import zipfile
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.frequent_phrases import FrequentPhraseMiningResult
from repro.core.infer import InferenceConfig, TopicInferencer
from repro.core.phrase_construction import PhraseConstructionConfig
from repro.core.phrase_lda import PhraseLDAState
from repro.core.segmentation import CorpusSegmenter, SegmentedCorpus, SegmentedDocument
from repro.core.visualization import TopicVisualization, build_visualization
from repro.text.preprocess import PreprocessConfig
from repro.text.vocabulary import Vocabulary
from repro.utils.counter import HashCounter

Phrase = Tuple[int, ...]

FORMAT_NAME = "repro.topmine"
FORMAT_VERSION = 1
KINDS = ("segmentation", "model")

_COMMON_ARRAYS = (
    "vocab_words", "vocab_frequencies", "vocab_surface",
    "phrase_tokens", "phrase_offsets", "phrase_counts",
)
_SEGMENTATION_ARRAYS = _COMMON_ARRAYS + (
    "seg_tokens", "seg_phrase_offsets", "seg_doc_offsets",
)
_MODEL_ARRAYS = _COMMON_ARRAYS + (
    "topic_word_counts", "doc_topic_counts", "topic_counts", "alpha",
    "topical_tokens", "topical_offsets", "topical_counts",
)


class ArtifactError(Exception):
    """A bundle file is missing, corrupt, or violates the schema."""


class ArtifactVersionError(ArtifactError):
    """A bundle was written by an incompatible (newer) format version."""


# -- low-level container --------------------------------------------------------------
def _write_npz(path: Union[str, Path], manifest: Dict[str, Any],
               arrays: Dict[str, np.ndarray], compress: bool = False) -> Path:
    """Write manifest + arrays as one ``.npz`` file at ``path``.

    Uncompressed by default: only stored (``ZIP_STORED``) members can be
    memory-mapped by the zero-copy loader; ``compress=True`` trades that
    away for a smaller file.

    The write is **atomic**: the bundle is assembled in a temporary file
    next to ``path`` and moved into place with ``os.replace``.  Replacing
    gives the new bundle a fresh inode, so processes still holding the old
    file memory-mapped keep reading a consistent old version instead of
    crashing on truncated pages — the invariant the hot-swapping serve
    fleet relies on when a model is republished under traffic.
    """
    path = Path(path)
    payload = dict(arrays)
    payload["manifest"] = np.array(json.dumps(manifest, sort_keys=True))
    path.parent.mkdir(parents=True, exist_ok=True)
    writer = np.savez_compressed if compress else np.savez
    # A file handle keeps numpy from appending ".npz" to the requested path.
    descriptor, temporary = tempfile.mkstemp(dir=path.parent,
                                             prefix=path.name + ".tmp-")
    try:
        with os.fdopen(descriptor, "wb") as handle:
            writer(handle, **payload)
        os.replace(temporary, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(temporary)
        raise
    return path


#: Fixed part of a zip local file header; the variable filename/extra
#: lengths sit at offsets 26 and 28 (PKZIP appnote 4.3.7).
_ZIP_LOCAL_HEADER_SIZE = 30

_NPY_HEADER_READERS = {
    (1, 0): np.lib.format.read_array_header_1_0,
    (2, 0): np.lib.format.read_array_header_2_0,
}


def mmap_backing(array: np.ndarray) -> Optional[mmap.mmap]:
    """Return the ``mmap`` ultimately backing ``array``, or ``None``.

    Walks the ``base`` chain of views down to the owning buffer.  Serving
    tests use this to assert that registry-loaded bundle arrays really are
    page-cache-shared mappings rather than private writable copies.
    """
    base = array
    while base is not None:
        if isinstance(base, mmap.mmap):
            return base
        if isinstance(base, memoryview):
            base = base.obj
            continue
        base = getattr(base, "base", None)
    return None


def _map_member(mapped: mmap.mmap, info: zipfile.ZipInfo,
                path: Path) -> np.ndarray:
    """Build a read-only array over one stored ``.npy`` member in place."""
    header = info.header_offset
    name_length = int.from_bytes(
        mapped[header + 26:header + 28], "little")
    extra_length = int.from_bytes(
        mapped[header + 28:header + 30], "little")
    data_offset = header + _ZIP_LOCAL_HEADER_SIZE + name_length + extra_length
    prefix = io.BytesIO(mapped[data_offset:data_offset
                               + min(info.file_size, 4096)])
    try:
        version = np.lib.format.read_magic(prefix)
        reader = _NPY_HEADER_READERS.get(version)
        if reader is None:
            raise ValueError(f"unsupported npy format version {version}")
        shape, fortran_order, dtype = reader(prefix)
    except ValueError as exc:
        raise ArtifactError(
            f"{path}: member {info.filename} is not a valid npy array: "
            f"{exc}") from exc
    if dtype.hasobject:
        raise ArtifactError(
            f"{path}: member {info.filename} contains Python objects")
    count = 1
    for dimension in shape:
        count *= dimension
    array = np.frombuffer(mapped, dtype=dtype, count=count,
                          offset=data_offset + prefix.tell())
    return array.reshape(shape, order="F" if fortran_order else "C")


def _map_npz_arrays(path: Path) -> Optional[Dict[str, np.ndarray]]:
    """Memory-map every array member of an uncompressed bundle, zero-copy.

    Returns ``{member_stem: read-only array}`` — each array a view over
    one shared, read-only ``mmap`` of the whole file (kept alive through
    the arrays' ``base`` chain), so concurrent processes mapping the same
    bundle share a single physical copy via the OS page cache.  Returns
    ``None`` when any member is compressed (older ``savez_compressed``
    bundles), signalling the caller to fall back to a materializing load.
    """
    with open(path, "rb") as handle, zipfile.ZipFile(handle) as archive:
        members = archive.infolist()
        if any(info.compress_type != zipfile.ZIP_STORED for info in members):
            return None
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    return {info.filename.removesuffix(".npy"): _map_member(mapped, info, path)
            for info in members}


def _read_npz(path: Union[str, Path],
              mapped: bool = True) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    """Load and structurally validate a bundle; return (manifest, arrays).

    With ``mapped=True`` (the default) the arrays of an uncompressed
    bundle are zero-copy views over a shared read-only memory map;
    compressed bundles (and ``mapped=False``) materialize private copies.
    """
    path = Path(path)
    if not path.exists():
        raise ArtifactError(f"bundle not found: {path}")
    try:
        data = _map_npz_arrays(path) if mapped else None
        if data is None:
            with np.load(path, allow_pickle=False) as archive:
                data = {name: archive[name] for name in archive.files}
    except (zipfile.BadZipFile, ValueError, OSError, KeyError) as exc:
        raise ArtifactError(f"{path} is not a readable bundle: {exc}") from exc
    if "manifest" not in data:
        raise ArtifactError(f"{path} has no manifest entry — not a {FORMAT_NAME} bundle")
    try:
        manifest = json.loads(str(data.pop("manifest")[()]))
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{path}: corrupt manifest JSON: {exc}") from exc
    _validate_manifest(manifest, path)
    _validate_arrays(manifest, data, path)
    return manifest, data


def _validate_manifest(manifest: Any, path: Path) -> None:
    """Check format, version, and kind of a decoded manifest."""
    if not isinstance(manifest, dict):
        raise ArtifactError(f"{path}: manifest is not a JSON object")
    if manifest.get("format") != FORMAT_NAME:
        raise ArtifactError(
            f"{path}: format is {manifest.get('format')!r}, expected {FORMAT_NAME!r}")
    version = manifest.get("version")
    if not isinstance(version, int) or version < 1:
        raise ArtifactError(f"{path}: invalid format version {version!r}")
    if version > FORMAT_VERSION:
        raise ArtifactVersionError(
            f"{path}: bundle version {version} is newer than this reader "
            f"(supports up to {FORMAT_VERSION}); upgrade topmine-repro to load it")
    if manifest.get("kind") not in KINDS:
        raise ArtifactError(
            f"{path}: unknown bundle kind {manifest.get('kind')!r}; "
            f"expected one of {KINDS}")
    mining = manifest.get("mining")
    if not isinstance(mining, dict) or not all(
            isinstance(mining.get(key), int)
            for key in ("total_tokens", "min_support", "iterations")):
        raise ArtifactError(
            f"{path}: manifest is missing a valid 'mining' section "
            f"(total_tokens/min_support/iterations)")
    if manifest["kind"] == "model":
        model = manifest.get("model")
        if not isinstance(model, dict) or \
                not isinstance(model.get("beta"), (int, float)):
            raise ArtifactError(
                f"{path}: manifest is missing a valid 'model' section (beta)")


def _validate_arrays(manifest: Dict[str, Any], arrays: Dict[str, np.ndarray],
                     path: Path) -> None:
    """Check the array set and cross-array shape invariants."""
    required = (_SEGMENTATION_ARRAYS if manifest["kind"] == "segmentation"
                else _MODEL_ARRAYS)
    missing = [name for name in required if name not in arrays]
    if missing:
        raise ArtifactError(f"{path}: bundle is missing arrays {missing}")

    def check(condition: bool, message: str) -> None:
        if not condition:
            raise ArtifactError(f"{path}: {message}")

    n_words = len(arrays["vocab_words"])
    check(len(arrays["vocab_frequencies"]) == n_words
          and len(arrays["vocab_surface"]) == n_words,
          "vocabulary arrays disagree in length")

    def check_token_ids(name: str) -> None:
        tokens = arrays[name]
        check(np.issubdtype(tokens.dtype, np.integer),
              f"{name} must have an integer dtype")
        if tokens.size and (int(tokens.min()) < 0
                            or int(tokens.max()) >= n_words):
            raise ArtifactError(
                f"{path}: {name} contains ids outside the vocabulary "
                f"[0, {n_words})")

    check_token_ids("phrase_tokens")
    _check_offsets(arrays["phrase_offsets"], len(arrays["phrase_tokens"]),
                   "phrase_offsets", check)
    check(len(arrays["phrase_counts"]) == len(arrays["phrase_offsets"]) - 1,
          "phrase_counts length does not match phrase_offsets")

    if manifest["kind"] == "segmentation":
        check_token_ids("seg_tokens")
        _check_offsets(arrays["seg_phrase_offsets"], len(arrays["seg_tokens"]),
                       "seg_phrase_offsets", check)
        _check_offsets(arrays["seg_doc_offsets"],
                       len(arrays["seg_phrase_offsets"]) - 1,
                       "seg_doc_offsets", check)
    else:
        topic_word = arrays["topic_word_counts"]
        check(topic_word.ndim == 2, "topic_word_counts must be 2-D")
        n_topics = topic_word.shape[1]
        check(topic_word.shape[0] == n_words,
              "topic_word_counts rows do not match the vocabulary")
        check(arrays["topic_counts"].shape == (n_topics,),
              "topic_counts length does not match n_topics")
        check(arrays["alpha"].shape == (n_topics,),
              "alpha length does not match n_topics")
        check(arrays["doc_topic_counts"].ndim == 2
              and arrays["doc_topic_counts"].shape[1] == n_topics,
              "doc_topic_counts columns do not match n_topics")
        check_token_ids("topical_tokens")
        _check_offsets(arrays["topical_offsets"], len(arrays["topical_tokens"]),
                       "topical_offsets", check)
        check(arrays["topical_counts"].shape ==
              (len(arrays["topical_offsets"]) - 1, n_topics),
              "topical_counts shape does not match topical_offsets / n_topics")


def _check_offsets(offsets: np.ndarray, n_items: int, name: str, check) -> None:
    """Validate an offsets array: integer, starts at 0, monotone, ends at
    ``n_items``."""
    check(offsets.ndim == 1 and len(offsets) >= 1, f"{name} must be 1-D and non-empty")
    check(np.issubdtype(offsets.dtype, np.integer),
          f"{name} must have an integer dtype")
    check(int(offsets[0]) == 0, f"{name} must start at 0")
    check(int(offsets[-1]) == n_items, f"{name} must end at {n_items}")
    check(bool(np.all(np.diff(offsets) >= 0)), f"{name} must be non-decreasing")


# -- packing helpers ------------------------------------------------------------------
def _pack_ragged(sequences: Sequence[Sequence[int]]) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten variable-length int sequences into (tokens, offsets) arrays."""
    tokens: List[int] = []
    offsets: List[int] = [0]
    for seq in sequences:
        tokens.extend(int(w) for w in seq)
        offsets.append(len(tokens))
    return (np.asarray(tokens, dtype=np.int32),
            np.asarray(offsets, dtype=np.int64))


def _unpack_ragged(tokens: np.ndarray, offsets: np.ndarray) -> List[Phrase]:
    """Invert :func:`_pack_ragged` into a list of word-id tuples."""
    token_list = tokens.tolist()
    offset_list = offsets.tolist()
    return [tuple(token_list[a:b]) for a, b in zip(offset_list, offset_list[1:])]


def _pack_vocabulary(vocabulary: Vocabulary) -> Dict[str, np.ndarray]:
    """Serialise a vocabulary into string/int arrays (id order preserved)."""
    entries = vocabulary.export_entries()
    return {
        "vocab_words": np.asarray([word for word, _, _ in entries]),
        "vocab_frequencies": np.asarray([freq for _, freq, _ in entries],
                                        dtype=np.int64),
        "vocab_surface": np.asarray([surface for _, _, surface in entries]),
    }


def _unpack_vocabulary(arrays: Dict[str, np.ndarray]) -> Vocabulary:
    """Rebuild a vocabulary from the arrays written by :func:`_pack_vocabulary`."""
    return Vocabulary.from_entries(zip(arrays["vocab_words"].tolist(),
                                       arrays["vocab_frequencies"].tolist(),
                                       arrays["vocab_surface"].tolist()))


def _pack_phrase_table(counter: HashCounter) -> Dict[str, np.ndarray]:
    """Serialise the significant-phrase table (sorted for determinism)."""
    items = sorted(counter.items())
    tokens, offsets = _pack_ragged([phrase for phrase, _ in items])
    return {
        "phrase_tokens": tokens,
        "phrase_offsets": offsets,
        "phrase_counts": np.asarray([count for _, count in items], dtype=np.int64),
    }


def _unpack_phrase_table(arrays: Dict[str, np.ndarray]) -> HashCounter:
    """Rebuild the phrase table from its flat arrays."""
    phrases = _unpack_ragged(arrays["phrase_tokens"], arrays["phrase_offsets"])
    counts = arrays["phrase_counts"].tolist()
    return HashCounter(dict(zip(phrases, counts)))


def _config_dict(config: Any) -> Dict[str, Any]:
    """Dataclass config → plain JSON-serialisable dict."""
    return asdict(config)


def _config_from_dict(cls, payload: Dict[str, Any]):
    """Rebuild a config dataclass, ignoring unknown (forward-compat) keys."""
    known = {f.name for f in fields(cls)}
    return cls(**{key: value for key, value in payload.items() if key in known})


# -- bundles --------------------------------------------------------------------------
@dataclass
class SegmentationBundle:
    """Persisted output of the phrase-mining half of ToPMine.

    Attributes
    ----------
    mining:
        Frozen significant-phrase table with its support metadata.
    segmented:
        The training corpus' bag-of-phrases segmentation (carries the
        vocabulary and corpus name).
    construction:
        Segmenter parameters (threshold α, phrase-length cap).
    preprocess:
        Preprocessing options the corpus was built with.
    metadata:
        Free-form extras (seed, dataset name, …) stored in the manifest.
    """

    mining: FrequentPhraseMiningResult
    segmented: SegmentedCorpus
    construction: PhraseConstructionConfig = field(
        default_factory=PhraseConstructionConfig)
    preprocess: PreprocessConfig = field(default_factory=PreprocessConfig)
    metadata: Dict[str, Any] = field(default_factory=dict)

    kind = "segmentation"

    @property
    def vocabulary(self) -> Vocabulary:
        """The frozen training vocabulary."""
        return self.segmented.vocabulary

    def segmenter(self) -> CorpusSegmenter:
        """Rebuild the frozen-table segmenter for unseen text."""
        return CorpusSegmenter(self.mining, self.construction)


@dataclass
class ModelBundle:
    """A fully fitted, self-contained ToPMine model.

    Carries everything ``repro topics`` and ``repro infer`` need: the frozen
    phrase-mining state (vocabulary, phrase table, segmenter parameters,
    preprocessing options) plus the fitted PhraseLDA counts,
    hyper-parameters, and the per-topic topical-frequency tables of Eq. 8.

    Attributes
    ----------
    vocabulary:
        Frozen training vocabulary.
    mining:
        Frozen significant-phrase table with support metadata.
    construction, preprocess:
        Segmenter and preprocessing parameters (must match training for
        unseen text to be encoded consistently).
    topic_word_counts, doc_topic_counts, topic_counts:
        Final PhraseLDA count matrices (``V × K``, ``D × K``, ``K``).
    alpha, beta:
        Final Dirichlet hyper-parameters (α per topic, β symmetric).
    topical_frequencies:
        ``topical_frequencies[k]`` maps phrase → number of phrase instances
        assigned to topic ``k`` in the final sweep (all lengths ≥ 1).
    metadata:
        Engine, seed, iteration count, corpus name, and other provenance.
    """

    vocabulary: Vocabulary
    mining: FrequentPhraseMiningResult
    construction: PhraseConstructionConfig
    preprocess: PreprocessConfig
    topic_word_counts: np.ndarray
    doc_topic_counts: np.ndarray
    topic_counts: np.ndarray
    alpha: np.ndarray
    beta: float
    topical_frequencies: List[Dict[Phrase, int]] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    kind = "model"

    @property
    def n_topics(self) -> int:
        """Number of topics ``K``."""
        return int(self.topic_word_counts.shape[1])

    def state(self) -> PhraseLDAState:
        """Reconstruct a :class:`~repro.core.phrase_lda.PhraseLDAState`.

        Per-token and per-clique assignments of the training corpus are not
        persisted (the topical-frequency tables already aggregate them), so
        the returned state has empty assignment lists.
        """
        return PhraseLDAState(topic_word_counts=self.topic_word_counts,
                              doc_topic_counts=self.doc_topic_counts,
                              topic_counts=self.topic_counts,
                              alpha=self.alpha, beta=self.beta,
                              assignments=[], clique_assignments=[])

    def segmenter(self) -> CorpusSegmenter:
        """Rebuild the frozen-table segmenter for unseen text."""
        return CorpusSegmenter(self.mining, self.construction)

    def visualization(self, n_unigrams: int = 10, n_phrases: int = 10,
                      min_phrase_length: int = 2) -> TopicVisualization:
        """Rebuild the topic visualisation from the persisted tables."""
        return build_visualization(self.state(), self.topical_frequencies,
                                   self.vocabulary, n_unigrams=n_unigrams,
                                   n_phrases=n_phrases,
                                   min_phrase_length=min_phrase_length)

    def render_topics(self, n_rows: int = 10, title: str = None) -> str:
        """Render the per-topic unigram/phrase tables (paper Tables 1, 4-6)."""
        return self.visualization(n_unigrams=n_rows, n_phrases=n_rows).render(
            n_rows=n_rows, title=title)

    def inferencer(self) -> TopicInferencer:
        """Build a :class:`~repro.core.infer.TopicInferencer` for unseen text."""
        return TopicInferencer(self.state(), self.segmenter(),
                               vocabulary=self.vocabulary,
                               preprocess=self.preprocess)

    def infer_texts(self, texts: Sequence[str],
                    config: InferenceConfig = None):
        """Convenience shortcut: fold unseen raw documents into the model."""
        return self.inferencer().infer_texts(texts, config)

    @classmethod
    def from_fit(cls, segmented: SegmentedCorpus, state: PhraseLDAState,
                 mining: FrequentPhraseMiningResult,
                 construction: PhraseConstructionConfig,
                 preprocess: PreprocessConfig,
                 metadata: Dict[str, Any] = None) -> "ModelBundle":
        """Assemble a bundle from a fitted state plus the mining-half pieces.

        The single place where the bundle contract (field mapping, dtype
        normalisation, Eq. 8 topical-frequency tables computed at
        ``min_phrase_length=1``) is realised — both :meth:`from_result` and
        the ``repro fit`` CLI go through here.

        Parameters
        ----------
        segmented:
            The training segmentation the state was fitted on (supplies the
            vocabulary and the phrase instances behind Eq. 8).
        state:
            The fitted :class:`~repro.core.phrase_lda.PhraseLDAState`.
        mining, construction, preprocess:
            The frozen phrase-mining state and the parameters it was
            produced with (must be the training run's, or unseen text will
            be segmented/encoded inconsistently).
        metadata:
            Provenance stored in the manifest.
        """
        from repro.core.visualization import TopicVisualizer

        topical = TopicVisualizer(segmented, state).topical_frequencies(
            min_phrase_length=1)
        return cls(vocabulary=segmented.vocabulary,
                   mining=mining,
                   construction=construction,
                   preprocess=preprocess,
                   topic_word_counts=state.topic_word_counts,
                   doc_topic_counts=state.doc_topic_counts,
                   topic_counts=state.topic_counts,
                   alpha=np.asarray(state.alpha, dtype=np.float64),
                   beta=float(state.beta),
                   topical_frequencies=topical,
                   metadata=dict(metadata or {}))

    @classmethod
    def from_result(cls, result, config,
                    metadata: Dict[str, Any] = None) -> "ModelBundle":
        """Build a bundle from a finished :class:`~repro.core.topmine.ToPMineResult`.

        Parameters
        ----------
        result:
            The pipeline output (provides mining result, segmentation,
            vocabulary, and fitted state).
        config:
            The :class:`~repro.core.topmine.ToPMineConfig` the run actually
            used — required, because it supplies the segmenter and
            preprocessing parameters that must match training for the
            bundle's inference path to be consistent (and they are not
            recoverable from ``result``).
        metadata:
            Extra provenance merged into the bundle metadata.
        """
        merged = {
            "corpus_name": result.corpus.name,
            "n_documents": len(result.corpus.documents),
            "seed": config.seed,
            "n_iterations": config.n_iterations,
        }
        merged.update(metadata or {})
        return cls.from_fit(result.segmented_corpus, result.topic_model,
                            result.mining_result,
                            construction=config.construction_config(),
                            preprocess=config.preprocess,
                            metadata=merged)


Bundle = Union[SegmentationBundle, ModelBundle]


# -- save / load ----------------------------------------------------------------------
def save_bundle(path: Union[str, Path], bundle: Bundle,
                compress: bool = False) -> Path:
    """Serialise a bundle to a single ``.npz`` file.

    Parameters
    ----------
    path:
        Destination file (written exactly as given; parent directories are
        created).
    bundle:
        A :class:`SegmentationBundle` or :class:`ModelBundle`.
    compress:
        Deflate the array members.  The default (``False``) stores them
        uncompressed so :func:`load_bundle` can map them zero-copy and
        serving worker processes share one physical copy; pass ``True``
        for archival copies where file size matters more than load cost.

    Returns
    -------
    pathlib.Path
        The written path.
    """
    from repro import __version__ as package_version

    manifest: Dict[str, Any] = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "kind": bundle.kind,
        "created_by": f"topmine-repro {package_version}",
        "mining": {
            "total_tokens": int(bundle.mining.total_tokens),
            "min_support": int(bundle.mining.min_support),
            "iterations": int(bundle.mining.iterations),
        },
        # engine and n_jobs are execution preferences of the machine that
        # *mined* the bundle, not part of the model: persisting them would
        # pin every later consumer (inference, serving) to the miner's
        # engine choice or silently fork worker pools.  "auto" resolves per
        # consumer (and still degrades to the reference engine whenever the
        # configuration requires it).
        "construction": {**_config_dict(bundle.construction),
                         "engine": "auto", "n_jobs": 1},
        "preprocess": _config_dict(bundle.preprocess),
        "metadata": dict(bundle.metadata),
    }
    arrays: Dict[str, np.ndarray] = {}
    arrays.update(_pack_phrase_table(bundle.mining.counter))

    if isinstance(bundle, SegmentationBundle):
        arrays.update(_pack_vocabulary(bundle.segmented.vocabulary))
        doc_phrase_counts = [doc.num_phrases for doc in bundle.segmented]
        all_phrases = [phrase for doc in bundle.segmented for phrase in doc.phrases]
        seg_tokens, seg_phrase_offsets = _pack_ragged(all_phrases)
        arrays["seg_tokens"] = seg_tokens
        arrays["seg_phrase_offsets"] = seg_phrase_offsets
        arrays["seg_doc_offsets"] = np.concatenate(
            ([0], np.cumsum(doc_phrase_counts))).astype(np.int64)
        manifest["corpus"] = {
            "name": bundle.segmented.name,
            "n_documents": len(bundle.segmented.documents),
        }
    elif isinstance(bundle, ModelBundle):
        arrays.update(_pack_vocabulary(bundle.vocabulary))
        arrays["topic_word_counts"] = np.asarray(bundle.topic_word_counts,
                                                 dtype=np.int64)
        arrays["doc_topic_counts"] = np.asarray(bundle.doc_topic_counts,
                                                dtype=np.int64)
        arrays["topic_counts"] = np.asarray(bundle.topic_counts, dtype=np.int64)
        arrays["alpha"] = np.asarray(bundle.alpha, dtype=np.float64)
        all_phrases = sorted({phrase
                              for topic in bundle.topical_frequencies
                              for phrase in topic})
        topical_tokens, topical_offsets = _pack_ragged(all_phrases)
        counts = np.zeros((len(all_phrases), bundle.n_topics), dtype=np.int64)
        index = {phrase: row for row, phrase in enumerate(all_phrases)}
        for k, topic in enumerate(bundle.topical_frequencies):
            for phrase, count in topic.items():
                counts[index[phrase], k] = count
        arrays["topical_tokens"] = topical_tokens
        arrays["topical_offsets"] = topical_offsets
        arrays["topical_counts"] = counts
        manifest["model"] = {
            "n_topics": bundle.n_topics,
            "beta": float(bundle.beta),
        }
    else:
        raise TypeError(f"cannot save object of type {type(bundle).__name__}")
    return _write_npz(path, manifest, arrays, compress=compress)


def load_bundle(path: Union[str, Path], mapped: bool = True) -> Bundle:
    """Load a bundle of either kind from ``path``.

    Parameters
    ----------
    path:
        The bundle file.
    mapped:
        Zero-copy load (the default): array payloads of an uncompressed
        bundle become read-only views over one shared memory map of the
        file, so concurrent processes loading the same bundle share a
        single physical copy through the page cache.  Compressed bundles
        fall back to materializing transparently.  ``False`` forces
        private (writable) copies.

    Returns
    -------
    SegmentationBundle or ModelBundle
        Depending on the bundle's ``kind``.

    Raises
    ------
    ArtifactError
        If the file is missing, unreadable, or violates the schema.
    ArtifactVersionError
        If the bundle was written by a newer format version.
    """
    manifest, arrays = _read_npz(path, mapped=mapped)
    mining = FrequentPhraseMiningResult(
        counter=_unpack_phrase_table(arrays),
        total_tokens=int(manifest["mining"]["total_tokens"]),
        min_support=int(manifest["mining"]["min_support"]),
        iterations=int(manifest["mining"]["iterations"]))
    construction = _config_from_dict(PhraseConstructionConfig,
                                     manifest.get("construction", {}))
    preprocess = _config_from_dict(PreprocessConfig, manifest.get("preprocess", {}))
    vocabulary = _unpack_vocabulary(arrays)
    metadata = dict(manifest.get("metadata", {}))

    if manifest["kind"] == "segmentation":
        phrases = _unpack_ragged(arrays["seg_tokens"], arrays["seg_phrase_offsets"])
        doc_offsets = arrays["seg_doc_offsets"].tolist()
        corpus_info = manifest.get("corpus", {})
        segmented = SegmentedCorpus(vocabulary=vocabulary,
                                    name=corpus_info.get("name", "corpus"))
        for doc_id, (a, b) in enumerate(zip(doc_offsets, doc_offsets[1:])):
            segmented.documents.append(
                SegmentedDocument(phrases=list(phrases[a:b]), doc_id=doc_id))
        return SegmentationBundle(mining=mining, segmented=segmented,
                                  construction=construction,
                                  preprocess=preprocess, metadata=metadata)

    topical_phrases = _unpack_ragged(arrays["topical_tokens"],
                                     arrays["topical_offsets"])
    counts = arrays["topical_counts"]
    n_topics = counts.shape[1]
    topical: List[Dict[Phrase, int]] = [{} for _ in range(n_topics)]
    for row, phrase in enumerate(topical_phrases):
        for k in range(n_topics):
            count = int(counts[row, k])
            if count:
                topical[k][phrase] = count
    return ModelBundle(vocabulary=vocabulary, mining=mining,
                       construction=construction, preprocess=preprocess,
                       topic_word_counts=arrays["topic_word_counts"],
                       doc_topic_counts=arrays["doc_topic_counts"],
                       topic_counts=arrays["topic_counts"],
                       alpha=arrays["alpha"],
                       beta=float(manifest["model"]["beta"]),
                       topical_frequencies=topical, metadata=metadata)


def read_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate only a bundle's embedded JSON manifest.

    Reads just the ``manifest.npy`` zip member through :mod:`zipfile` —
    no ``NpzFile`` is ever constructed and **no array payload bytes are
    read or decompressed** — so callers that only need *metadata* (the
    serving model registry's ``/v1/models`` listing, directory scans) can
    describe a bundle in microseconds rather than loading megabytes of
    counts.  A bundle whose array members are truncated or corrupt still
    yields its manifest (``tests/test_artifacts.py`` pins this).

    Returns
    -------
    dict
        The validated manifest (``format``, ``version``, ``kind``,
        ``mining``, configurations, ``metadata``, …).

    Raises
    ------
    ArtifactError
        If the file is missing, unreadable, or the manifest violates the
        schema.
    ArtifactVersionError
        If the bundle was written by a newer format version.
    """
    path = Path(path)
    if not path.exists():
        raise ArtifactError(f"bundle not found: {path}")
    try:
        with zipfile.ZipFile(path) as archive:
            try:
                member = archive.getinfo("manifest.npy")
            except KeyError:
                raise ArtifactError(
                    f"{path} has no manifest entry — not a {FORMAT_NAME} "
                    f"bundle") from None
            with archive.open(member) as handle:
                entry = np.lib.format.read_array(handle, allow_pickle=False)
        manifest = json.loads(str(entry[()]))
    except ArtifactError:
        raise
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{path}: corrupt manifest JSON: {exc}") from exc
    except (zipfile.BadZipFile, ValueError, OSError, KeyError) as exc:
        raise ArtifactError(f"{path} is not a readable bundle: {exc}") from exc
    _validate_manifest(manifest, path)
    return manifest


def describe_bundle(path: Union[str, Path]) -> Dict[str, Any]:
    """Cheaply describe one bundle file for listings (``repro models``).

    Combines the manifest-only read of :func:`read_manifest` with the
    file's stat information; none of the array payloads are decompressed.
    Unreadable or non-bundle files are reported with an ``"error"`` field
    instead of raising, so a directory listing never fails wholesale on
    one stray file.

    Returns
    -------
    dict
        ``name`` (file stem), ``path``, ``size_bytes``, ``mtime`` plus —
        for readable bundles — ``kind``, ``schema_version``, ``created_by``
        and ``metadata`` (and ``n_topics`` for model bundles), or
        ``error`` for unreadable ones.
    """
    path = Path(path)
    info: Dict[str, Any] = {"name": path.stem, "path": str(path)}
    try:
        stat = path.stat()
    except OSError as exc:
        info["error"] = f"cannot stat: {exc}"
        return info
    info["size_bytes"] = stat.st_size
    info["mtime"] = stat.st_mtime
    try:
        manifest = read_manifest(path)
    except ArtifactError as exc:
        info["error"] = str(exc)
        return info
    info["kind"] = manifest["kind"]
    info["schema_version"] = manifest["version"]
    info["created_by"] = manifest.get("created_by", "")
    info["metadata"] = dict(manifest.get("metadata", {}))
    if manifest["kind"] == "model":
        info["n_topics"] = manifest.get("model", {}).get("n_topics")
    return info


def describe_directory(root: Union[str, Path]) -> List[Dict[str, Any]]:
    """Describe every ``*.npz`` bundle under ``root`` (non-recursive).

    Returns one :func:`describe_bundle` entry per file, sorted by name —
    the listing behind ``repro models`` (and handy for watching a stream's
    ``models/`` directory fill with published versions).
    """
    root = Path(root)
    if not root.is_dir():
        raise ArtifactError(f"model directory not found: {root}")
    return [describe_bundle(path) for path in sorted(root.glob("*.npz"))]


def load_segmentation(path: Union[str, Path]) -> SegmentationBundle:
    """Load a bundle and require it to be a segmentation bundle."""
    bundle = load_bundle(path)
    if not isinstance(bundle, SegmentationBundle):
        raise ArtifactError(
            f"{path} is a {bundle.kind!r} bundle, expected 'segmentation' "
            f"(did you pass a fitted model to `repro fit`?)")
    return bundle


def load_model(path: Union[str, Path]) -> ModelBundle:
    """Load a bundle and require it to be a fitted model bundle."""
    bundle = load_bundle(path)
    if not isinstance(bundle, ModelBundle):
        raise ArtifactError(
            f"{path} is a {bundle.kind!r} bundle, expected 'model' "
            f"(run `repro fit` on it first)")
    return bundle
