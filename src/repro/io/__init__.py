"""Model persistence: versioned on-disk bundles for the ToPMine pipeline.

The :mod:`repro.io.artifacts` module defines the ``.npz``-based bundle
format that turns a one-shot reproduction into a train-once / apply-many
system: the phrase-mining half (vocabulary, significant-phrase table,
segmenter parameters, training segmentation) and the fitted PhraseLDA model
(count matrices, hyper-parameters, topical-frequency tables, engine
metadata) each serialise to a single file with schema validation and
round-trip guarantees across sampling engines.
"""

from repro.io.artifacts import (
    FORMAT_NAME,
    FORMAT_VERSION,
    ArtifactError,
    ArtifactVersionError,
    ModelBundle,
    SegmentationBundle,
    load_bundle,
    load_model,
    load_segmentation,
    save_bundle,
)

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "ArtifactError",
    "ArtifactVersionError",
    "ModelBundle",
    "SegmentationBundle",
    "load_bundle",
    "load_model",
    "load_segmentation",
    "save_bundle",
]
