"""Capped exponential backoff with deterministic jitter.

Every network edge in the replication path (``ServeClient`` calls, the
``LogFollower`` shipping loop, the stream supervisor's refresh retries)
shares one backoff policy so retry behaviour is uniform and testable:
delays grow geometrically from ``base_delay`` up to ``max_delay``, a
deterministic jitter of ``+/- jitter`` (as a fraction of the delay)
decorrelates concurrent retriers, and an optional overall ``deadline``
bounds the *total* time a caller can spend inside one logical operation —
``retries x timeout`` can never silently exceed it.

Jitter is deterministic by construction: :meth:`RetryPolicy.delay` hashes
``(token, attempt)`` into the jitter fraction, so a test that fixes the
token sees exact delays while production callers pass a per-process token
(pid, url, ...) to spread load.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple, Type, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Retry schedule: capped exponential backoff plus deterministic jitter.

    Parameters
    ----------
    retries:
        Retry attempts *after* the first try (0 disables retrying).
    base_delay:
        Backoff before the first retry, in seconds.
    max_delay:
        Upper cap applied to every backoff delay, in seconds.
    multiplier:
        Geometric growth factor between consecutive delays.
    jitter:
        Fraction of each delay randomised away, in ``[0, 1]``: the
        jittered delay lies in ``[delay * (1 - jitter), delay]``.
    deadline:
        Optional overall wall-clock budget (seconds) for a whole
        :meth:`call` including sleeps; ``None`` means unbounded.

    Example
    -------
    >>> policy = RetryPolicy(retries=3, base_delay=0.1, max_delay=0.4,
    ...                      jitter=0.0)
    >>> [policy.delay(attempt) for attempt in (1, 2, 3)]
    [0.1, 0.2, 0.4]
    """

    retries: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.25
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        """Validate field ranges."""
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")

    def delay(self, attempt: int, token: Any = 0) -> float:
        """Return the backoff before retry ``attempt`` (1-based), jittered.

        The jitter fraction is a pure function of ``(token, attempt)``, so
        the schedule is reproducible for a fixed token yet decorrelated
        across tokens (callers pass a pid or URL).
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.base_delay * self.multiplier ** (attempt - 1),
                  self.max_delay)
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        digest = hashlib.sha256(
            f"{token!r}:{attempt}".encode("utf-8")).digest()
        fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return raw * (1.0 - self.jitter * fraction)

    def call(self, func: Callable[[], T], *,
             retry_on: Tuple[Type[BaseException], ...] = (Exception,),
             token: Any = 0,
             on_retry: Optional[Callable[[int, BaseException, float],
                                         None]] = None,
             sleep: Callable[[float], None] = time.sleep,
             clock: Callable[[], float] = time.monotonic) -> T:
        """Run ``func`` under this policy, retrying ``retry_on`` exceptions.

        Gives up (re-raising the last exception) once ``retries`` are
        exhausted or when the next sleep would cross ``deadline``.
        ``on_retry(attempt, exc, pause)`` is invoked before each sleep —
        callers hook metrics/log events there.  ``sleep``/``clock`` are
        injectable for deterministic tests.
        """
        start = clock()
        attempt = 0
        while True:
            try:
                return func()
            except retry_on as exc:
                attempt += 1
                if attempt > self.retries:
                    raise
                pause = self.delay(attempt, token)
                if self.deadline is not None:
                    elapsed = clock() - start
                    if elapsed + pause >= self.deadline:
                        raise
                if on_retry is not None:
                    on_retry(attempt, exc, pause)
                sleep(pause)

    def remaining(self, start: float,
                  clock: Callable[[], float] = time.monotonic
                  ) -> Optional[float]:
        """Seconds left before ``deadline`` for a call started at ``start``.

        Returns ``None`` when the policy has no deadline, otherwise a value
        clamped at ``0.0``.
        """
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - (clock() - start))


__all__ = ["RetryPolicy"]
