"""Plain-text table rendering for topic visualisations and benchmark reports.

The paper presents its qualitative results as tables of the most probable
unigrams and phrases per topic (Tables 1, 4, 5, 6) and its scalability results
as a method × dataset runtime table (Table 3).  The benchmark harness prints
the same row/column structure; this module provides the shared formatter.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table.

    All cells are converted with ``str``.  Column widths adapt to content.
    """
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    str_headers = [str(h) for h in headers]
    n_cols = len(str_headers)
    for row in str_rows:
        if len(row) != n_cols:
            raise ValueError(
                f"row has {len(row)} cells but table has {n_cols} columns")

    widths = [len(h) for h in str_headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), len(separator)))
    lines.append(format_row(str_headers))
    lines.append(separator)
    lines.extend(format_row(row) for row in str_rows)
    return "\n".join(lines)


def render_topic_columns(topic_lists: Sequence[Sequence[str]],
                         topic_names: Sequence[str] | None = None,
                         n_rows: int | None = None,
                         title: str | None = None) -> str:
    """Render per-topic ranked term/phrase lists side by side.

    This matches the layout of the paper's visualisation tables, where each
    column is a topic and each row is the next most-probable term or phrase.

    Parameters
    ----------
    topic_lists:
        One ranked list of strings per topic.
    topic_names:
        Optional column headers; defaults to ``Topic 1..K``.
    n_rows:
        Number of rows to show; defaults to the longest list.
    """
    n_topics = len(topic_lists)
    if topic_names is None:
        topic_names = [f"Topic {i + 1}" for i in range(n_topics)]
    if len(topic_names) != n_topics:
        raise ValueError("topic_names length must match topic_lists length")
    if n_rows is None:
        n_rows = max((len(lst) for lst in topic_lists), default=0)

    rows = []
    for r in range(n_rows):
        rows.append([lst[r] if r < len(lst) else "" for lst in topic_lists])
    return render_table(topic_names, rows, title=title)
