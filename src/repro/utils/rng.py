"""Deterministic random-number helpers.

All stochastic components (Gibbs samplers, synthetic dataset generators, the
simulated annotators) accept either an integer seed or a ready-made
:class:`numpy.random.Generator`.  Funnelling that conversion through one
helper keeps seeding behaviour consistent across the package and guarantees
experiment reproducibility.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (fresh entropy), an integer, or an existing
    generator (returned unchanged so callers can thread one RNG through a
    pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from ``seed``.

    Used when an experiment needs separate, reproducible randomness streams
    (e.g. one per simulated annotator).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    root = new_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def choice_without(rng: np.random.Generator, n: int, exclude: int) -> int:
    """Draw a uniform integer in ``[0, n)`` different from ``exclude``."""
    if n < 2:
        raise ValueError("need at least two options to exclude one")
    draw = int(rng.integers(0, n - 1))
    return draw + 1 if draw >= exclude else draw
