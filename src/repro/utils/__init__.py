"""Shared low-level substrates used across the ToPMine reproduction.

This subpackage contains small, dependency-free building blocks:

* :mod:`repro.utils.counter` — the hash-based phrase counter used by the
  frequent phrase mining algorithm (paper Algorithm 1, line 3).
* :mod:`repro.utils.heap` — an addressable max-heap supporting the
  decrease/increase-key and deletion operations required by the bottom-up
  phrase construction algorithm (paper Algorithm 2).
* :mod:`repro.utils.rng` — deterministic random-number helpers.
* :mod:`repro.utils.timing` — wall-clock timers used by the scalability
  experiments (Figure 8, Table 3).
* :mod:`repro.utils.tables` — plain-text table rendering used by the topic
  visualisations (Tables 1, 4, 5, 6).
"""

from repro.utils.counter import HashCounter
from repro.utils.heap import AddressableMaxHeap, HeapEntry
from repro.utils.rng import new_rng
from repro.utils.tables import render_table
from repro.utils.timing import Stopwatch, time_call

__all__ = [
    "HashCounter",
    "AddressableMaxHeap",
    "HeapEntry",
    "new_rng",
    "render_table",
    "Stopwatch",
    "time_call",
]
