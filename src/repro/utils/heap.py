"""An addressable max-heap for the bottom-up phrase construction algorithm.

Paper Algorithm 2 repeatedly extracts the adjacent phrase pair with the
largest significance score, merges it, and then *updates* the significance of
the merged phrase with its new left and right neighbours.  A plain
``heapq``-style heap cannot update or delete arbitrary entries, so we
implement the standard lazy-deletion technique: entries carry a monotonically
increasing revision counter, stale entries are skipped on pop, and updates
push a fresh entry while invalidating the previous one.

The heap is a *max*-heap on ``priority`` with deterministic tie-breaking on
the insertion sequence number so that runs are reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional, Tuple


@dataclass(order=True)
class _HeapItem:
    """Internal heap record ordered for ``heapq`` (a min-heap on the key)."""

    sort_key: Tuple[float, int]
    key: Hashable = field(compare=False)
    priority: float = field(compare=False)
    payload: Any = field(compare=False, default=None)
    valid: bool = field(compare=False, default=True)


@dataclass
class HeapEntry:
    """A live heap entry returned by :meth:`AddressableMaxHeap.pop_max`."""

    key: Hashable
    priority: float
    payload: Any = None


class AddressableMaxHeap:
    """Max-heap supporting update-key and delete-key by entry key.

    Keys are arbitrary hashable identifiers (for phrase construction they are
    the positions of candidate merges inside a document chunk).  Each key has
    at most one live entry; pushing an existing key replaces its priority.
    """

    def __init__(self) -> None:
        self._heap: list[_HeapItem] = []
        self._live: Dict[Hashable, _HeapItem] = {}
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._live

    def __bool__(self) -> bool:
        return bool(self._live)

    # -- core operations -----------------------------------------------------
    def push(self, key: Hashable, priority: float, payload: Any = None) -> None:
        """Insert ``key`` with ``priority`` or update it if already present."""
        if key in self._live:
            self._live[key].valid = False
        seq = next(self._counter)
        # heapq is a min-heap; negate priority for max behaviour.  The sequence
        # number breaks ties deterministically (earlier pushes win).
        item = _HeapItem(sort_key=(-priority, seq), key=key,
                         priority=priority, payload=payload)
        self._live[key] = item
        heapq.heappush(self._heap, item)

    def update(self, key: Hashable, priority: float, payload: Any = None) -> None:
        """Alias of :meth:`push`; reads better at call sites that re-score."""
        self.push(key, priority, payload)

    def remove(self, key: Hashable) -> bool:
        """Invalidate the entry for ``key``.  Returns ``True`` when removed."""
        item = self._live.pop(key, None)
        if item is None:
            return False
        item.valid = False
        return True

    def peek_max(self) -> Optional[HeapEntry]:
        """Return the highest-priority live entry without removing it."""
        self._discard_stale()
        if not self._heap:
            return None
        top = self._heap[0]
        return HeapEntry(key=top.key, priority=top.priority, payload=top.payload)

    def pop_max(self) -> Optional[HeapEntry]:
        """Remove and return the highest-priority live entry (or ``None``)."""
        self._discard_stale()
        if not self._heap:
            return None
        top = heapq.heappop(self._heap)
        del self._live[top.key]
        return HeapEntry(key=top.key, priority=top.priority, payload=top.payload)

    def priority_of(self, key: Hashable) -> Optional[float]:
        """Return the current priority of ``key`` or ``None`` when absent."""
        item = self._live.get(key)
        return None if item is None else item.priority

    def keys(self):
        """Return a view of live keys."""
        return self._live.keys()

    # -- internals -------------------------------------------------------------
    def _discard_stale(self) -> None:
        while self._heap and not self._heap[0].valid:
            heapq.heappop(self._heap)
