"""Wall-clock timing, latency, and counter helpers shared across the package.

Figure 8 and Table 3 of the paper report runtime decompositions and
cross-method runtime comparisons; the :class:`Stopwatch` / :func:`time_call`
helpers give a consistent way to time named stages of a pipeline.

On top of that, this module is the *single* statistics path shared by the
benchmark harness (:mod:`repro.bench`) and the model server's ``/metrics``
endpoint (:mod:`repro.serve.http`): :func:`percentile` computes latency
quantiles, :class:`LatencyTracker` records observation streams with bounded
memory, and :class:`MetricsRegistry` aggregates named counters and latency
trackers behind one thread-safe API (renderable as Prometheus text).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Sequence, Tuple


@dataclass
class Stopwatch:
    """Accumulates elapsed wall-clock time for named stages.

    Example
    -------
    >>> watch = Stopwatch()
    >>> with watch.measure("mining"):
    ...     _ = sum(range(1000))
    >>> "mining" in watch.timings
    True
    """

    timings: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, stage: str) -> Iterator[None]:
        """Context manager adding the elapsed time of the block to ``stage``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.timings[stage] = self.timings.get(stage, 0.0) + elapsed

    def total(self) -> float:
        """Return the sum of all recorded stage times."""
        return sum(self.timings.values())

    def as_dict(self) -> Dict[str, float]:
        """Return a copy of the stage → seconds mapping."""
        return dict(self.timings)


def time_call(func: Callable[..., Any], *args: Any, **kwargs: Any) -> Tuple[Any, float]:
    """Call ``func`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - start


def percentile(samples: Sequence[float], q: float) -> float:
    """Return the ``q``-th percentile of ``samples`` (linear interpolation).

    Matches ``numpy.percentile``'s default (``linear``) method so the
    benchmark harness and the server's ``/metrics`` endpoint report the
    same quantile definition without depending on NumPy here.

    Parameters
    ----------
    samples:
        Observations (need not be sorted; must be non-empty).
    q:
        Percentile in ``[0, 100]``.

    Example
    -------
    >>> percentile([4.0, 1.0, 3.0, 2.0], 50)
    2.5
    >>> percentile([1.0, 2.0, 3.0, 4.0], 100)
    4.0
    """
    if not samples:
        raise ValueError("percentile() of an empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return float(ordered[low] + (ordered[high] - ordered[low]) * fraction)


class LatencyTracker:
    """Thread-safe latency recorder with bounded memory.

    Keeps exact ``count``/``total`` aggregates forever but retains only the
    most recent ``max_samples`` observations for percentile queries (a
    sliding window, so a long-running server's ``/metrics`` quantiles track
    current behaviour rather than all of history).

    Example
    -------
    >>> tracker = LatencyTracker()
    >>> for ms in (1, 2, 3, 4):
    ...     tracker.observe(ms / 1000.0)
    >>> tracker.count
    4
    >>> round(tracker.quantile(50), 4)
    0.0025
    """

    def __init__(self, max_samples: int = 2048) -> None:
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self._samples: deque = deque(maxlen=max_samples)
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        """Record one observation (in seconds)."""
        with self._lock:
            self._samples.append(float(seconds))
            self.count += 1
            self.total += float(seconds)

    def quantile(self, q: float) -> float:
        """Return the ``q``-th percentile over the retained window."""
        with self._lock:
            window = list(self._samples)
        return percentile(window, q)

    def summary(self) -> Dict[str, float]:
        """Return ``{count, total, mean, p50, p95, max}`` (empty-safe).

        ``p50``/``p95``/``max`` cover the retained window; ``count``,
        ``total`` and ``mean`` cover every observation ever recorded.
        """
        with self._lock:
            window = list(self._samples)
            count, total = self.count, self.total
        if not window:
            return {"count": 0, "total": 0.0, "mean": 0.0,
                    "p50": 0.0, "p95": 0.0, "max": 0.0}
        return {
            "count": count,
            "total": total,
            "mean": total / count,
            "p50": percentile(window, 50),
            "p95": percentile(window, 95),
            "max": max(window),
        }


class MetricsRegistry:
    """Named counters and latency trackers behind one thread-safe API.

    The shared statistics path of the serving layer and the benchmark
    harness: the HTTP server increments request counters and observes
    request latencies here (rendered by ``/metrics``), and ``repro.bench``
    reuses the same :class:`LatencyTracker`/:func:`percentile` machinery for
    its p50/p95 figures — one implementation, no drift.

    Example
    -------
    >>> metrics = MetricsRegistry()
    >>> metrics.increment("requests_total")
    >>> with metrics.timer("infer_seconds"):
    ...     _ = sum(range(100))
    >>> metrics.snapshot()["counters"]["requests_total"]
    1
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._latencies: Dict[str, LatencyTracker] = {}
        self._lock = threading.Lock()
        self._shard: Any = None

    def attach_shard(self, shard: Any) -> None:
        """Mirror every write into a metric shard (see :mod:`repro.obs`).

        ``shard`` follows the :class:`repro.obs.ShardWriter` protocol
        (``inc_counter(name, by)`` / ``observe(name, value)`` /
        ``set_gauge(name, value)``).  Once attached, every
        :meth:`increment`, :meth:`observe` and :meth:`set_gauge` lands in both
        this in-process registry (exact counts, windowed quantiles) and the
        shard (cross-process aggregation at scrape time), so existing call
        sites need no changes to become fleet-visible.
        """
        self._shard = shard

    def increment(self, name: str, by: float = 1) -> None:
        """Add ``by`` to the counter ``name`` (created at 0 on first use)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by
        if self._shard is not None:
            self._shard.inc_counter(name, by)

    def counter(self, name: str) -> float:
        """Return the current value of counter ``name`` (0 if never set)."""
        with self._lock:
            return self._counters.get(name, 0)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)
        if self._shard is not None:
            self._shard.set_gauge(name, value)

    def gauge(self, name: str) -> float:
        """Return the current value of gauge ``name`` (0 if never set)."""
        with self._lock:
            return self._gauges.get(name, 0.0)

    def latency(self, name: str) -> LatencyTracker:
        """Return (creating on first use) the tracker for ``name``."""
        with self._lock:
            tracker = self._latencies.get(name)
            if tracker is None:
                tracker = self._latencies[name] = LatencyTracker()
            return tracker

    def observe(self, name: str, seconds: float) -> None:
        """Record one latency observation under ``name``."""
        self.latency(name).observe(seconds)
        if self._shard is not None:
            self._shard.observe(name, seconds)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager observing the block's wall-clock time under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    def snapshot(self) -> Dict[str, Any]:
        """Return ``{"counters", "gauges", "latencies"}`` maps."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            latencies = dict(self._latencies)
        return {
            "counters": counters,
            "gauges": gauges,
            "latencies": {name: tracker.summary()
                          for name, tracker in latencies.items()},
        }

    def render_prometheus(self, prefix: str = "repro") -> str:
        """Render the registry in the Prometheus text exposition format.

        Counters become ``<prefix>_<name>``; each latency tracker becomes a
        summary family ``<prefix>_<name>`` with ``quantile`` labels plus
        ``_count`` and ``_sum`` series.  Metric names are sanitised to
        ``[a-zA-Z0-9_]``.
        """
        def clean(name: str) -> str:
            return "".join(c if c.isalnum() or c == "_" else "_" for c in name)

        snapshot = self.snapshot()
        lines: List[str] = []
        for name in sorted(snapshot["counters"]):
            metric = f"{prefix}_{clean(name)}"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {snapshot['counters'][name]}")
        for name in sorted(snapshot["gauges"]):
            metric = f"{prefix}_{clean(name)}"
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {snapshot['gauges'][name]}")
        for name in sorted(snapshot["latencies"]):
            summary = snapshot["latencies"][name]
            metric = f"{prefix}_{clean(name)}"
            lines.append(f"# TYPE {metric} summary")
            lines.append(f'{metric}{{quantile="0.5"}} {summary["p50"]}')
            lines.append(f'{metric}{{quantile="0.95"}} {summary["p95"]}')
            lines.append(f"{metric}_sum {summary['total']}")
            lines.append(f"{metric}_count {summary['count']}")
        return "\n".join(lines) + "\n"
