"""Wall-clock timing helpers for the scalability experiments.

Figure 8 and Table 3 of the paper report runtime decompositions and
cross-method runtime comparisons.  The helpers here give a consistent way to
time named stages of a pipeline and collect the results.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Tuple


@dataclass
class Stopwatch:
    """Accumulates elapsed wall-clock time for named stages.

    Example
    -------
    >>> watch = Stopwatch()
    >>> with watch.measure("mining"):
    ...     _ = sum(range(1000))
    >>> "mining" in watch.timings
    True
    """

    timings: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, stage: str) -> Iterator[None]:
        """Context manager adding the elapsed time of the block to ``stage``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.timings[stage] = self.timings.get(stage, 0.0) + elapsed

    def total(self) -> float:
        """Return the sum of all recorded stage times."""
        return sum(self.timings.values())

    def as_dict(self) -> Dict[str, float]:
        """Return a copy of the stage → seconds mapping."""
        return dict(self.timings)


def time_call(func: Callable[..., Any], *args: Any, **kwargs: Any) -> Tuple[Any, float]:
    """Call ``func`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - start
