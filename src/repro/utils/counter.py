"""Hash-based counters for contiguous phrase candidates.

The frequent phrase mining algorithm (paper Algorithm 1) counts candidate
phrases of increasing length with "an appropriate hash-based counter".  A
phrase is a tuple of word identifiers, so a plain dictionary keyed by tuples
is the natural Python realisation.  :class:`HashCounter` wraps that dictionary
with the handful of operations the miner needs — increment, threshold
filtering, and pruning — and keeps the implementation explicit so the
algorithmic steps in :mod:`repro.core.frequent_phrases` read like the paper's
pseudocode.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Sequence, Tuple

Phrase = Tuple[int, ...]


class HashCounter:
    """Counts occurrences of phrases (tuples of word ids).

    The counter behaves like a mapping from phrase to count with a default of
    zero, mirroring the ``C[P] <- C[P] + 1`` updates in Algorithm 1.

    Parameters
    ----------
    initial:
        Optional mapping of phrase to count used to seed the counter.
    """

    __slots__ = ("_counts",)

    def __init__(self, initial: Mapping[Phrase, int] | None = None) -> None:
        self._counts: Dict[Phrase, int] = dict(initial) if initial else {}

    # -- mapping protocol -------------------------------------------------
    def __getitem__(self, phrase: Sequence[int]) -> int:
        return self._counts.get(tuple(phrase), 0)

    def __setitem__(self, phrase: Sequence[int], count: int) -> None:
        if count < 0:
            raise ValueError("phrase counts must be non-negative")
        self._counts[tuple(phrase)] = count

    def __contains__(self, phrase: Sequence[int]) -> bool:
        return tuple(phrase) in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def __iter__(self) -> Iterator[Phrase]:
        return iter(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashCounter(n_phrases={len(self._counts)})"

    # -- counting operations ----------------------------------------------
    def increment(self, phrase: Sequence[int], by: int = 1) -> int:
        """Increment the count of ``phrase`` and return the new count."""
        key = tuple(phrase)
        new_count = self._counts.get(key, 0) + by
        self._counts[key] = new_count
        return new_count

    def get(self, phrase: Sequence[int], default: int = 0) -> int:
        """Return the count for ``phrase`` or ``default`` when unseen."""
        return self._counts.get(tuple(phrase), default)

    def items(self) -> Iterable[Tuple[Phrase, int]]:
        """Iterate over ``(phrase, count)`` pairs."""
        return self._counts.items()

    def update_from(self, phrases: Iterable[Sequence[int]]) -> None:
        """Increment the counter once for every phrase in ``phrases``."""
        for phrase in phrases:
            self.increment(phrase)

    def set_many(self, phrases: Iterable[Sequence[int]],
                 counts: Iterable[int]) -> None:
        """Store pre-aggregated ``(phrase, count)`` pairs in one pass.

        The bulk companion of ``counter[phrase] = count`` for engines that
        aggregate candidates outside the counter (the vectorized miner's
        ``np.unique``/``bincount`` levels) and only materialise the frequent
        survivors here.
        """
        counter = self._counts
        for phrase, count in zip(phrases, counts):
            if count < 0:
                raise ValueError("phrase counts must be non-negative")
            counter[tuple(phrase)] = int(count)

    def merge_add(self, other: "HashCounter | Mapping[Phrase, int]") -> None:
        """Add every count of ``other`` into this counter, in place.

        The merge operation behind incremental mining
        (:mod:`repro.stream.counters`): raw per-shard phrase counts are
        summed key by key, so counting each shard once and merging is
        equivalent to counting the concatenated corpus.  Keys absent here
        are inserted; keys present in both accumulate.
        """
        counts = self._counts
        for phrase, count in other.items():
            if count < 0:
                raise ValueError("phrase counts must be non-negative")
            key = tuple(phrase)
            counts[key] = counts.get(key, 0) + int(count)

    # -- pruning -----------------------------------------------------------
    def prune_below(self, min_support: int) -> int:
        """Remove phrases whose count is below ``min_support``.

        Returns the number of phrases removed.  This realises the final
        filtering step of Algorithm 1 (line 22), which only returns phrases
        meeting the minimum support.
        """
        if min_support <= 0:
            return 0
        doomed = [p for p, c in self._counts.items() if c < min_support]
        for phrase in doomed:
            del self._counts[phrase]
        return len(doomed)

    def filtered(self, min_support: int) -> "HashCounter":
        """Return a new counter holding only phrases at/above ``min_support``."""
        kept = {p: c for p, c in self._counts.items() if c >= min_support}
        return HashCounter(kept)

    def total(self) -> int:
        """Return the sum of all counts."""
        return sum(self._counts.values())

    def phrases_of_length(self, length: int) -> Dict[Phrase, int]:
        """Return the sub-dictionary of phrases with exactly ``length`` words."""
        return {p: c for p, c in self._counts.items() if len(p) == length}

    def max_phrase_length(self) -> int:
        """Return the length of the longest counted phrase (0 when empty)."""
        if not self._counts:
            return 0
        return max(len(p) for p in self._counts)

    def as_dict(self) -> Dict[Phrase, int]:
        """Return a copy of the underlying dictionary."""
        return dict(self._counts)
