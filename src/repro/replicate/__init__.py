"""Replicated ingestion and health-gated fleet rollout.

Two halves, both built on the serving layer's HTTP surface:

* :mod:`repro.replicate.shipping` — :class:`LogFollower` tails a primary's
  document-log manifest over ``/v1/log/manifest`` + ``/v1/log/shard/<name>``
  and replays appends into a local :class:`~repro.stream.log.DocumentLog`
  with resumable byte offsets, SHA-256 verification of every fetched
  range, and capped exponential backoff on every network call.  A caught-up
  replica's log is byte-identical to the primary's snapshot.
* :mod:`repro.replicate.rollout` — :class:`RolloutCoordinator` promotes a
  published ``model-vNNNNN.npz`` across a serve fleet canary-first, gating
  each step on live health checks (``/healthz`` + ``/v1/models`` + a real
  ``/v1/infer``), and rolls back automatically when the canary fails.

See ``docs/replication.md`` for the shipping protocol, the rollout state
machine, and the fault matrix both are tested against.
"""

from repro.replicate.rollout import (
    ROLLOUT_STATES,
    RolloutCoordinator,
    RolloutError,
    RolloutReport,
    RolloutTarget,
    TargetReport,
)
from repro.replicate.shipping import (
    LogFollower,
    ReplicationError,
    SyncReport,
)

__all__ = [
    "LogFollower",
    "ROLLOUT_STATES",
    "ReplicationError",
    "RolloutCoordinator",
    "RolloutError",
    "RolloutReport",
    "RolloutTarget",
    "SyncReport",
    "TargetReport",
]
