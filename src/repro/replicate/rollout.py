"""Canary-first, health-gated model rollout with automatic rollback.

A :class:`RolloutCoordinator` promotes one published ``model-vNNNNN.npz``
across a fleet of serve targets.  Each target is a (name, URL,
publish-path) triple: the coordinator atomically replaces the target's
watched ``current.npz`` with the new version bundle, then gates on the
target actually *serving* it — ``/healthz`` answering ``ok``,
``/v1/models`` listing the bundle without an error (and, when the version
is derivable from the file name, reporting the expected
``stream_version``), and one live ``/v1/infer`` probe returning a valid
mixture.  The canary target is promoted and verified first; only then
does the coordinator fan out.  Any failure rolls every already-promoted
target back to its previous bytes and re-verifies the fleet, so
``/v1/models`` stays coherent throughout: the fleet is either entirely on
the old version or entirely on the new one when the dust settles.

State and promotion lag are exported through the standard metric
families: ``rollout_state`` (gauge), ``rollout_promotions_total`` /
``rollout_rollbacks_total`` (counters), and ``rollout_promote_seconds``
(publish-to-healthy histogram per target).
"""

from __future__ import annotations

import os
import re
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.logging import log_event
from repro.obs.tracing import new_request_id
from repro.serve.client import ServeClient, ServeError
from repro.utils.timing import MetricsRegistry

#: Numeric encoding of the coordinator state machine, exported as the
#: ``rollout_state`` gauge (idle → canary → fanout → done | rolled_back).
ROLLOUT_STATES: Dict[str, int] = {
    "idle": 0, "canary": 1, "fanout": 2, "done": 3, "rolled_back": 4}

_VERSION_RE = re.compile(r"model-v(\d+)\.npz$")
_BACKUP_SUFFIX = ".rollback"


class RolloutError(Exception):
    """The rollout could not complete (the report carries the details)."""


@dataclass(frozen=True)
class RolloutTarget:
    """One serve instance under rollout control.

    Attributes
    ----------
    name:
        Stable label used in reports and log events.
    url:
        The target server's base URL.
    publish_path:
        The bundle path this target's registry watches (its
        ``current.npz``); publishing atomically replaces this file.
    """

    name: str
    url: str
    publish_path: str

    @classmethod
    def parse(cls, spec: str) -> "RolloutTarget":
        """Parse a CLI ``name=url=publish_path`` triple."""
        parts = spec.split("=", 2)
        if len(parts) != 3 or not all(parts):
            raise ValueError(
                f"target spec must be name=url=publish_path, got {spec!r}")
        return cls(name=parts[0], url=parts[1], publish_path=parts[2])


@dataclass
class TargetReport:
    """Per-target outcome inside a :class:`RolloutReport`."""

    name: str
    promoted: bool = False
    healthy: bool = False
    rolled_back: bool = False
    seconds: float = 0.0
    error: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form for JSON reports."""
        return {"name": self.name, "promoted": self.promoted,
                "healthy": self.healthy, "rolled_back": self.rolled_back,
                "seconds": round(self.seconds, 4), "error": self.error}


@dataclass
class RolloutReport:
    """Outcome of one :meth:`RolloutCoordinator.rollout` run."""

    version_path: str
    state: str = "idle"
    targets: List[TargetReport] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        """Whether every target ended up serving the new version."""
        return self.state == "done"

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form for JSON reports."""
        return {"version_path": self.version_path, "state": self.state,
                "succeeded": self.succeeded,
                "targets": [entry.as_dict() for entry in self.targets]}


class RolloutCoordinator:
    """Promotes a model version across serve targets, canary-first.

    Parameters
    ----------
    targets:
        The fleet; the canary is the entry named by ``canary`` (default:
        the first target).
    canary:
        Name of the canary target.
    health_timeout:
        Wall-clock budget (seconds) for each target to pass its health
        gate after publish.
    poll_interval:
        Delay between health-gate probes within the budget.
    probe_documents:
        Documents sent in the live ``/v1/infer`` canary probe.
    metrics:
        Optional registry for the ``rollout_*`` families.
    client_timeout:
        Socket timeout for every probe HTTP call.
    slo_gate:
        When true, the health gate additionally rejects a target whose
        ``/healthz`` reply carries an SLO verdict with status
        ``"breach"`` (both burn windows over budget) — a promotion then
        only lands on targets that are not actively burning error
        budget.  Targets without metrics history (no ``slo`` field in
        the reply) pass the gate unchanged.
    """

    def __init__(self, targets: List[RolloutTarget], *,
                 canary: Optional[str] = None,
                 health_timeout: float = 30.0,
                 poll_interval: float = 0.1,
                 probe_documents: Optional[List[str]] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 client_timeout: float = 30.0,
                 slo_gate: bool = False) -> None:
        if not targets:
            raise ValueError("rollout needs at least one target")
        names = [target.name for target in targets]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate target names: {names}")
        if health_timeout <= 0 or poll_interval <= 0:
            raise ValueError("health_timeout and poll_interval must be > 0")
        canary = canary or targets[0].name
        if canary not in names:
            raise ValueError(f"canary {canary!r} is not a target: {names}")
        self.targets = list(targets)
        self.canary_name = canary
        self.health_timeout = health_timeout
        self.poll_interval = poll_interval
        self.probe_documents = list(
            probe_documents or ["data mining query processing"])
        self.metrics = metrics or MetricsRegistry()
        self.client_timeout = client_timeout
        self.slo_gate = slo_gate
        #: ``X-Request-Id`` of the rollout in flight: one id is minted per
        #: :meth:`rollout` and stamped on every probe HTTP call and every
        #: ``rollout_*`` log event, so target-side access logs and the
        #: coordinator's own events correlate end to end.
        self.request_id: Optional[str] = None
        self._set_state("idle")

    # -- plumbing ----------------------------------------------------------------------
    def _set_state(self, state: str) -> None:
        self.state = state
        self.metrics.set_gauge("rollout_state", ROLLOUT_STATES[state])
        log_event("rollout_state", state=state, request_id=self.request_id)

    def _client(self, target: RolloutTarget) -> ServeClient:
        headers = {"X-Request-Id": self.request_id} \
            if self.request_id is not None else None
        return ServeClient(target.url, timeout=self.client_timeout,
                           retries=2, retry_delay=0.05,
                           extra_headers=headers)

    def _publish(self, target: RolloutTarget, version_path: Path) -> None:
        """Atomically land the version bundle on the target's publish path.

        The previous bytes are preserved next to the publish path (the
        ``.rollback`` file) until the rollout either completes or restores
        them.
        """
        publish = Path(target.publish_path)
        publish.parent.mkdir(parents=True, exist_ok=True)
        backup = publish.with_name(publish.name + _BACKUP_SUFFIX)
        if publish.exists():
            shutil.copyfile(publish, backup)
        elif backup.exists():
            backup.unlink()
        temporary = publish.with_name(publish.name + ".tmp")
        shutil.copyfile(version_path, temporary)
        os.replace(temporary, publish)

    def _restore(self, target: RolloutTarget) -> None:
        """Put the previous bytes back on the target's publish path."""
        publish = Path(target.publish_path)
        backup = publish.with_name(publish.name + _BACKUP_SUFFIX)
        if backup.exists():
            os.replace(backup, publish)
        else:  # first deploy: there was nothing before, remove the bundle
            publish.unlink(missing_ok=True)

    def _discard_backup(self, target: RolloutTarget) -> None:
        publish = Path(target.publish_path)
        backup = publish.with_name(publish.name + _BACKUP_SUFFIX)
        backup.unlink(missing_ok=True)

    def _probe(self, target: RolloutTarget,
               expect_version: Optional[int]) -> Optional[str]:
        """One health-gate probe; returns ``None`` when healthy.

        The gate is end-to-end: liveness, a coherent ``/v1/models`` entry
        (no load error, expected stream version when known), and a live
        ``/v1/infer`` that actually folds documents into the bundle.
        """
        client = self._client(target)
        try:
            health = client.health()
            if health.get("status") != "ok":
                return f"status {health.get('status')!r}"
            if self.slo_gate:
                breaching = [verdict.get("name", "?")
                             for verdict in health.get("slo") or []
                             if verdict.get("status") == "breach"]
                if breaching:
                    return f"SLO breach: {', '.join(sorted(breaching))}"
            models = client.models()
            if not models:
                return "no models registered"
            entry = models[0]
            if entry.get("error"):
                return f"model error: {entry['error']}"
            if expect_version is not None:
                found = entry.get("metadata", {}).get("stream_version")
                if found != expect_version:
                    return (f"stream_version {found!r}, "
                            f"expected {expect_version}")
            reply = client.infer(self.probe_documents, seed=7, iterations=5)
            document = reply.get("documents", [{}])[0]
            if not document.get("theta"):
                return "infer probe returned no mixture"
        except ServeError as exc:
            return str(exc)
        return None

    def _verify(self, target: RolloutTarget,
                expect_version: Optional[int]) -> TargetReport:
        """Poll the health gate until it passes or the budget runs out."""
        report = TargetReport(name=target.name)
        started = time.monotonic()
        deadline = started + self.health_timeout
        while True:
            failure = self._probe(target, expect_version)
            report.seconds = time.monotonic() - started
            if failure is None:
                report.healthy = True
                self.metrics.observe("rollout_promote_seconds",
                                     report.seconds)
                return report
            if time.monotonic() >= deadline:
                report.error = failure
                return report
            time.sleep(self.poll_interval)

    # -- public API --------------------------------------------------------------------
    def rollout(self, version_path: Union[str, Path]) -> RolloutReport:
        """Promote ``version_path`` across the fleet, canary-first.

        Returns a :class:`RolloutReport` whose ``state`` ends at ``done``
        (every target healthy on the new version) or ``rolled_back``
        (every promoted target restored to its previous bytes and
        re-verified).  Raises :class:`RolloutError` only when the version
        file itself is unusable.
        """
        version_path = Path(version_path)
        if not version_path.is_file():
            raise RolloutError(f"version bundle not found: {version_path}")
        self.request_id = new_request_id()
        expect = self._version_of(version_path)
        report = RolloutReport(version_path=str(version_path))
        canary = next(t for t in self.targets if t.name == self.canary_name)
        rest = [t for t in self.targets if t.name != self.canary_name]
        promoted: List[RolloutTarget] = []

        self._set_state("canary")
        failed: Optional[TargetReport] = None
        for stage, target in [("canary", canary)] + \
                [("fanout", t) for t in rest]:
            if stage == "fanout" and self.state != "fanout":
                self._set_state("fanout")
            self._publish(target, version_path)
            promoted.append(target)
            target_report = self._verify(target, expect)
            target_report.promoted = True
            report.targets.append(target_report)
            log_event("rollout_target", target=target.name, stage=stage,
                      healthy=target_report.healthy,
                      seconds=round(target_report.seconds, 4),
                      error=target_report.error,
                      request_id=self.request_id)
            if not target_report.healthy:
                failed = target_report
                break
            self.metrics.increment("rollout_promotions_total")

        if failed is None:
            for target in self.targets:
                self._discard_backup(target)
            self._set_state("done")
            report.state = self.state
            return report

        # Roll every promoted target back to its previous bytes, then
        # re-verify the fleet is coherent on the old version.
        self.metrics.increment("rollout_rollbacks_total")
        for target in promoted:
            self._restore(target)
        for target in promoted:
            entry = next((t for t in report.targets
                          if t.name == target.name), None)
            restored = self._verify(target, expect_version=None)
            if entry is not None:
                entry.rolled_back = True
                entry.healthy = restored.healthy
                if restored.error:
                    entry.error = (entry.error or "") + \
                        f"; rollback verify failed: {restored.error}"
        self._set_state("rolled_back")
        report.state = self.state
        return report

    @staticmethod
    def _version_of(version_path: Path) -> Optional[int]:
        """Stream version encoded in a ``model-vNNNNN.npz`` file name."""
        match = _VERSION_RE.search(version_path.name)
        return int(match.group(1)) if match else None


__all__ = ["ROLLOUT_STATES", "RolloutCoordinator", "RolloutError",
           "RolloutReport", "RolloutTarget", "TargetReport"]
