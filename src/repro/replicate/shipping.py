"""Log shipping: a replica that tails a primary's document log over HTTP.

The primary's :class:`~repro.stream.log.DocumentLog` is append-only with
immutable shards, which makes replication a pull problem: a
:class:`LogFollower` fetches the manifest (served verbatim, so byte
equality is well defined), fetches each missing shard as resumable byte
ranges, verifies every range against the ``X-Content-SHA256`` the primary
computed, pins the assembled file against the primary's full-file digest
*and* the manifest's per-document hashes/offsets, and only then renames it
into place and commits it to the local manifest — the commit order
guarantees a torn manifest can never exist, and a SIGKILL at any point
leaves state the next sync resumes from.

Every network call goes through one capped-exponential-backoff
:class:`~repro.utils.retry.RetryPolicy`; retries, shipped bytes,
verification failures, and the replica's document lag are exported through
the standard :mod:`repro.obs` metric families (``shipping_*`` and
``replica_lag_docs``).
"""

from __future__ import annotations

import hashlib
import http.client
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.obs.logging import log_event
from repro.obs.tracing import new_request_id
from repro.serve.client import ServeClient, ServeError
from repro.stream.log import DocumentLog, ShardInfo, StreamLogError, _hash_text
from repro.utils.retry import RetryPolicy
from repro.utils.timing import MetricsRegistry

#: Exceptions a network fetch may surface that warrant a backoff + retry.
RETRYABLE_FETCH_ERRORS = (ServeError, OSError, http.client.HTTPException)


class ReplicationError(Exception):
    """Shipping failed in a way retries cannot fix (divergence, bad data)."""


@dataclass
class SyncReport:
    """Outcome of one :meth:`LogFollower.sync_once` cycle.

    Attributes
    ----------
    n_shards_fetched:
        Shards fetched, verified, and committed during this cycle.
    n_documents_fetched:
        Documents those shards added to the replica.
    n_bytes_fetched:
        Shard bytes fetched over HTTP (excluding retried ranges).
    primary_documents:
        The primary's document count per the manifest snapshot synced to.
    lag_documents:
        ``primary_documents`` minus the replica's count after the cycle
        (0 when fully caught up to the snapshot).
    converged:
        Whether the replica's manifest file is now byte-identical to the
        manifest snapshot fetched at the start of the cycle.
    """

    n_shards_fetched: int = 0
    n_documents_fetched: int = 0
    n_bytes_fetched: int = 0
    primary_documents: int = 0
    lag_documents: int = 0
    converged: bool = False
    shards: List[str] = field(default_factory=list)


class LogFollower:
    """Tails a primary's document log into a local byte-identical replica.

    Parameters
    ----------
    primary_url:
        Base URL of the primary server (it must publish its log, i.e. run
        with ``ServeConfig.log_root`` set).
    root:
        Local replica directory; created as an empty
        :class:`~repro.stream.log.DocumentLog` when missing.
    chunk_bytes:
        Maximum bytes fetched per shard-range request (shards larger than
        this are assembled from several verified ranges, resuming at the
        partial file's size after any failure or restart).
    timeout:
        Per-attempt socket timeout for every HTTP call.
    retry:
        Backoff policy for network fetches.  The follower owns the retry
        loop (the underlying client is built with ``retries=0``) so every
        retry lands in ``shipping_retries_total``.
    metrics:
        Optional registry for the ``shipping_*`` / ``replica_lag_docs``
        families; a private one is created when omitted.
    on_shard:
        Optional callback invoked with each :class:`ShardInfo` right after
        it commits — the CLI prints progress from it, and chaos tests use
        it as a deterministic synchronization point.
    """

    def __init__(self, primary_url: str, root: Union[str, Path], *,
                 chunk_bytes: int = 1 << 18,
                 timeout: float = 10.0,
                 retry: Optional[RetryPolicy] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 client: Optional[ServeClient] = None,
                 on_shard: Optional[Callable[[ShardInfo], None]] = None
                 ) -> None:
        if chunk_bytes < 1:
            raise ValueError("chunk_bytes must be >= 1")
        self.primary_url = primary_url.rstrip("/")
        self.root = Path(root)
        self.chunk_bytes = chunk_bytes
        self.retry = retry or RetryPolicy(retries=5, base_delay=0.05,
                                          max_delay=2.0)
        self.metrics = metrics or MetricsRegistry()
        self.client = client or ServeClient(self.primary_url,
                                            timeout=timeout, retries=0)
        self.on_shard = on_shard
        #: The ``X-Request-Id`` of the sync cycle in flight (a fresh id is
        #: minted per :meth:`sync_once` and sent on every HTTP call of that
        #: cycle, so the primary's access metrics and this follower's
        #: ``shipping_*`` log events correlate end to end).
        self.request_id: Optional[str] = None

    # -- plumbing ----------------------------------------------------------------------
    def _fetch(self, what: str, func: Callable[[], Any]) -> Any:
        """Run one network call under the retry policy, counting retries."""
        def record_retry(attempt: int, exc: BaseException,
                         pause: float) -> None:
            self.metrics.increment("shipping_retries_total")
            log_event("shipping_retry", what=what, attempt=attempt,
                      pause_seconds=round(pause, 4), error=str(exc),
                      request_id=self.request_id)

        return self.retry.call(func, retry_on=RETRYABLE_FETCH_ERRORS,
                               token=f"{self.primary_url}:{what}",
                               on_retry=record_retry)

    def _open_log(self) -> DocumentLog:
        if DocumentLog.exists(self.root):
            return DocumentLog.open(self.root)
        return DocumentLog.create(self.root)

    def _fetch_manifest(self) -> Tuple[bytes, Dict[str, Any]]:
        """Fetch and verify the primary's manifest snapshot."""
        def fetch() -> Tuple[bytes, Dict[str, Any]]:
            body, headers = self.client.log_manifest()
            expected = headers.get("X-Content-SHA256")
            if expected and hashlib.sha256(body).hexdigest() != expected:
                self.metrics.increment("shipping_verify_failures_total")
                raise ServeError(0, "manifest bytes failed SHA-256 check")
            try:
                manifest = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                self.metrics.increment("shipping_verify_failures_total")
                raise ServeError(0, f"manifest is not JSON: {exc}") from exc
            return body, manifest

        body, manifest = self._fetch("manifest", fetch)
        if not isinstance(manifest, dict) \
                or manifest.get("format") != "repro.stream.log":
            raise ReplicationError(
                f"{self.primary_url} does not serve a repro.stream.log "
                f"manifest")
        return body, manifest

    def _check_prefix(self, log: DocumentLog,
                      primary_shards: List[ShardInfo]) -> None:
        """The local shards must be a prefix of the primary's sequence."""
        if len(log.shards) > len(primary_shards):
            raise ReplicationError(
                f"replica has {len(log.shards)} shards but the primary "
                f"manifest lists {len(primary_shards)} — divergent logs")
        for mine, theirs in zip(log.shards, primary_shards):
            if mine.as_dict() != theirs.as_dict():
                raise ReplicationError(
                    f"replica shard {mine.name} diverges from the "
                    f"primary's {theirs.name} — refusing to replicate")

    def _verify_shard_file(self, path: Path, shard: ShardInfo) -> bool:
        """Logically verify shard bytes against their manifest entry.

        Checks record count, per-record byte offsets, and per-document
        content hashes — together with the primary-side full-file digest
        this pins the file byte-for-byte.
        """
        try:
            data = path.read_bytes()
        except OSError:
            return False
        offsets: List[int] = []
        hashes: List[str] = []
        position = 0
        for line in data.split(b"\n"):
            if not line:
                continue
            offsets.append(position)
            position += len(line) + 1
            try:
                record = json.loads(line.decode("utf-8"))
                hashes.append(_hash_text(str(record["text"])))
            except (UnicodeDecodeError, json.JSONDecodeError, KeyError,
                    TypeError):
                return False
        return (len(hashes) == shard.n_documents
                and offsets == shard.offsets
                and hashes == shard.hashes
                and (not data or data.endswith(b"\n")))

    def _fetch_shard(self, log: DocumentLog, shard: ShardInfo) -> int:
        """Fetch one shard to disk, verified; returns bytes fetched.

        Resumable: ranges append to ``<shard>.jsonl.partial`` starting at
        its current size, so a killed follower re-fetches only the tail.
        The final rename happens only after every check passes — the
        shards directory never holds a torn committed file.
        """
        final = log.shard_file_path(shard.name)
        final.parent.mkdir(parents=True, exist_ok=True)
        if final.exists():
            # Crash window: renamed but not yet committed to the manifest.
            if self._verify_shard_file(final, shard):
                return 0
            final.unlink()  # torn leftover from a dead writer: refetch
        partial = final.with_name(final.name + ".partial")

        def fetch_range(offset: int) -> Tuple[bytes, int]:
            with self.metrics.timer("shipping_fetch_seconds"):
                body, headers = self.client.log_shard_range(
                    shard.name, offset=offset, length=self.chunk_bytes)
            digest = headers.get("X-Content-SHA256", "")
            if hashlib.sha256(body).hexdigest() != digest \
                    or int(headers.get("X-Content-Offset", -1)) != offset:
                self.metrics.increment("shipping_verify_failures_total")
                raise ServeError(0, f"shard {shard.name} range at offset "
                                    f"{offset} failed verification")
            return body, int(headers["X-Shard-Size"])

        fetched = 0
        while True:
            position = partial.stat().st_size if partial.exists() else 0
            body, size = self._fetch(f"shard:{shard.name}:{position}",
                                     lambda p=position: fetch_range(p))
            if body:
                with open(partial, "ab") as handle:
                    handle.write(body)
                    handle.flush()
                    os.fsync(handle.fileno())
                fetched += len(body)
                self.metrics.increment("shipping_bytes_total", len(body))
            if position + len(body) >= size:
                break
            if not body:
                raise ReplicationError(
                    f"shard {shard.name}: empty range at {position} but "
                    f"primary reports {size} bytes")

        remote = self._fetch(f"digest:{shard.name}",
                             lambda: self.client.log_shard_digest(shard.name))
        local_digest = hashlib.sha256(partial.read_bytes()).hexdigest()
        if local_digest != remote.get("sha256") \
                or not self._verify_shard_file(partial, shard):
            # Assembled bytes are wrong (e.g. the partial predates a
            # divergent restart): drop them so the next cycle refetches.
            self.metrics.increment("shipping_verify_failures_total")
            partial.unlink(missing_ok=True)
            raise ReplicationError(
                f"shard {shard.name}: assembled file failed digest or "
                f"manifest verification; partial discarded for refetch")
        os.replace(partial, final)
        return fetched

    # -- public API --------------------------------------------------------------------
    def sync_once(self) -> SyncReport:
        """Run one full sync cycle against the primary's current snapshot.

        Fetches the manifest, ships every missing shard (verified, one
        commit per shard), mirrors the manifest's ``extra`` section, and
        updates ``replica_lag_docs``.  Raises :class:`ReplicationError`
        on divergence or persistent verification failure; network errors
        out of retries surface as
        :class:`~repro.serve.client.ServeError`.
        """
        self.request_id = new_request_id()
        self.client.extra_headers["X-Request-Id"] = self.request_id
        with self.metrics.timer("shipping_sync_seconds"):
            manifest_bytes, manifest = self._fetch_manifest()
            primary_shards = [ShardInfo.from_dict(entry)
                              for entry in manifest.get("shards", [])]
            primary_extra = dict(manifest.get("extra", {}))
            primary_documents = int(manifest.get("n_documents", 0))
            log = self._open_log()
            self._check_prefix(log, primary_shards)

            report = SyncReport(primary_documents=primary_documents)
            for shard in primary_shards[len(log.shards):]:
                report.n_bytes_fetched += self._fetch_shard(log, shard)
                log.adopt_shard(shard)
                report.n_shards_fetched += 1
                report.n_documents_fetched += shard.n_documents
                report.shards.append(shard.name)
                self.metrics.increment("shipping_shards_total")
                self.metrics.set_gauge(
                    "replica_lag_docs",
                    max(0, primary_documents - log.n_documents))
                if self.on_shard is not None:
                    self.on_shard(shard)
            if log.extra != primary_extra:
                log.replace_extra(primary_extra)

            report.lag_documents = max(
                0, primary_documents - log.n_documents)
            self.metrics.set_gauge("replica_lag_docs", report.lag_documents)
            try:
                local_bytes = (self.root / "manifest.json").read_bytes()
            except OSError:
                local_bytes = b""
            report.converged = local_bytes == manifest_bytes
            return report

    def follow(self, poll_interval: float = 1.0,
               stop: Optional[threading.Event] = None,
               on_cycle: Optional[Callable[[SyncReport], None]] = None
               ) -> None:
        """Sync forever (until ``stop`` is set), backing off after errors.

        A failing cycle logs a structured ``shipping_error`` event and
        waits one (growing, capped) backoff delay instead of the poll
        interval; the first clean cycle resets the backoff.
        """
        if poll_interval <= 0:
            raise ValueError("poll_interval must be > 0")
        stop = stop or threading.Event()
        consecutive_errors = 0
        while not stop.is_set():
            try:
                report = self.sync_once()
            except (ReplicationError, ServeError, StreamLogError) as exc:
                consecutive_errors += 1
                log_event("shipping_error", primary=self.primary_url,
                          consecutive_errors=consecutive_errors,
                          error=str(exc), request_id=self.request_id)
                wait = max(self.retry.delay(
                    min(consecutive_errors, 16), token=self.primary_url),
                    poll_interval)
                stop.wait(wait)
                continue
            if consecutive_errors:
                log_event("shipping_recovered", primary=self.primary_url,
                          after_errors=consecutive_errors,
                          request_id=self.request_id)
                consecutive_errors = 0
            if on_cycle is not None:
                on_cycle(report)
            stop.wait(poll_interval)


def wait_for_lag_zero(follower: LogFollower, timeout: float = 30.0,
                      poll: float = 0.05) -> SyncReport:
    """Sync repeatedly until the follower converges (test/CLI helper).

    Polls with a wall-clock deadline rather than a fixed sleep count;
    raises :class:`TimeoutError` when the replica cannot converge in time.
    """
    deadline = time.monotonic() + timeout
    while True:
        report = follower.sync_once()
        if report.converged and report.lag_documents == 0:
            return report
        if time.monotonic() >= deadline:
            raise TimeoutError(
                f"replica at {follower.root} still lags "
                f"{report.lag_documents} documents after {timeout}s")
        time.sleep(poll)


__all__ = ["LogFollower", "ReplicationError", "SyncReport",
           "RETRYABLE_FETCH_ERRORS", "wait_for_lag_zero"]
