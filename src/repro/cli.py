"""The ``repro`` command line: the full ToPMine workflow from the shell.

The train-once / apply-many pipeline::

    python -m repro mine   --dataset dblp-titles --n-docs 400 --output seg.npz
    python -m repro fit    --segmentation seg.npz --topics 5 --output model.npz
    python -m repro topics --model model.npz
    python -m repro infer  --model model.npz --dataset dblp-titles --n-docs 20
    python -m repro serve  --model model.npz --port 8765
    python -m repro bench  --smoke

and the continuous counterpart (:mod:`repro.stream`)::

    python -m repro ingest  --stream stream/ --input docs.txt --topics 5
    python -m repro refresh --stream stream/
    python -m repro serve   --stream stream/ --port 8765
    python -m repro models  stream/models

and the replication / rollout layer on top (:mod:`repro.replicate`)::

    python -m repro replicate --primary http://127.0.0.1:8765 --root replica/
    python -m repro rollout --version stream/models/model-v00002.npz \\
        --target a=http://127.0.0.1:8765=srv-a/current.npz \\
        --target b=http://127.0.0.1:8766=srv-b/current.npz

``mine`` runs the phrase-mining half (Algorithm 1 + significance-guided
segmentation) and writes a segmentation bundle; ``fit`` runs PhraseLDA over
a saved segmentation (or mines inline when given a dataset) and writes a
model bundle; ``topics`` renders a saved model's topic tables; ``infer``
folds unseen documents into a saved model and reports their topic mixtures;
``serve`` exposes saved bundles over batched JSON-over-HTTP
(:mod:`repro.serve`) — with ``--stream`` it also watches a stream and
hot-swaps each newly published version in with zero downtime, and
publishes the stream's document log over ``/v1/log/*`` for replicas;
``ingest`` appends documents to a stream's log and absorbs their mining
statistics incrementally; ``refresh`` re-fits over the accumulated
snapshot and publishes a versioned bundle; ``models`` lists the bundles
in a directory; ``replicate`` tails a primary's log into a local
byte-identical replica; ``rollout`` promotes a published version across
a serve fleet canary-first with health-gated rollback; ``status``
renders a one-shot fleet health table from a live scrape; ``slo``
renders the declared SLOs' burn-rate verdicts from a live server;
``bench`` forwards to :mod:`repro.bench`.

Every subcommand accepts ``--smoke`` for a seconds-scale CI configuration,
and either ``--dataset`` (a registered synthetic corpus) or ``--input``
(a UTF-8 text file, one document per line; ``--input -`` reads JSONL
documents from stdin, so ``repro`` composes with the serve client and
shell pipelines).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
from pathlib import Path
from typing import List, Optional, Sequence

from repro.core.frequent_phrases import MINING_ENGINES
from repro.core.infer import INFERENCE_ENGINES, InferenceConfig
from repro.core.phrase_lda import PhraseLDA, PhraseLDAConfig
from repro.core.topmine import ToPMine, ToPMineConfig
from repro.datasets.registry import available_datasets, load_dataset
from repro.io.artifacts import (
    ArtifactError,
    ModelBundle,
    SegmentationBundle,
    load_model,
    load_segmentation,
    save_bundle,
)
from repro.topicmodel.gibbs import ENGINES, resolve_engine

# Smallest dblp-titles size at which the significance threshold produces a
# healthy number of multi-word phrase instances (so smoke runs exercise real
# cliques), while the whole mine→fit→infer chain stays seconds-scale.
_SMOKE_DOCS = 600
_SMOKE_INFER_DOCS = 20


def _parse_jsonl_documents(lines: List[str], source: str) -> List[str]:
    """Decode JSONL document lines: each a JSON string or ``{"text": ...}``."""
    texts: List[str] = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SystemExit(
                f"error: {source} line {number} is not valid JSON ({exc}); "
                f"expected JSONL — one JSON string or object with a "
                f"\"text\" field per line")
        if isinstance(record, str):
            texts.append(record)
        elif isinstance(record, dict) and isinstance(record.get("text"), str):
            texts.append(record["text"])
        else:
            raise SystemExit(
                f"error: {source} line {number} must be a JSON string or an "
                f"object with a string \"text\" field, got: {line.strip()[:80]}")
    return texts


def _read_texts(args: argparse.Namespace, default_docs: Optional[int] = None,
                seed_offset: int = 0) -> tuple[List[str], str]:
    """Resolve ``--input``/``--dataset`` into raw texts plus a source name."""
    if getattr(args, "input", None):
        if args.input == "-":
            texts = _parse_jsonl_documents(sys.stdin.read().splitlines(),
                                           "stdin")
            if not texts:
                raise SystemExit("error: stdin contained no documents")
            return texts, "stdin"
        path = Path(args.input)
        if not path.exists():
            raise SystemExit(f"error: input file not found: {path}")
        texts = [line.strip() for line in
                 path.read_text(encoding="utf-8").splitlines() if line.strip()]
        if not texts:
            raise SystemExit(f"error: {path} contains no documents")
        return texts, path.stem
    dataset = args.dataset or "dblp-titles"
    n_docs = args.n_docs
    if getattr(args, "smoke", False) and n_docs is None:
        n_docs = default_docs
    generated = load_dataset(dataset, n_documents=n_docs,
                             seed=args.seed + seed_offset)
    return generated.texts, dataset


def _add_source_options(parser: argparse.ArgumentParser) -> None:
    """Attach the shared text-source options (dataset or file)."""
    source = parser.add_argument_group("text source")
    source.add_argument("--dataset", default=None,
                        choices=available_datasets(),
                        help="registered synthetic dataset (default: dblp-titles)")
    source.add_argument("--n-docs", type=int, default=None,
                        help="number of documents to generate "
                             "(default: the dataset's own size)")
    source.add_argument("--input", metavar="FILE", default=None,
                        help="read raw documents from FILE instead "
                             "(UTF-8, one document per line); pass '-' to "
                             "read JSONL from stdin — one JSON string or "
                             "object with a \"text\" field per line")


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level ``repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ToPMine end to end: mine phrases, fit PhraseLDA, "
                    "save model bundles, and fold in unseen documents.")
    sub = parser.add_subparsers(dest="command", metavar="COMMAND")

    mine = sub.add_parser(
        "mine", help="run phrase mining + segmentation, save a segmentation bundle",
        description="Run the phrase-mining half of ToPMine (Algorithm 1 and "
                    "significance-guided segmentation) and save the result "
                    "as a reusable segmentation bundle.")
    _add_source_options(mine)
    mine.add_argument("--min-support", type=int, default=None,
                      help="minimum phrase support ε (default: scaled to "
                           "corpus size)")
    mine.add_argument("--threshold", type=float, default=None,
                      help="merge-significance threshold α (default: 5.0)")
    mine.add_argument("--max-phrase-length", type=int, default=None,
                      help="cap on mined/constructed phrase length")
    mine.add_argument("--engine", dest="mining_engine", default="auto",
                      choices=MINING_ENGINES,
                      help="mining/segmentation engine (default: auto — "
                           "the vectorized numpy path; all engines are "
                           "bit-identical)")
    mine.add_argument("--jobs", type=int, default=1,
                      help="segmentation worker processes (default: 1; "
                           "results are identical for any value)")
    mine.add_argument("--seed", type=int, default=7,
                      help="dataset generation seed (default: 7)")
    mine.add_argument("--output", "-o", metavar="PATH", required=True,
                      help="where to write the segmentation bundle (.npz)")
    mine.add_argument("--smoke", action="store_true",
                      help=f"tiny CI configuration ({_SMOKE_DOCS} documents)")
    mine.set_defaults(func=cmd_mine)

    fit = sub.add_parser(
        "fit", help="fit PhraseLDA over a segmentation, save a model bundle",
        description="Fit PhraseLDA (collapsed Gibbs with phrase cliques) "
                    "over a saved segmentation bundle — or mine inline from "
                    "a dataset/file — and save the fitted model bundle.")
    fit.add_argument("--segmentation", metavar="PATH", default=None,
                     help="segmentation bundle written by `repro mine` "
                          "(omit to mine inline from the text source)")
    _add_source_options(fit)
    fit.add_argument("--min-support", type=int, default=None,
                     help="inline mining: minimum phrase support ε")
    fit.add_argument("--threshold", type=float, default=None,
                     help="inline mining: significance threshold α "
                          "(default: 5.0)")
    fit.add_argument("--max-phrase-length", type=int, default=None,
                     help="inline mining: cap on mined/constructed phrase "
                          "length")
    fit.add_argument("--topics", "-k", type=int, default=None,
                     help="number of topics K (default: 10; 5 with --smoke)")
    fit.add_argument("--iterations", type=int, default=None,
                     help="Gibbs sweeps (default: 100; 20 with --smoke)")
    fit.add_argument("--alpha", type=float, default=None,
                     help="document-topic prior (default: 50/K)")
    fit.add_argument("--beta", type=float, default=0.01,
                     help="topic-word prior (default: 0.01)")
    fit.add_argument("--engine", default="auto", choices=ENGINES,
                     help="sampling engine (default: auto)")
    fit.add_argument("--optimize-hyperparameters", action="store_true",
                     help="enable Minka fixed-point hyper-parameter updates")
    fit.add_argument("--seed", type=int, default=7,
                     help="sampler (and inline-mining) seed (default: 7)")
    fit.add_argument("--output", "-o", metavar="PATH", required=True,
                     help="where to write the model bundle (.npz)")
    fit.add_argument("--smoke", action="store_true",
                     help="tiny CI configuration (5 topics, 20 sweeps)")
    fit.set_defaults(func=cmd_fit)

    topics = sub.add_parser(
        "topics", help="render a saved model's topic tables",
        description="Load a model bundle and print the per-topic unigram "
                    "and topical-phrase tables (paper Tables 1, 4-6).")
    topics.add_argument("--model", metavar="PATH", required=True,
                        help="model bundle written by `repro fit`")
    topics.add_argument("--n", type=int, default=10,
                        help="rows per topic (default: 10)")
    topics.add_argument("--title", default=None, help="table title")
    topics.set_defaults(func=cmd_topics)

    infer = sub.add_parser(
        "infer", help="fold unseen documents into a saved model",
        description="Segment unseen documents with the model's frozen "
                    "phrase table and Gibbs-fold them in to estimate topic "
                    "mixtures, without retraining.")
    infer.add_argument("--model", metavar="PATH", default=None,
                       help="model bundle written by `repro fit` (with "
                            "--url: the server-side model NAME instead; "
                            "optional when the server hosts exactly one)")
    infer.add_argument("--url", metavar="URL", default=None,
                       help="fold in through a running `repro serve` at "
                            "URL instead of loading the bundle locally; "
                            "failures print the server's request id")
    _add_source_options(infer)
    infer.add_argument("--iterations", type=int, default=None,
                       help="fold-in Gibbs sweeps (default: 50; 10 with --smoke)")
    infer.add_argument("--engine", default="auto", choices=INFERENCE_ENGINES,
                       help="fold-in engine (default: auto)")
    infer.add_argument("--seed", type=int, default=7,
                       help="fold-in seed (default: 7)")
    infer.add_argument("--top", type=int, default=3,
                       help="top topics reported per document (default: 3)")
    infer.add_argument("--show", type=int, default=5,
                       help="documents echoed to stdout (default: 5)")
    infer.add_argument("--output", "-o", metavar="PATH", default=None,
                       help="write full topic mixtures as JSON to PATH")
    infer.add_argument("--smoke", action="store_true",
                       help=f"tiny CI configuration ({_SMOKE_INFER_DOCS} "
                            f"documents, 10 sweeps)")
    infer.set_defaults(func=cmd_infer)

    ingest = sub.add_parser(
        "ingest", help="append documents to a topic stream (incremental)",
        description="Append a document batch to a stream's append-only "
                    "log (deduplicated by content hash) and absorb its "
                    "mining statistics incrementally — old documents are "
                    "never re-read. The first ingest creates the stream "
                    "and freezes its model configuration.")
    ingest.add_argument("--stream", metavar="DIR", required=True,
                        help="stream directory (created on first ingest)")
    _add_source_options(ingest)
    ingest.add_argument("--source", default=None,
                        help="provenance label stored on the shard "
                             "(default: the dataset/file name)")
    ingest.add_argument("--seed", type=int, default=7,
                        help="dataset generation seed (default: 7); vary it "
                             "per batch to ingest distinct documents")
    creation = ingest.add_argument_group(
        "stream configuration (first ingest only — frozen afterwards)")
    creation.add_argument("--topics", "-k", type=int, default=None,
                          help="number of topics K (default: 10; 5 with "
                               "--smoke)")
    creation.add_argument("--iterations", type=int, default=None,
                          help="Gibbs sweeps per refresh (default: 100; 20 "
                               "with --smoke)")
    creation.add_argument("--alpha", type=float, default=None,
                          help="document-topic prior (default: 50/K)")
    creation.add_argument("--beta", type=float, default=None,
                          help="topic-word prior (default: 0.01)")
    creation.add_argument("--min-support", type=int, default=None,
                          help="minimum phrase support ε (default: rescaled "
                               "to the snapshot size every refresh)")
    creation.add_argument("--threshold", type=float, default=None,
                          help="merge-significance threshold α (default: 5.0)")
    creation.add_argument("--max-phrase-length", type=int, default=None,
                          help="cap on mined/constructed phrase length")
    creation.add_argument("--engine", default=None, choices=MINING_ENGINES,
                          help="mining/segmentation engine (default: auto)")
    creation.add_argument("--lda-engine", default=None, choices=ENGINES,
                          help="PhraseLDA engine for refreshes "
                               "(default: auto)")
    creation.add_argument("--model-seed", type=int, default=None,
                          help="seed every refresh runs with (default: 7)")
    creation.add_argument("--refresh-every", type=int, default=None,
                          help="refresh policy: minimum pending documents "
                               "before a (non-forced) refresh (default: 1)")
    ingest.add_argument("--refresh", action="store_true",
                        help="run a refresh after ingesting (honours the "
                             "refresh policy)")
    ingest.add_argument("--smoke", action="store_true",
                        help=f"tiny CI configuration ({_SMOKE_DOCS} "
                             f"documents, small model)")
    ingest.set_defaults(func=cmd_ingest)

    refresh = sub.add_parser(
        "refresh", help="re-fit a topic stream and publish a new version",
        description="Re-run segmentation + PhraseLDA deterministically over "
                    "the stream's accumulated snapshot (reusing the merged "
                    "mining statistics) and publish the fitted bundle as a "
                    "new version — models/current.npz is replaced "
                    "atomically, so live servers hot-swap with no restart.")
    refresh.add_argument("--stream", metavar="DIR", required=True,
                         help="stream directory")
    refresh.add_argument("--force", action="store_true",
                         help="refresh even when the policy is not "
                              "satisfied (still requires ingested documents)")
    refresh.set_defaults(func=cmd_refresh)

    models = sub.add_parser(
        "models", help="list the artifact bundles in a directory",
        description="Describe every *.npz bundle in DIRECTORY from its "
                    "embedded manifest (kind, schema version, size, mtime) "
                    "without loading any array payloads — e.g. to watch a "
                    "stream's models/ directory fill with published "
                    "versions.")
    models.add_argument("directory", nargs="?", default=".",
                        help="directory to scan (default: current)")
    models.add_argument("--json", action="store_true",
                        help="emit the listing as JSON instead of a table")
    models.set_defaults(func=cmd_models)

    serve = sub.add_parser(
        "serve", help="serve saved bundles over batched JSON-over-HTTP",
        description="Start the repro.serve model server: load bundle(s) "
                    "into a hot-reloading registry and answer /healthz, "
                    "/metrics, /v1/models, /v1/infer (micro-batched "
                    "fold-in), /v1/segment, and /v1/topics. With --stream, "
                    "also watch a topic stream and hot-swap each newly "
                    "published version in with zero downtime. With "
                    "--workers N, run a fleet of N worker processes behind "
                    "one SO_REUSEPORT address, sharing model memory "
                    "through read-only mmaps. Runs until interrupted "
                    "(Ctrl-C stops it cleanly).")
    serve.add_argument("--model", metavar="[NAME=]PATH", action="append",
                       default=[],
                       help="bundle to serve; repeatable. NAME defaults to "
                            "the file stem")
    serve.add_argument("--models-dir", metavar="DIR", default=None,
                       help="also serve every *.npz bundle in DIR "
                            "(named by file stem)")
    serve.add_argument("--stream", metavar="DIR", default=None,
                       help="serve a topic stream's published model "
                            "(DIR/models/current.npz, named after DIR) and "
                            "auto-refresh it in the background as new "
                            "documents are ingested")
    serve.add_argument("--stream-poll", type=float, default=2.0,
                       metavar="SECONDS",
                       help="how often the stream supervisor polls for "
                            "newly ingested documents (default: 2)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="bind port; 0 picks a free one (default: 8765)")
    serve.add_argument("--capacity", type=int, default=4,
                       help="max bundles resident at once; least-recently "
                            "used are evicted (default: 4)")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="micro-batch size cap for /v1/infer (default: 32)")
    serve.add_argument("--batch-delay-ms", type=float, default=5.0,
                       help="micro-batch window in milliseconds (default: 5)")
    serve.add_argument("--iterations", type=int, default=50,
                       help="default fold-in sweeps per /v1/infer request "
                            "(default: 50)")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes serving the port via "
                            "SO_REUSEPORT; model arrays are mmap-shared "
                            "across them (default: 1 — in-process server)")
    serve.add_argument("--metrics-dir", metavar="DIR", default=None,
                       help="directory for per-worker metric shard files; "
                            "a fleet provisions a temporary one when unset, "
                            "pin it to survive supervisor restarts or to "
                            "scrape from other tooling")
    serve.add_argument("--slow-request-seconds", type=float, default=None,
                       metavar="SECONDS",
                       help="log a structured JSON event (with request id "
                            "and per-span timings) for any request slower "
                            "than SECONDS (default: off)")
    serve.add_argument("--history-interval", type=float, default=5.0,
                       metavar="SECONDS",
                       help="seconds between metrics-history samples (the "
                            "frames SLO burn rates and `repro slo` are "
                            "evaluated over; default: 5)")
    serve.add_argument("--profile-dir", metavar="DIR", default=None,
                       help="with --stream: profile every background "
                            "refresh and write its collapsed-stack "
                            "flamegraph text to DIR")
    serve.set_defaults(func=cmd_serve)

    status = sub.add_parser(
        "status", help="one-shot fleet + stream health from a live server",
        description="Scrape a running `repro serve` once (/healthz, "
                    "/metrics, /v1/models) and render a fleet health "
                    "table: per-worker and fleet-total request counters, "
                    "per-span latency, model publish/swap lag, and stream "
                    "ingest/refresh counters. Works against a single "
                    "server or a --workers fleet — any worker's scrape "
                    "describes the whole fleet.")
    status.add_argument("--url", default="http://127.0.0.1:8765",
                        help="server base URL "
                             "(default: http://127.0.0.1:8765)")
    status.add_argument("--timeout", type=float, default=5.0,
                        help="per-request timeout in seconds (default: 5)")
    status.add_argument("--json", action="store_true",
                        help="emit the report as JSON instead of tables")
    status.add_argument("--slo", action="store_true",
                        help="include the SLO burn-rate table (requires "
                             "the server to record metrics history)")
    status.set_defaults(func=cmd_status)

    slo = sub.add_parser(
        "slo", help="burn-rate verdicts of the declared SLOs, from a live "
                    "server",
        description="Fetch /healthz from a running `repro serve` and "
                    "render each declared SLO's observed value, fast/slow "
                    "burn rates, and status — evaluated server-side over "
                    "the metrics history, so the server must run with a "
                    "metrics directory (any --workers fleet does) and "
                    "have recorded at least two history frames. Exits 1 "
                    "when any SLO is in breach.")
    slo.add_argument("--url", default="http://127.0.0.1:8765",
                     help="server base URL (default: http://127.0.0.1:8765)")
    slo.add_argument("--timeout", type=float, default=5.0,
                     help="per-request timeout in seconds (default: 5)")
    slo.add_argument("--json", action="store_true",
                     help="emit the verdicts as JSON instead of a table")
    slo.add_argument("--watch", action="store_true",
                     help="re-render every --interval seconds until Ctrl-C")
    slo.add_argument("--interval", type=float, default=2.0,
                     metavar="SECONDS",
                     help="refresh period with --watch (default: 2)")
    slo.set_defaults(func=cmd_slo)

    replicate = sub.add_parser(
        "replicate", help="tail a primary's document log into a local replica",
        description="Run a log follower against a `repro serve` primary "
                    "that publishes its log (serve --stream does): fetch "
                    "the shard manifest over HTTP, ship every missing "
                    "shard as SHA-256-verified byte ranges, and commit "
                    "them into a local byte-identical document log. "
                    "Resumes from partial files after any interruption. "
                    "With --once, runs a single sync cycle and exits; "
                    "otherwise follows until Ctrl-C or SIGTERM.")
    replicate.add_argument("--primary", metavar="URL", required=True,
                           help="base URL of the primary server")
    replicate.add_argument("--root", metavar="DIR", required=True,
                           help="local replica log directory (created when "
                                "missing)")
    replicate.add_argument("--once", action="store_true",
                           help="run one sync cycle and exit (exit code 1 "
                                "when not yet converged)")
    replicate.add_argument("--poll", type=float, default=1.0,
                           metavar="SECONDS",
                           help="seconds between sync cycles when "
                                "following (default: 1)")
    replicate.add_argument("--timeout", type=float, default=10.0,
                           metavar="SECONDS",
                           help="per-attempt HTTP timeout (default: 10)")
    replicate.add_argument("--chunk-bytes", type=int, default=1 << 18,
                           metavar="BYTES",
                           help="max bytes per shard-range fetch "
                                "(default: 262144)")
    replicate.add_argument("--json", action="store_true",
                           help="with --once: emit the sync report as JSON")
    replicate.set_defaults(func=cmd_replicate)

    rollout = sub.add_parser(
        "rollout", help="promote a model version across a fleet, canary-first",
        description="Promote a published model-vNNNNN.npz across serve "
                    "targets: publish to the canary first, gate on its "
                    "health (/healthz + /v1/models + a live /v1/infer "
                    "probe), then fan out to the rest. Any failure rolls "
                    "every promoted target back to its previous bundle "
                    "and re-verifies the fleet. Exits nonzero unless "
                    "every target ended healthy on the new version.")
    rollout.add_argument("--version", metavar="PATH", required=True,
                         help="the version bundle to promote")
    rollout.add_argument("--target", metavar="NAME=URL=PUBLISH_PATH",
                         action="append", required=True,
                         help="a serve target: its label, base URL, and "
                              "the bundle path its registry watches; "
                              "repeatable")
    rollout.add_argument("--canary", metavar="NAME", default=None,
                         help="target promoted and verified first "
                              "(default: the first --target)")
    rollout.add_argument("--health-timeout", type=float, default=30.0,
                         metavar="SECONDS",
                         help="per-target budget to pass the health gate "
                              "(default: 30)")
    rollout.add_argument("--poll-interval", type=float, default=0.1,
                         metavar="SECONDS",
                         help="delay between health probes (default: 0.1)")
    rollout.add_argument("--slo-gate", action="store_true",
                         help="also fail a target's health gate while its "
                              "/healthz reports an SLO in breach (targets "
                              "without metrics history pass unchanged)")
    rollout.add_argument("--json", action="store_true",
                         help="emit the rollout report as JSON")
    rollout.set_defaults(func=cmd_rollout)

    # `bench` is listed here purely for --help discoverability; main()
    # intercepts it before parsing and forwards the raw argument tail to
    # repro.bench (whose parser owns all bench options, including --help).
    sub.add_parser(
        "bench", help="run the benchmark harness (repro.bench)",
        description="Forward all remaining arguments to `python -m repro.bench`.",
        add_help=False)

    return parser


# -- subcommand implementations -------------------------------------------------------
def _mine_segmentation(args: argparse.Namespace) -> SegmentationBundle:
    """Shared mining path of ``mine`` and ``fit``'s inline-mining branch:
    read the text source, run Algorithm 1 + segmentation, bundle the result."""
    texts, source = _read_texts(args, default_docs=_SMOKE_DOCS)
    options = {} if args.threshold is None else \
        {"significance_threshold": args.threshold}
    config = ToPMineConfig(min_support=args.min_support,
                           max_phrase_length=args.max_phrase_length,
                           mining_engine=getattr(args, "mining_engine", "auto"),
                           n_jobs=getattr(args, "jobs", 1),
                           seed=args.seed, **options)
    pipeline = ToPMine(config)
    corpus = pipeline.preprocess(texts, name=source)
    mining = pipeline.mine_phrases(corpus)
    segmented = pipeline.segment(corpus, mining)
    print(f"mined {source}: {len(corpus)} documents, {corpus.num_tokens} tokens, "
          f"vocabulary {corpus.vocabulary_size}")
    print(f"frequent phrases (>=2 words): {mining.num_frequent_phrases()} "
          f"at min_support={mining.min_support}")
    print(f"segmentation: {segmented.num_phrases} phrase instances "
          f"({sum(d.num_multiword_phrases for d in segmented)} multi-word)")
    return SegmentationBundle(mining=mining, segmented=segmented,
                              construction=config.construction_config(),
                              preprocess=config.preprocess,
                              metadata={"source": source, "seed": args.seed})


def cmd_mine(args: argparse.Namespace) -> int:
    """``repro mine``: phrase mining + segmentation → segmentation bundle."""
    bundle = _mine_segmentation(args)
    path = save_bundle(args.output, bundle)
    print(f"wrote segmentation bundle to {path}")
    return 0


def cmd_fit(args: argparse.Namespace) -> int:
    """``repro fit``: PhraseLDA over a (saved or inline) segmentation → model."""
    # Explicit values always win; --smoke only shrinks the unset defaults.
    n_topics = args.topics if args.topics is not None else (5 if args.smoke else 10)
    n_iterations = args.iterations if args.iterations is not None else \
        (20 if args.smoke else 100)

    if args.segmentation:
        conflicting = [flag for flag, value in
                       (("--dataset", args.dataset), ("--input", args.input),
                        ("--n-docs", args.n_docs),
                        ("--min-support", args.min_support),
                        ("--threshold", args.threshold),
                        ("--max-phrase-length", args.max_phrase_length))
                       if value is not None]
        if conflicting:
            print(f"error: --segmentation already provides the mined corpus; "
                  f"remove {', '.join(conflicting)} (those only apply to "
                  f"inline mining)", file=sys.stderr)
            return 2
        seg = load_segmentation(args.segmentation)
    else:
        seg = _mine_segmentation(args)
    source = seg.segmented.name

    try:
        engine = resolve_engine(args.engine)
    except RuntimeError as exc:  # e.g. --engine c without a working compiler
        print(f"error: {exc}", file=sys.stderr)
        return 2
    lda_config = PhraseLDAConfig(
        n_topics=n_topics, alpha=args.alpha, beta=args.beta,
        n_iterations=n_iterations,
        optimize_hyperparameters=args.optimize_hyperparameters,
        seed=args.seed, engine=engine)
    model = PhraseLDA(lda_config)
    state = model.fit(seg.segmented)

    bundle = ModelBundle.from_fit(
        seg.segmented, state, seg.mining,
        construction=seg.construction, preprocess=seg.preprocess,
        metadata={"source": source, "seed": args.seed,
                  "engine": engine, "n_iterations": n_iterations})
    path = save_bundle(args.output, bundle)
    print(f"fitted PhraseLDA: K={n_topics}, {n_iterations} sweeps, "
          f"engine={engine}, corpus={source}")
    print(bundle.render_topics(n_rows=5, title=source))
    print(f"wrote model bundle to {path}")
    return 0


def cmd_topics(args: argparse.Namespace) -> int:
    """``repro topics``: print a saved model's topic tables."""
    bundle = load_model(args.model)
    print(bundle.render_topics(n_rows=args.n, title=args.title))
    return 0


def _infer_remote(args: argparse.Namespace, n_iterations: int) -> int:
    """``repro infer --url``: fold in through a running ``repro serve``."""
    from repro.serve.client import ServeClient, ServeError

    texts, source = _read_texts(args, default_docs=_SMOKE_INFER_DOCS,
                                seed_offset=1)
    client = ServeClient(args.url)
    try:
        reply = client.infer(texts, model=args.model, seed=args.seed,
                             iterations=n_iterations, top=args.top)
    except ServeError as exc:
        # The message already carries the server's X-Request-Id when one
        # was answered — the handle into server-side metrics and logs.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    request_id = reply.get("request_id")
    handle = f", request {request_id}" if request_id else ""
    print(f"folded in {len(reply['documents'])} documents from {source} "
          f"via {args.url} (model {reply['model']}, "
          f"{reply['iterations']} sweeps, K={reply['n_topics']}{handle})")
    show = max(0, args.show)
    for d, doc in enumerate(reply["documents"][:show]):
        tops = ", ".join(f"topic {k}: {p:.2f}" for k, p in doc["top_topics"])
        print(f"  doc {d}: {tops}  [{doc['n_phrases']} phrases, "
              f"{doc['n_unknown_tokens']} unknown tokens]")
    if len(reply["documents"]) > show:
        print(f"  ... ({len(reply['documents']) - show} more)")
    if args.output:
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(reply, indent=2) + "\n", encoding="utf-8")
        print(f"wrote topic mixtures to {out}")
    return 0


def cmd_infer(args: argparse.Namespace) -> int:
    """``repro infer``: fold unseen documents into a saved model."""
    n_iterations = args.iterations if args.iterations is not None else \
        (10 if args.smoke else 50)
    if args.url:
        return _infer_remote(args, n_iterations)
    if not args.model:
        print("error: --model is required without --url", file=sys.stderr)
        return 2
    bundle = load_model(args.model)
    texts, source = _read_texts(args, default_docs=_SMOKE_INFER_DOCS,
                                seed_offset=1)
    config = InferenceConfig(n_iterations=n_iterations, seed=args.seed,
                             engine=args.engine)
    result = bundle.inferencer().infer_texts(texts, config)

    show = max(0, args.show)
    print(f"folded in {result.n_documents} documents from {source} "
          f"({n_iterations} sweeps, K={result.n_topics})")
    for d, doc in enumerate(result.documents[:show]):
        tops = ", ".join(f"topic {k}: {p:.2f}" for k, p in doc.top_topics(args.top))
        print(f"  doc {d}: {tops}  [{len(doc.phrases)} phrases, "
              f"{doc.n_unknown_tokens} unknown tokens]")
    if result.n_documents > show:
        print(f"  ... ({result.n_documents - show} more)")

    if args.output:
        payload = {
            "model": str(args.model),
            "source": source,
            "n_topics": result.n_topics,
            "n_iterations": n_iterations,
            "documents": [
                {
                    "theta": [round(float(p), 6) for p in doc.theta],
                    "top_topics": [[k, round(p, 6)] for k, p in
                                   doc.top_topics(args.top)],
                    "n_phrases": len(doc.phrases),
                    "n_unknown_tokens": doc.n_unknown_tokens,
                }
                for doc in result.documents
            ],
        }
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"wrote topic mixtures to {out}")
    return 0


_STREAM_CREATION_FLAGS = (
    ("--topics", "topics"), ("--iterations", "iterations"),
    ("--alpha", "alpha"), ("--beta", "beta"),
    ("--min-support", "min_support"), ("--threshold", "threshold"),
    ("--max-phrase-length", "max_phrase_length"), ("--engine", "engine"),
    ("--lda-engine", "lda_engine"), ("--model-seed", "model_seed"),
    ("--refresh-every", "refresh_every"),
)


def cmd_ingest(args: argparse.Namespace) -> int:
    """``repro ingest``: append a document batch to a topic stream."""
    from repro.stream import StreamConfig, TopicStream

    texts, source = _read_texts(args, default_docs=_SMOKE_DOCS)
    if TopicStream.exists(args.stream):
        conflicting = [flag for flag, attribute in _STREAM_CREATION_FLAGS
                       if getattr(args, attribute) is not None]
        if conflicting:
            print(f"error: stream {args.stream} already exists and its "
                  f"configuration is frozen; remove "
                  f"{', '.join(conflicting)} (they only apply to the "
                  f"first ingest)", file=sys.stderr)
            return 2
        stream = TopicStream.open(args.stream)
    else:
        # Explicit values always win; --smoke only shrinks unset defaults.
        config = StreamConfig(
            n_topics=args.topics if args.topics is not None
            else (5 if args.smoke else 10),
            n_iterations=args.iterations if args.iterations is not None
            else (20 if args.smoke else 100),
            alpha=args.alpha,
            beta=args.beta if args.beta is not None else 0.01,
            seed=args.model_seed if args.model_seed is not None else 7,
            min_support=args.min_support,
            significance_threshold=args.threshold
            if args.threshold is not None else 5.0,
            max_phrase_length=args.max_phrase_length,
            engine=args.engine or "auto",
            lda_engine=args.lda_engine or "auto",
            refresh_min_documents=args.refresh_every
            if args.refresh_every is not None else 1,
            source=args.source or source)
        stream = TopicStream.create(args.stream, config)
        print(f"created stream at {args.stream} "
              f"(K={config.n_topics}, {config.n_iterations} sweeps, "
              f"seed={config.seed})")

    report = stream.ingest(texts, source=args.source or source)
    if report.shard is None:
        print(f"ingested nothing: all {report.n_duplicates} document(s) "
              f"were already logged")
    else:
        print(f"ingested {report.n_documents} document(s) from {source} "
              f"into {report.shard} ({report.n_tokens} tokens, "
              f"{report.n_duplicates} duplicate(s) dropped, "
              f"vocabulary {report.vocabulary_size})")
    print(f"stream holds {stream.n_documents} document(s); "
          f"{report.pending_documents} pending since version "
          f"{stream.published_version}")
    if args.refresh:
        return _run_refresh(stream, force=False)
    return 0


def _run_refresh(stream, force: bool) -> int:
    """Shared refresh driver of ``repro refresh`` and ``ingest --refresh``."""
    report = stream.refresh(force=force)
    if report is None:
        print(f"refresh policy not satisfied: {stream.pending_documents} "
              f"pending document(s) < "
              f"{stream.config.refresh_min_documents} required "
              f"(use `repro refresh --force`)")
        return 0
    stages = ", ".join(f"{stage} {seconds:.2f}s"
                       for stage, seconds in report.timings.items())
    print(f"published version {report.version} over "
          f"{report.n_documents} document(s) in {report.seconds:.2f}s "
          f"({stages})")
    print(f"wrote {report.path}")
    print(f"published atomically to {report.current_path} "
          f"(live servers hot-swap on their next request)")
    return 0


def cmd_refresh(args: argparse.Namespace) -> int:
    """``repro refresh``: re-fit a stream's model and publish a version."""
    from repro.stream import TopicStream

    return _run_refresh(TopicStream.open(args.stream), force=args.force)


def cmd_models(args: argparse.Namespace) -> int:
    """``repro models``: list the bundles in a directory from manifests."""
    import datetime

    from repro.io.artifacts import describe_directory

    entries = describe_directory(args.directory)
    if args.json:
        print(json.dumps(entries, indent=2, sort_keys=True))
        return 0
    if not entries:
        print(f"no .npz bundles in {args.directory}")
        return 0
    header = f"{'NAME':<24} {'KIND':<13} {'VER':>3} {'TOPICS':>6} " \
             f"{'SIZE':>9} {'MODIFIED':<19}"
    print(header)
    for entry in entries:
        if "error" in entry:
            print(f"{entry['name']:<24} !! {entry['error']}")
            continue
        mtime = datetime.datetime.fromtimestamp(entry["mtime"])
        topics = entry.get("n_topics")
        print(f"{entry['name']:<24} {entry['kind']:<13} "
              f"{entry['schema_version']:>3} "
              f"{'-' if topics is None else topics:>6} "
              f"{entry['size_bytes'] / 1024:>8.1f}K "
              f"{mtime:%Y-%m-%d %H:%M:%S}")
    return 0


def _serve_sources(args: argparse.Namespace) -> "dict[str, Path]":
    """Resolve the ``serve`` flags into an ordered name → bundle-path map.

    One resolution shared by the in-process server and the fleet (which
    ships paths — never loaded arrays — to its workers): stream first,
    then ``--models-dir``, then explicit ``--model`` specs, later names
    overriding earlier ones exactly like registry re-registration did.
    """
    sources: "dict[str, Path]" = {}
    if args.stream:
        from repro.stream import TopicStream

        stream = TopicStream.open(args.stream)
        if not stream.current_model_path.exists():
            if stream.n_documents == 0:
                raise ArtifactError(
                    f"stream {args.stream} has no documents yet; "
                    f"`repro ingest` some first")
            print("stream has no published model yet; "
                  "running the initial refresh...")
            _run_refresh(stream, force=True)
        stream_name = Path(args.stream).resolve().name or "stream"
        sources[stream_name] = stream.current_model_path
    if args.models_dir:
        root = Path(args.models_dir)
        if not root.is_dir():
            raise ArtifactError(f"model directory not found: {root}")
        for path in sorted(root.glob("*.npz")):
            sources[path.stem] = path
    for spec in args.model:
        # NAME=PATH only when the whole spec is not itself a file and the
        # prefix looks like a name — paths may legitimately contain '='
        # (e.g. sweep directories like runs/lr=0.1/model.npz).
        name, separator, path = spec.partition("=")
        if separator and not Path(spec).exists() and "/" not in name \
                and os.sep not in name:
            sources[name or Path(path).stem] = Path(path)
        else:
            sources[Path(spec).stem] = Path(spec)
    return sources


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run the batched-inference model server until stopped.

    Stops cleanly on SIGINT (Ctrl-C) *and* SIGTERM — background jobs in
    non-interactive shells (CI) inherit SIGINT ignored, so a plain
    ``kill`` must also trigger the clean-shutdown path.  With
    ``--workers N`` (N > 1) the serving side runs as a
    :class:`~repro.serve.fleet.ServeFleet` of N processes behind one
    SO_REUSEPORT address; the stream supervisor (``--stream``) always
    stays in this parent process — the single writer of the fleet.
    """
    import signal

    from repro.serve import ModelRegistry, ReproServer, ServeConfig, ServeFleet
    from repro.stream import StreamError

    try:
        sources = _serve_sources(args)
    except StreamError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not sources:
        print("error: nothing to serve; pass --model PATH and/or "
              "--models-dir DIR", file=sys.stderr)
        return 2
    # A stream primary publishes its document log so `repro replicate`
    # followers can tail it over /v1/log/*.
    log_root = str(Path(args.stream) / "log") if args.stream else None
    config = ServeConfig(host=args.host, port=args.port,
                         workers=max(1, args.workers),
                         max_batch_size=args.max_batch,
                         batch_delay=args.batch_delay_ms / 1000.0,
                         default_iterations=args.iterations,
                         registry_capacity=args.capacity,
                         stream_poll=args.stream_poll,
                         metrics_dir=args.metrics_dir,
                         history_interval_seconds=args.history_interval,
                         slow_request_seconds=args.slow_request_seconds,
                         log_root=log_root)

    supervisor = None
    fleet = None
    server = None
    if config.workers > 1:
        fleet = ServeFleet(config, sources)
        fleet.start()
        url = fleet.url
        metrics = None
        if args.stream:
            # The supervisor runs in this parent process, outside every
            # worker — give it a file-backed shard in the fleet's metrics
            # directory so its ingest/refresh series still appear in any
            # worker's /metrics scrape (labeled worker_id="stream").
            from repro.obs import ShardWriter, shard_path
            from repro.utils.timing import MetricsRegistry

            metrics = MetricsRegistry()
            metrics.attach_shard(ShardWriter(
                shard_path(fleet.config.metrics_dir, "stream")))
    else:
        registry = ModelRegistry(capacity=config.registry_capacity)
        for name, path in sources.items():
            registry.register(name, path)
        server = ReproServer(registry, config)
        url = server.url
        metrics = server.metrics
    if args.stream:
        from repro.stream import StreamSupervisor

        supervisor = StreamSupervisor(args.stream,
                                      poll_interval=config.stream_poll,
                                      metrics=metrics,
                                      profile_dir=args.profile_dir)
        supervisor.start()
        print(f"watching stream {args.stream}: new ingests auto-refresh "
              f"and hot-swap (poll every {config.stream_poll:g}s)")
    def _interrupt(signum, frame):
        raise KeyboardInterrupt

    previous_sigterm = signal.signal(signal.SIGTERM, _interrupt)
    names = ", ".join(sorted(sources))
    if fleet is not None:
        print(f"serving {names} on {url} with {config.workers} workers "
              f"(SO_REUSEPORT, mmap-shared bundles; max batch "
              f"{config.max_batch_size}, window {args.batch_delay_ms}ms)")
    else:
        print(f"serving {names} on {url} "
              f"(max batch {config.max_batch_size}, "
              f"window {args.batch_delay_ms}ms)")
    endpoints = ("/healthz /metrics /debug/profile /v1/models /v1/infer "
                 "/v1/segment /v1/topics")
    if config.log_root:
        endpoints += " /v1/log/manifest /v1/log/shard/<name>"
    print(f"endpoints: {endpoints} — Ctrl-C (or SIGTERM) to stop")
    try:
        if fleet is not None:
            fleet.wait_until_ready()
            print(f"fleet ready: workers {fleet.alive_workers()} listening")
            threading.Event().wait()
        else:
            server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous_sigterm)
        if supervisor is not None:
            supervisor.stop()
        if fleet is not None:
            fleet.stop()
        if server is not None:
            server.close()
    print("server stopped cleanly")
    return 0


def cmd_replicate(args: argparse.Namespace) -> int:
    """``repro replicate``: tail a primary's log into a local replica."""
    import signal

    from repro.replicate import LogFollower, ReplicationError
    from repro.serve.client import ServeError

    def on_shard(shard) -> None:
        print(f"shipped {shard.name}: {shard.n_documents} document(s) "
              f"starting at doc {shard.first_doc_id}")

    follower = LogFollower(args.primary, args.root,
                           chunk_bytes=args.chunk_bytes,
                           timeout=args.timeout, on_shard=on_shard)
    if args.once:
        try:
            report = follower.sync_once()
        except (ReplicationError, ServeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps({
                "primary": args.primary, "root": str(args.root),
                "n_shards_fetched": report.n_shards_fetched,
                "n_documents_fetched": report.n_documents_fetched,
                "n_bytes_fetched": report.n_bytes_fetched,
                "primary_documents": report.primary_documents,
                "lag_documents": report.lag_documents,
                "converged": report.converged,
                "shards": report.shards,
            }, indent=2, sort_keys=True))
        else:
            print(f"synced {args.root} from {args.primary}: "
                  f"+{report.n_shards_fetched} shard(s), "
                  f"+{report.n_documents_fetched} document(s) "
                  f"({report.n_bytes_fetched} bytes); "
                  f"lag {report.lag_documents} of "
                  f"{report.primary_documents} document(s), "
                  f"{'converged' if report.converged else 'NOT converged'}")
        return 0 if report.converged else 1

    stop = threading.Event()

    def _interrupt(signum, frame):
        stop.set()

    previous_sigterm = signal.signal(signal.SIGTERM, _interrupt)
    print(f"replicating {args.primary} -> {args.root} "
          f"(poll every {args.poll:g}s) — Ctrl-C (or SIGTERM) to stop")

    def on_cycle(report) -> None:
        if report.n_shards_fetched:
            print(f"caught up: +{report.n_documents_fetched} document(s), "
                  f"lag {report.lag_documents}")

    try:
        follower.follow(poll_interval=args.poll, stop=stop,
                        on_cycle=on_cycle)
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous_sigterm)
    print("replica stopped cleanly")
    return 0


def cmd_rollout(args: argparse.Namespace) -> int:
    """``repro rollout``: canary-first, health-gated fleet promotion."""
    from repro.replicate import (
        RolloutCoordinator,
        RolloutError,
        RolloutTarget,
    )

    try:
        targets = [RolloutTarget.parse(spec) for spec in args.target]
        coordinator = RolloutCoordinator(
            targets, canary=args.canary,
            health_timeout=args.health_timeout,
            poll_interval=args.poll_interval,
            slo_gate=args.slo_gate)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        report = coordinator.rollout(args.version)
    except RolloutError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        return 0 if report.succeeded else 1
    for entry in report.targets:
        outcome = "healthy" if entry.healthy else f"FAILED: {entry.error}"
        rolled = " (rolled back)" if entry.rolled_back else ""
        print(f"  {entry.name}: {outcome} in {entry.seconds:.2f}s{rolled}")
    print(f"rollout {report.state}: {args.version}")
    return 0 if report.succeeded else 1


def _status_report(health: dict, families: dict, models: list) -> dict:
    """Digest one scrape (+/v1/models) into the ``repro status`` report."""
    from repro.obs import SPAN_NAMES, sample_value, span_metric

    def fleet_total(name: str) -> float:
        value = sample_value(families, f"repro_{name}")
        return 0.0 if value is None else value

    build = next((labels for labels, _ in
                  families.get("repro_build_info", [])), {})
    worker_ids = sorted(
        {labels["worker_id"]
         for labels, _ in families.get("repro_http_requests_total", [])
         if "worker_id" in labels},
        key=lambda wid: (not wid.isdigit(), int(wid) if wid.isdigit() else 0,
                         wid))
    workers = []
    for wid in worker_ids:
        label = {"worker_id": wid}
        row = {"worker_id": wid}
        for field, metric in (("requests", "repro_http_requests_total"),
                              ("errors", "repro_http_errors_total"),
                              ("slow", "repro_slow_requests_total")):
            value = sample_value(families, metric, label)
            row[field] = 0.0 if value is None else value
        workers.append(row)
    spans = []
    for span in SPAN_NAMES:
        metric = f"repro_{span_metric(span)}"
        count = sample_value(families, f"{metric}_count")
        total = sample_value(families, f"{metric}_sum")
        if not count:
            continue
        spans.append({"span": span, "calls": count,
                      "mean_ms": 1000.0 * (total or 0.0) / count})
    stream = None
    if "repro_stream_refreshes_total" in families \
            or "repro_stream_ingested_documents_total" in families:
        stream = {
            "ingested_documents":
                fleet_total("stream_ingested_documents_total"),
            "refreshes": fleet_total("stream_refreshes_total"),
            "refresh_errors": fleet_total("stream_refresh_errors_total"),
        }
    replication = None
    if "repro_replica_lag_docs" in families \
            or "repro_shipping_shards_total" in families:
        replication = {
            "lag_documents": fleet_total("replica_lag_docs"),
            "shards_shipped": fleet_total("shipping_shards_total"),
            "bytes_shipped": fleet_total("shipping_bytes_total"),
            "retries": fleet_total("shipping_retries_total"),
            "verify_failures": fleet_total("shipping_verify_failures_total"),
        }
    rollout = None
    if "repro_rollout_state" in families:
        from repro.replicate import ROLLOUT_STATES

        state_value = fleet_total("rollout_state")
        state_name = next((name for name, value in ROLLOUT_STATES.items()
                           if value == state_value), str(state_value))
        rollout = {
            "state": state_name,
            "promotions": fleet_total("rollout_promotions_total"),
            "rollbacks": fleet_total("rollout_rollbacks_total"),
        }
    return {
        "answered_by_worker": health.get("worker_id"),
        "uptime_seconds": health.get("uptime_seconds"),
        "slo": health.get("slo"),
        "build": build,
        "fleet": {"requests": fleet_total("http_requests_total"),
                  "errors": fleet_total("http_errors_total"),
                  "slow": fleet_total("slow_requests_total")},
        "workers": workers,
        "spans": spans,
        "models": [
            {"name": entry.get("name"),
             "loaded": entry.get("loaded"),
             "published_at": entry.get("published_at"),
             "swap_lag_seconds": entry.get("swap_lag_seconds")}
            for entry in models],
        "stream": stream,
        "replication": replication,
        "rollout": rollout,
    }


def cmd_status(args: argparse.Namespace) -> int:
    """``repro status``: one-shot fleet + stream health table."""
    import datetime

    from repro.obs import parse_prometheus
    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(args.url, timeout=args.timeout, retries=0)
    try:
        health = client.health()
        families = parse_prometheus(client.metrics_text())
        models = client.models()
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = _status_report(health, families, models)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0

    build = report["build"]
    engines = ", ".join(f"{key}={build[key]}" for key in sorted(build)
                        if key != "worker_id")
    print(f"{args.url} — answered by worker "
          f"{report['answered_by_worker']}, up "
          f"{report['uptime_seconds']:.0f}s" if report["uptime_seconds"]
          is not None else f"{args.url}")
    if engines:
        print(f"build: {engines}")
    print(f"\n{'WORKER':<8} {'REQUESTS':>9} {'ERRORS':>7} {'SLOW':>5}")
    for row in report["workers"]:
        print(f"{row['worker_id']:<8} {row['requests']:>9.0f} "
              f"{row['errors']:>7.0f} {row['slow']:>5.0f}")
    fleet = report["fleet"]
    print(f"{'fleet':<8} {fleet['requests']:>9.0f} "
          f"{fleet['errors']:>7.0f} {fleet['slow']:>5.0f}")
    if report["spans"]:
        print(f"\n{'SPAN':<16} {'CALLS':>7} {'MEAN_MS':>8}")
        for row in report["spans"]:
            print(f"{row['span']:<16} {row['calls']:>7.0f} "
                  f"{row['mean_ms']:>8.2f}")
    print(f"\n{'MODEL':<24} {'LOADED':<7} {'PUBLISHED':<19} {'SWAP_LAG':>8}")
    for entry in report["models"]:
        published = entry["published_at"]
        stamp = datetime.datetime.fromtimestamp(published) \
            .strftime("%Y-%m-%d %H:%M:%S") \
            if isinstance(published, (int, float)) else "-"
        lag = entry["swap_lag_seconds"]
        print(f"{str(entry['name']):<24} "
              f"{('yes' if entry['loaded'] else 'no'):<7} {stamp:<19} "
              f"{(f'{lag:.2f}s' if isinstance(lag, (int, float)) else '-'):>8}")
    stream = report["stream"]
    if stream is not None:
        print(f"\nstream: {stream['ingested_documents']:.0f} ingested "
              f"document(s), {stream['refreshes']:.0f} refresh(es), "
              f"{stream['refresh_errors']:.0f} error(s)")
    replication = report["replication"]
    if replication is not None:
        print(f"\nreplication: lag {replication['lag_documents']:.0f} "
              f"document(s), {replication['shards_shipped']:.0f} shard(s) "
              f"shipped ({replication['bytes_shipped']:.0f} bytes), "
              f"{replication['retries']:.0f} retry(ies), "
              f"{replication['verify_failures']:.0f} verify failure(s)")
    rollout = report["rollout"]
    if rollout is not None:
        print(f"\nrollout: {rollout['state']}, "
              f"{rollout['promotions']:.0f} promotion(s), "
              f"{rollout['rollbacks']:.0f} rollback(s)")
    if args.slo:
        verdicts = report["slo"]
        if verdicts:
            print("\n" + _render_slo_table(verdicts))
        else:
            print("\nslo: no verdicts — the server records no metrics "
                  "history (run it with --metrics-dir or --workers > 1)")
    return 0


def _render_slo_table(verdicts: List[dict]) -> str:
    """Render SLO verdict dicts (the ``/healthz`` ``slo`` field) as a table."""
    lines = [f"{'SLO':<24} {'VALUE':>10} {'OBJECTIVE':>10} "
             f"{'FAST':>7} {'SLOW':>7} {'FRAMES':>6} STATUS"]
    for verdict in verdicts:
        value = verdict.get("value")
        lines.append(
            f"{str(verdict.get('name', '?')):<24} "
            f"{('-' if value is None else format(value, '.4g')):>10} "
            f"{verdict.get('objective', 0.0):>10.4g} "
            f"{verdict.get('fast_burn', 0.0):>7.2f} "
            f"{verdict.get('slow_burn', 0.0):>7.2f} "
            f"{verdict.get('frames', 0):>6d} "
            f"{verdict.get('status', '?')}")
    return "\n".join(lines)


def cmd_slo(args: argparse.Namespace) -> int:
    """``repro slo``: burn-rate verdicts of the declared SLOs.

    The verdicts are evaluated server-side (over the fleet's metrics
    history) and travel in the ``/healthz`` reply, so this command works
    against any worker of a fleet.  Exits 1 when any SLO is breaching,
    2 when the server is unreachable or records no history.
    """
    import time

    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(args.url, timeout=args.timeout, retries=0)
    try:
        while True:
            try:
                verdicts = client.health().get("slo")
            except ServeError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            if verdicts is None:
                print(f"error: {args.url} reports no SLO verdicts — the "
                      f"server records no metrics history (run it with "
                      f"--metrics-dir or --workers > 1)", file=sys.stderr)
                return 2
            if args.json:
                print(json.dumps(verdicts, indent=2, sort_keys=True))
            else:
                print(_render_slo_table(verdicts))
            if not args.watch:
                breaching = any(verdict.get("status") == "breach"
                                for verdict in verdicts)
                return 1 if breaching else 0
            time.sleep(max(0.05, args.interval))
            print()
    except KeyboardInterrupt:
        return 0


def cmd_bench(bench_argv: List[str]) -> int:
    """``repro bench``: forward the raw argument tail to the bench CLI."""
    from repro.bench.__main__ import main as bench_main
    return bench_main(bench_argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = build_parser()
    # `bench` forwards everything after it verbatim (including --help).
    if argv and argv[0] == "bench":
        return cmd_bench(argv[1:])
    args = parser.parse_args(argv)
    if getattr(args, "command", None) is None:
        parser.print_help()
        return 1
    try:
        return args.func(args)
    except ArtifactError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe: exit quietly,
        # pointing stdout at devnull so interpreter shutdown can't re-raise.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
