"""Mergeable per-shard phrase-mining statistics for incremental corpora.

Algorithm 1 over a growing corpus, without ever re-reading old shards.  The
trick is to split the miner into a *counting* half that distributes over
shards and a *filtering* half that runs at refresh time:

* At **ingest**, each new shard is tokenized once and its **raw** phrase
  counts — the true occurrence count of *every* contiguous n-gram, i.e.
  Algorithm 1 at ``min_support=1`` — are computed with the vectorized
  engine (:func:`repro.core.fast_mining.mine_flat_chunks`) and persisted.
  Raw counts are exactly additive: counting each shard separately and
  summing (:meth:`~repro.utils.counter.HashCounter.merge_add`) equals
  counting the concatenated corpus.
* At **refresh**, the accumulated raw counter is filtered at the snapshot's
  support threshold.  Because an n-gram's reported count in Algorithm 1 is
  its true occurrence count whenever the n-gram is frequent (every
  occurrence of a frequent phrase survives the Apriori prefix/suffix and
  position pruning — downward closure guarantees all its sub-phrases are
  frequent at every occurrence site), the filtered merge is **bit-identical**
  to running the full miner on the snapshot: same phrases, same counts.

The one miner output that is not a pure function of the counts is
``iterations`` — the deepest level the increasing-size sliding window
*examined*, which depends on where frequent grams sit inside chunks.
:func:`replay_iterations` reproduces it exactly by replaying only the
window's *survival* logic (the cheap part) over the snapshot, using the
already-filtered counter in place of per-level counting.

Vocabulary ids stay stable under merge by construction: one shared
:class:`~repro.text.vocabulary.Vocabulary` grows in log-replay order, so a
word's id is its first-appearance rank — the same id an offline
preprocessing pass over the equivalent snapshot assigns.
"""

from __future__ import annotations

import json
import os
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.fast_mining import mine_flat_chunks
from repro.core.frequent_phrases import (
    FrequentPhraseMiningResult,
    PhraseMiningConfig,
    resolve_mining_engine,
)
from repro.text.flat import FlatChunks
from repro.text.preprocess import Preprocessor
from repro.text.vocabulary import Vocabulary
from repro.utils.counter import HashCounter

Phrase = Tuple[int, ...]

STATS_FORMAT = "repro.stream.stats"
STATS_VERSION = 1


class StreamStatsError(Exception):
    """A persisted statistics file is missing, corrupt, or inconsistent."""


# -- tokenization ---------------------------------------------------------------------
def encode_texts(texts: Sequence[str], preprocessor: Preprocessor,
                 vocabulary: Vocabulary) -> List[List[List[int]]]:
    """Tokenize raw ``texts`` into id chunks, growing ``vocabulary`` in place.

    Mirrors :meth:`repro.text.preprocess.Preprocessor.build_corpus` token
    for token (same chunking, same ``Vocabulary.add`` call order), so
    encoding a corpus shard by shard against one shared vocabulary assigns
    exactly the ids — and accumulates exactly the frequencies and
    surface-form counters — that a single offline pass over the
    concatenated texts would.

    Returns
    -------
    list
        One list of token-id chunks per document (documents whose chunks
        are all empty keep their slot as an empty list).
    """
    documents: List[List[List[int]]] = []
    for text in texts:
        id_chunks: List[List[int]] = []
        for chunk in preprocessor.process_text(text):
            id_chunk = [vocabulary.add(stem, surface_form=surface)
                        for stem, surface in chunk]
            if id_chunk:
                id_chunks.append(id_chunk)
        documents.append(id_chunks)
    return documents


# -- raw counting ---------------------------------------------------------------------
def count_all_phrases(flat: FlatChunks, max_length: Optional[int] = None,
                      engine: str = "auto") -> HashCounter:
    """Count every contiguous n-gram of every chunk (Algorithm 1 at ε=1).

    Parameters
    ----------
    flat:
        Flat-buffer encoding of the shard's chunks.
    max_length:
        Optional phrase-length cap (must match the refresh configuration's
        cap for the merge to equal an offline capped run).
    engine:
        ``"auto"``/``"numpy"`` runs the vectorized miner at support 1;
        ``"reference"`` a readable nested loop.  Both return identical raw
        counts.

    Returns
    -------
    HashCounter
        True occurrence counts of all n-grams (length ≥ 1, within-chunk).
    """
    engine = resolve_mining_engine(engine)
    if engine == "numpy":
        counter, _iterations = mine_flat_chunks(flat, 1, max_length)
        return counter
    counter = HashCounter()
    for index in range(flat.n_chunks):
        chunk = flat.chunk(index)
        length = len(chunk)
        longest = length if max_length is None else min(length, max_length)
        for n in range(1, longest + 1):
            for start in range(length - n + 1):
                counter.increment(tuple(chunk[start:start + n]))
    return counter


# -- iterations replay ----------------------------------------------------------------
def replay_iterations(flat: FlatChunks, counter: HashCounter,
                      max_length: Optional[int] = None) -> int:
    """Reproduce the miner's ``iterations`` from a *filtered* counter.

    Replays the increasing-size sliding window of
    :func:`~repro.core.fast_mining.mine_flat_chunks` — active-position
    survival, per-chunk largest-index drop, overrun guard, data
    antimonotonicity — but skips the per-level candidate counting: the set
    of frequent ``n``-grams is already known (it is exactly the counter's
    length-``n`` phrases), so each level only re-keys positions against it.
    Position survival therefore evolves identically to a real mining run
    over ``flat``, and the returned level count is bit-equal to what either
    mining engine would report.

    Parameters
    ----------
    flat:
        Flat-buffer encoding of the snapshot corpus.
    counter:
        The frequent-phrase counter (already filtered at the snapshot's
        support threshold).
    max_length:
        The same phrase-length cap the mining run would use.

    Returns
    -------
    int
        The deepest phrase length the sliding window would examine.
    """
    tokens = flat.tokens.astype(np.int64, copy=False)
    n_pos = len(tokens)
    if n_pos == 0:
        return 1

    vocab_bound = int(tokens.max()) + 1
    frequent_words = np.asarray(
        sorted(phrase[0] for phrase in counter if len(phrase) == 1),
        dtype=np.int64)
    word_to_id = np.full(vocab_bound, -1, dtype=np.int64)
    in_bounds = frequent_words[frequent_words < vocab_bound]
    word_to_id[in_bounds] = np.searchsorted(frequent_words, in_bounds)
    gram_id = word_to_id[tokens]
    # phrase -> dense id of the current level's frequent grams (sorted-key
    # order, matching np.unique's ordering in the real miner).
    phrase_to_dense: Dict[Phrase, int] = {
        (int(word),): rank for rank, word in enumerate(frequent_words.tolist())}

    chunk_end = flat.chunk_end_per_position()
    chunk_index = flat.chunk_index_per_position()
    positions = np.arange(n_pos, dtype=np.int64)
    active = np.flatnonzero(np.repeat(flat.chunk_lengths >= 2,
                                      flat.chunk_lengths))

    n = 2
    iterations = 1
    while active.size and (max_length is None or n <= max_length):
        iterations = n
        surviving = active[gram_id[active] >= 0]
        if surviving.size:
            chunk_of = chunk_index[surviving]
            is_chunk_last = np.empty(surviving.size, dtype=bool)
            is_chunk_last[-1] = True
            np.not_equal(chunk_of[:-1], chunk_of[1:], out=is_chunk_last[:-1])
            surviving = surviving[~is_chunk_last]
            surviving = surviving[surviving + n <= chunk_end[surviving]]

        # The frequent n-grams are the counter's length-n phrases; key each
        # as (prefix dense id, last token), sorted to assign dense ids the
        # way np.unique would.
        level: List[Tuple[int, Phrase]] = []
        for phrase in counter:
            if len(phrase) == n:
                prefix = phrase_to_dense.get(phrase[:-1])
                if prefix is not None:
                    level.append((prefix * vocab_bound + phrase[-1], phrase))
        level.sort()
        level_keys = np.asarray([key for key, _ in level], dtype=np.int64)
        phrase_to_dense = {phrase: rank for rank, (_, phrase) in enumerate(level)}

        next_gram_id = np.full(n_pos, -1, dtype=np.int64)
        if level_keys.size:
            fits = np.flatnonzero((gram_id >= 0) & (positions + n <= chunk_end))
            fit_keys = gram_id[fits] * vocab_bound + tokens[fits + n - 1]
            slot = np.searchsorted(level_keys, fit_keys)
            slot = np.minimum(slot, len(level_keys) - 1)
            hit = level_keys[slot] == fit_keys
            next_gram_id[fits[hit]] = slot[hit]
        gram_id = next_gram_id
        active = surviving
        n += 1
    return iterations


# -- packing helpers ------------------------------------------------------------------
def _pack_counter(counter: HashCounter) -> Dict[str, np.ndarray]:
    """Flatten a phrase counter into (tokens, offsets, counts) arrays,
    phrase-sorted for byte-determinism."""
    items = sorted(counter.items())
    tokens: List[int] = []
    offsets: List[int] = [0]
    for phrase, _count in items:
        tokens.extend(int(w) for w in phrase)
        offsets.append(len(tokens))
    return {
        "gram_tokens": np.asarray(tokens, dtype=np.int32),
        "gram_offsets": np.asarray(offsets, dtype=np.int64),
        "gram_counts": np.asarray([count for _, count in items], dtype=np.int64),
    }


def _unpack_counter(arrays: Dict[str, np.ndarray]) -> HashCounter:
    """Invert :func:`_pack_counter`."""
    tokens = arrays["gram_tokens"].tolist()
    offsets = arrays["gram_offsets"].tolist()
    counts = arrays["gram_counts"].tolist()
    return HashCounter({tuple(tokens[a:b]): int(c)
                        for a, b, c in zip(offsets, offsets[1:], counts)})


def _write_stats_npz(path: Path, meta: Dict, arrays: Dict[str, np.ndarray]) -> None:
    """Write a stats archive via temp file + atomic ``os.replace``.

    Readers (a concurrent refresh, a recovery pass) therefore never see a
    half-written archive — the same guarantee every JSON state file gets
    from :func:`repro.stream.log.write_json_atomic`.
    """
    payload = dict(arrays)
    payload["meta"] = np.array(json.dumps(meta, sort_keys=True))
    path.parent.mkdir(parents=True, exist_ok=True)
    temporary = path.with_name(path.name + ".tmp")
    with open(temporary, "wb") as handle:
        np.savez_compressed(handle, **payload)
    os.replace(temporary, path)


def _read_stats_npz(path: Path) -> Tuple[Dict, Dict[str, np.ndarray]]:
    if not path.exists():
        raise StreamStatsError(f"statistics file not found: {path}")
    try:
        with np.load(path, allow_pickle=False) as archive:
            data = {name: archive[name] for name in archive.files}
    except (zipfile.BadZipFile, ValueError, OSError, KeyError) as exc:
        raise StreamStatsError(f"{path} is not readable: {exc}") from exc
    if "meta" not in data:
        raise StreamStatsError(f"{path}: missing meta entry")
    try:
        meta = json.loads(str(data.pop("meta")))
    except json.JSONDecodeError as exc:
        raise StreamStatsError(f"{path}: corrupt meta JSON: {exc}") from exc
    if meta.get("format") != STATS_FORMAT:
        raise StreamStatsError(f"{path}: not a {STATS_FORMAT} file")
    if int(meta.get("version", 0)) > STATS_VERSION:
        raise StreamStatsError(
            f"{path}: stats version {meta.get('version')} is newer than "
            f"this reader (supports up to {STATS_VERSION})")
    return meta, data


# -- per-shard statistics -------------------------------------------------------------
@dataclass
class ShardStats:
    """One shard's tokenized documents and raw phrase counts.

    Everything a refresh needs from the shard — the original text is never
    consulted again after ingest.

    Attributes
    ----------
    name:
        The shard's log name.
    documents:
        Token-id chunks per document, in shard order (empty documents keep
        an empty slot).
    counter:
        Raw (support-1) n-gram counts of the shard's chunks.
    total_tokens:
        Chunked token count — the shard's contribution to the snapshot's
        ``L``.
    """

    name: str
    documents: List[List[List[int]]]
    counter: HashCounter
    total_tokens: int

    @property
    def n_documents(self) -> int:
        """Number of documents in the shard."""
        return len(self.documents)

    @classmethod
    def compute(cls, name: str, documents: List[List[List[int]]],
                max_length: Optional[int] = None,
                engine: str = "auto") -> "ShardStats":
        """Count one shard's phrases (the ingest-time, O(delta) step)."""
        flat = FlatChunks.from_documents(documents)
        return cls(name=name, documents=documents,
                   counter=count_all_phrases(flat, max_length, engine),
                   total_tokens=flat.total_tokens)

    def save(self, path: Union[str, Path]) -> Path:
        """Persist the stats as one compressed ``.npz`` file."""
        path = Path(path)
        chunk_tokens: List[int] = []
        chunk_offsets: List[int] = [0]
        doc_chunk_offsets: List[int] = [0]
        for chunks in self.documents:
            for chunk in chunks:
                chunk_tokens.extend(int(w) for w in chunk)
                chunk_offsets.append(len(chunk_tokens))
            doc_chunk_offsets.append(len(chunk_offsets) - 1)
        arrays = {
            "tokens": np.asarray(chunk_tokens, dtype=np.int32),
            "chunk_offsets": np.asarray(chunk_offsets, dtype=np.int64),
            "doc_chunk_offsets": np.asarray(doc_chunk_offsets, dtype=np.int64),
        }
        arrays.update(_pack_counter(self.counter))
        _write_stats_npz(path, {
            "format": STATS_FORMAT, "version": STATS_VERSION,
            "kind": "shard", "shard": self.name,
            "n_documents": self.n_documents,
            "total_tokens": int(self.total_tokens),
        }, arrays)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ShardStats":
        """Load stats written by :meth:`save`."""
        meta, arrays = _read_stats_npz(Path(path))
        if meta.get("kind") != "shard":
            raise StreamStatsError(f"{path}: expected shard stats, "
                                   f"got kind {meta.get('kind')!r}")
        tokens = arrays["tokens"].tolist()
        chunk_offsets = arrays["chunk_offsets"].tolist()
        doc_chunk_offsets = arrays["doc_chunk_offsets"].tolist()
        chunks = [tokens[a:b] for a, b in zip(chunk_offsets, chunk_offsets[1:])]
        documents = [chunks[a:b]
                     for a, b in zip(doc_chunk_offsets, doc_chunk_offsets[1:])]
        stats = cls(name=str(meta["shard"]), documents=documents,
                    counter=_unpack_counter(arrays),
                    total_tokens=int(meta["total_tokens"]))
        if stats.n_documents != int(meta["n_documents"]):
            raise StreamStatsError(
                f"{path}: holds {stats.n_documents} documents but meta "
                f"says {meta['n_documents']}")
        return stats


# -- accumulated statistics -----------------------------------------------------------
@dataclass
class AccumulatedCounts:
    """The running merge of every ingested shard's raw counts.

    Attributes
    ----------
    counter:
        Merged raw n-gram counts over all shards.
    total_tokens:
        Snapshot chunked token count (drives support scaling).
    n_documents:
        Snapshot document count.
    shard_names:
        Names of the shards merged so far, in log order.
    """

    counter: HashCounter = field(default_factory=HashCounter)
    total_tokens: int = 0
    n_documents: int = 0
    shard_names: List[str] = field(default_factory=list)

    def merge_shard(self, stats: ShardStats) -> None:
        """Fold one shard's raw counts into the accumulated state."""
        if stats.name in self.shard_names:
            raise StreamStatsError(
                f"shard {stats.name!r} was already merged")
        self.counter.merge_add(stats.counter)
        self.total_tokens += stats.total_tokens
        self.n_documents += stats.n_documents
        self.shard_names.append(stats.name)

    def save(self, path: Union[str, Path]) -> Path:
        """Persist the accumulated counts as one ``.npz`` file."""
        path = Path(path)
        _write_stats_npz(path, {
            "format": STATS_FORMAT, "version": STATS_VERSION,
            "kind": "accumulated",
            "total_tokens": int(self.total_tokens),
            "n_documents": int(self.n_documents),
            "shards": list(self.shard_names),
        }, _pack_counter(self.counter))
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "AccumulatedCounts":
        """Load accumulated counts written by :meth:`save`."""
        meta, arrays = _read_stats_npz(Path(path))
        if meta.get("kind") != "accumulated":
            raise StreamStatsError(f"{path}: expected accumulated stats, "
                                   f"got kind {meta.get('kind')!r}")
        return cls(counter=_unpack_counter(arrays),
                   total_tokens=int(meta["total_tokens"]),
                   n_documents=int(meta["n_documents"]),
                   shard_names=[str(s) for s in meta.get("shards", [])])

    def mining_result(self, snapshot: FlatChunks,
                      min_support: Optional[int] = None,
                      max_length: Optional[int] = None,
                      ) -> FrequentPhraseMiningResult:
        """Filter the merged counts into a full miner-equivalent result.

        Parameters
        ----------
        snapshot:
            Flat encoding of the snapshot corpus (needed only for the
            ``iterations`` survival replay — no counting happens here).
        min_support:
            Fixed support threshold ε; ``None`` scales it with the
            accumulated token count exactly like
            :meth:`~repro.core.frequent_phrases.PhraseMiningConfig.scaled_to_corpus`
            would for the equivalent offline corpus.
        max_length:
            Phrase-length cap (must match what the shards were counted
            with).

        Returns
        -------
        FrequentPhraseMiningResult
            Bit-identical — counter, ``total_tokens``, ``min_support``,
            ``iterations`` — to running
            :class:`~repro.core.frequent_phrases.FrequentPhraseMiner` on
            the snapshot corpus.
        """
        if min_support is None:
            min_support = PhraseMiningConfig.scaled_to_tokens(
                self.total_tokens).min_support
        if min_support < 1:
            raise ValueError("min_support must be at least 1")
        filtered = self.counter.filtered(min_support)
        return FrequentPhraseMiningResult(
            counter=filtered,
            total_tokens=self.total_tokens,
            min_support=min_support,
            iterations=replay_iterations(snapshot, filtered, max_length))
