"""Append-only, sharded JSONL document log with a dedup manifest.

The storage layer of :mod:`repro.stream`: raw documents arrive in batches
and each non-empty batch becomes one immutable *shard* — a JSONL file with
one document record per line — while a single ``manifest.json`` records the
shard sequence, per-document ids, byte offsets, and content hashes.  The
design goals, in order:

* **O(delta) ingestion** — appending a batch writes one new shard file and
  rewrites only the manifest; no existing shard is ever opened, rewritten,
  or even read.  Deduplication consults the manifest's hash index, not the
  shard bodies.
* **Replayability** — the logical corpus is the concatenation of all
  shards in manifest order, each shard in line order.  Replaying the log
  therefore reconstructs the exact document sequence every refresh (and the
  offline determinism contract) is defined over.
* **Crash consistency** — shard files are written *before* the manifest
  references them, and the manifest itself is replaced atomically
  (write-temp + ``os.replace``).  A crash mid-append leaves at worst an
  orphaned shard file that the next append overwrites; the manifest never
  names data that is not fully on disk.
* **Dedup by content hash** — every document's SHA-256 is stored in the
  manifest; re-submitted documents (retries, overlapping batches) are
  dropped at append time so the log holds each distinct text exactly once.

The log stores *text only*.  Tokenized statistics live next door in
:mod:`repro.stream.counters`, keyed by shard name, so the two layers stay
independently replayable.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

FORMAT_NAME = "repro.stream.log"
FORMAT_VERSION = 1

_MANIFEST = "manifest.json"
_SHARD_DIR = "shards"


class StreamLogError(Exception):
    """The log directory is missing, corrupt, or violates its schema."""


def _hash_text(text: str) -> str:
    """Return the content hash (hex SHA-256) used for deduplication."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def write_json_atomic(path: Union[str, Path], payload: Any) -> Path:
    """Write ``payload`` as JSON via a temp file + atomic ``os.replace``.

    Readers concurrently opening ``path`` observe either the previous
    complete document or the new one, never a torn write — the property
    every manifest and state file in :mod:`repro.stream` relies on.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temporary = path.with_name(path.name + ".tmp")
    temporary.write_text(json.dumps(payload, sort_keys=True, indent=1) + "\n",
                         encoding="utf-8")
    os.replace(temporary, path)
    return path


@dataclass
class ShardInfo:
    """Manifest entry describing one immutable shard.

    Attributes
    ----------
    name:
        Shard file stem, e.g. ``"shard-00001"``.
    n_documents:
        Number of document records in the shard.
    first_doc_id:
        Global id of the shard's first document (ids are assigned
        sequentially across shards in append order).
    offsets:
        Byte offset of each record within the shard file, enabling random
        access to a single document without scanning.
    hashes:
        Per-document content hashes, aligned with the records — the dedup
        index and a per-shard integrity fingerprint in one.
    source:
        Free-form provenance label supplied at append time.
    """

    name: str
    n_documents: int
    first_doc_id: int
    offsets: List[int] = field(default_factory=list)
    hashes: List[str] = field(default_factory=list)
    source: str = ""

    def as_dict(self) -> Dict[str, Any]:
        """Return the manifest-JSON form of this entry."""
        return {"name": self.name, "n_documents": self.n_documents,
                "first_doc_id": self.first_doc_id, "offsets": self.offsets,
                "hashes": self.hashes, "source": self.source}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ShardInfo":
        """Rebuild an entry from its manifest-JSON form."""
        return cls(name=str(payload["name"]),
                   n_documents=int(payload["n_documents"]),
                   first_doc_id=int(payload["first_doc_id"]),
                   offsets=[int(o) for o in payload.get("offsets", [])],
                   hashes=[str(h) for h in payload.get("hashes", [])],
                   source=str(payload.get("source", "")))


@dataclass
class AppendResult:
    """Outcome of one :meth:`DocumentLog.append` call.

    Attributes
    ----------
    shard:
        The new shard's :class:`ShardInfo`, or ``None`` when every
        submitted document was a duplicate (no shard is created then).
    n_appended:
        Documents actually written.
    n_duplicates:
        Documents dropped by the content-hash dedup (counting duplicates
        *within* the submitted batch as well as against the log).
    doc_ids:
        Global ids assigned to the appended documents, in input order.
    """

    shard: Optional[ShardInfo]
    n_appended: int
    n_duplicates: int
    doc_ids: List[int] = field(default_factory=list)


class DocumentLog:
    """Append-only sharded document store under one directory.

    Parameters
    ----------
    root:
        The log directory (created by :meth:`create`).

    Use :meth:`create` for a new log, :meth:`open` for an existing one;
    the constructor itself does not touch the filesystem.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.shards: List[ShardInfo] = []
        self.extra: Dict[str, Any] = {}

    # -- lifecycle ---------------------------------------------------------------------
    @classmethod
    def create(cls, root: Union[str, Path]) -> "DocumentLog":
        """Initialise an empty log at ``root`` (which must not hold one)."""
        root = Path(root)
        if (root / _MANIFEST).exists():
            raise StreamLogError(f"a document log already exists at {root}")
        log = cls(root)
        (root / _SHARD_DIR).mkdir(parents=True, exist_ok=True)
        log._write_manifest()
        return log

    @classmethod
    def open(cls, root: Union[str, Path]) -> "DocumentLog":
        """Load the manifest of an existing log at ``root``."""
        log = cls(root)
        log.reload()
        return log

    @classmethod
    def exists(cls, root: Union[str, Path]) -> bool:
        """Return whether ``root`` holds a document log."""
        return (Path(root) / _MANIFEST).exists()

    def reload(self) -> None:
        """Re-read the manifest from disk (picks up cross-process appends)."""
        path = self.root / _MANIFEST
        if not path.exists():
            raise StreamLogError(f"no document log at {self.root} "
                                 f"(missing {_MANIFEST})")
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise StreamLogError(f"{path}: unreadable manifest: {exc}") from exc
        if not isinstance(manifest, dict) or \
                manifest.get("format") != FORMAT_NAME:
            raise StreamLogError(
                f"{path}: not a {FORMAT_NAME} manifest")
        version = manifest.get("version")
        if not isinstance(version, int) or version > FORMAT_VERSION:
            raise StreamLogError(
                f"{path}: manifest version {version!r} is newer than this "
                f"reader (supports up to {FORMAT_VERSION})")
        self.shards = [ShardInfo.from_dict(entry)
                       for entry in manifest.get("shards", [])]
        self.extra = dict(manifest.get("extra", {}))
        expected = 0
        for shard in self.shards:
            if shard.first_doc_id != expected:
                raise StreamLogError(
                    f"{path}: shard {shard.name} starts at doc id "
                    f"{shard.first_doc_id}, expected {expected} — "
                    f"the shard sequence is corrupt")
            expected += shard.n_documents

    # -- introspection -----------------------------------------------------------------
    @property
    def n_documents(self) -> int:
        """Total number of (distinct) documents logged."""
        return sum(shard.n_documents for shard in self.shards)

    @property
    def n_shards(self) -> int:
        """Number of shards in the log."""
        return len(self.shards)

    def shard_names(self) -> List[str]:
        """Shard names in append (= replay) order."""
        return [shard.name for shard in self.shards]

    def known_hashes(self) -> set:
        """The content hashes of every logged document (the dedup index)."""
        return {h for shard in self.shards for h in shard.hashes}

    def _shard_path(self, name: str) -> Path:
        return self.root / _SHARD_DIR / f"{name}.jsonl"

    def shard_file_path(self, name: str) -> Path:
        """Return the on-disk path of shard ``name`` (it may not exist yet).

        Public so the serving layer can stream shard bytes over HTTP and a
        replication follower can write fetched bytes to the right place.
        """
        return self._shard_path(name)

    # -- append ------------------------------------------------------------------------
    def append(self, texts: Sequence[str], source: str = "") -> AppendResult:
        """Append a batch of documents as one new shard.

        Documents whose content hash is already in the log — or appeared
        earlier in this same batch — are dropped.  When everything is a
        duplicate no shard is created and the manifest is untouched.

        Parameters
        ----------
        texts:
            Raw document strings, in the order they should enter the
            logical corpus.
        source:
            Provenance label stored on the shard.

        Returns
        -------
        AppendResult
            The created shard (if any) plus appended/duplicate counts.
        """
        seen = self.known_hashes()
        fresh: List[Tuple[str, str]] = []
        n_duplicates = 0
        for text in texts:
            digest = _hash_text(text)
            if digest in seen:
                n_duplicates += 1
                continue
            seen.add(digest)
            fresh.append((text, digest))
        if not fresh:
            return AppendResult(shard=None, n_appended=0,
                                n_duplicates=n_duplicates)

        name = f"shard-{len(self.shards) + 1:05d}"
        first_doc_id = self.n_documents
        path = self._shard_path(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        offsets: List[int] = []
        with open(path, "w", encoding="utf-8") as handle:
            for position, (text, _digest) in enumerate(fresh):
                offsets.append(handle.tell())
                record = {"id": first_doc_id + position, "text": text}
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        shard = ShardInfo(name=name, n_documents=len(fresh),
                          first_doc_id=first_doc_id, offsets=offsets,
                          hashes=[digest for _, digest in fresh],
                          source=source)
        # Data first, then the manifest: a crash between the two leaves an
        # orphan file the next append overwrites, never a dangling entry.
        self.shards.append(shard)
        self._write_manifest()
        return AppendResult(shard=shard, n_appended=len(fresh),
                            n_duplicates=n_duplicates,
                            doc_ids=list(range(first_doc_id,
                                               first_doc_id + len(fresh))))

    def set_extra(self, **entries: Any) -> None:
        """Merge free-form entries into the manifest's ``extra`` section."""
        self.extra.update(entries)
        self._write_manifest()

    def replace_extra(self, entries: Dict[str, Any]) -> None:
        """Replace the whole ``extra`` section (replication mirrors it 1:1)."""
        self.extra = dict(entries)
        self._write_manifest()

    def adopt_shard(self, shard: ShardInfo) -> None:
        """Commit an externally replicated shard to the manifest.

        The shard *file* must already be fully on disk at
        :meth:`shard_file_path` — a follower fetches, verifies, and renames
        the bytes first, then calls this as its commit point.  The entry
        must extend the log contiguously (``first_doc_id`` equal to the
        current document count); anything else means the caller is
        replaying a divergent or out-of-order manifest.
        """
        if shard.first_doc_id != self.n_documents:
            raise StreamLogError(
                f"shard {shard.name} starts at doc id {shard.first_doc_id}, "
                f"but the log holds {self.n_documents} documents — "
                f"non-contiguous adoption refused")
        if not self._shard_path(shard.name).exists():
            raise StreamLogError(
                f"cannot adopt {shard.name}: shard file missing — the data "
                f"must be on disk before the manifest may reference it")
        self.shards.append(shard)
        self._write_manifest()

    def _write_manifest(self) -> None:
        write_json_atomic(self.root / _MANIFEST, {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "n_documents": self.n_documents,
            "shards": [shard.as_dict() for shard in self.shards],
            "extra": self.extra,
        })

    # -- reads -------------------------------------------------------------------------
    def read_shard(self, name: str) -> List[str]:
        """Return one shard's document texts, in record order."""
        shard = next((s for s in self.shards if s.name == name), None)
        if shard is None:
            raise StreamLogError(f"unknown shard {name!r}; "
                                 f"known: {self.shard_names()}")
        path = self._shard_path(name)
        texts: List[str] = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                if line.strip():
                    texts.append(str(json.loads(line)["text"]))
        if len(texts) != shard.n_documents:
            raise StreamLogError(
                f"{path}: holds {len(texts)} records but the manifest "
                f"says {shard.n_documents}")
        return texts

    def iter_texts(self) -> Iterator[str]:
        """Yield every logged document in replay order."""
        for shard in self.shards:
            yield from self.read_shard(shard.name)

    def get(self, doc_id: int) -> str:
        """Random-access one document by global id via the byte offsets."""
        for shard in self.shards:
            if shard.first_doc_id <= doc_id < shard.first_doc_id + shard.n_documents:
                position = doc_id - shard.first_doc_id
                with open(self._shard_path(shard.name), "rb") as handle:
                    handle.seek(shard.offsets[position])
                    line = handle.readline().decode("utf-8")
                return str(json.loads(line)["text"])
        raise IndexError(f"doc id {doc_id} not in log "
                         f"(holds {self.n_documents} documents)")
