"""``repro.stream`` — incremental corpus ingestion with online model refresh.

The continuous half of the reproduction: where :mod:`repro.cli` trains
once and :mod:`repro.serve` applies many, this package absorbs a document
*stream* and keeps the served model fresh — ingest → incremental
statistics merge → deterministic refresh → versioned bundle → atomic
publish → registry hot-reload, with no server restart:

* :mod:`repro.stream.log` — an append-only, sharded JSONL
  :class:`DocumentLog` with a manifest (doc ids, byte offsets, content
  hashes) giving O(delta), deduplicated, replayable ingestion;
* :mod:`repro.stream.counters` — mergeable per-shard Algorithm-1
  statistics (:class:`ShardStats`, :class:`AccumulatedCounts`): each shard
  is tokenized and counted exactly once, and the running merge filters at
  refresh time into a result bit-identical to mining the whole snapshot;
* :mod:`repro.stream.updater` — :class:`TopicStream`, the on-disk state
  machine whose :meth:`~TopicStream.refresh` re-fits segmentation +
  PhraseLDA deterministically over the snapshot and atomically publishes
  a versioned bundle at ``models/current.npz``;
* :mod:`repro.stream.supervisor` — :class:`StreamSupervisor`, the
  background worker that watches the log and runs refreshes off the
  request path while a live server keeps answering from the previous
  version.

Drive it from the shell with ``repro ingest`` / ``repro refresh`` /
``repro serve --stream`` (see ``docs/streaming.md``).
"""

from repro.stream.counters import AccumulatedCounts, ShardStats, replay_iterations
from repro.stream.log import AppendResult, DocumentLog, StreamLogError
from repro.stream.supervisor import StreamSupervisor
from repro.stream.updater import (
    IngestReport,
    RefreshReport,
    StreamConfig,
    StreamError,
    TopicStream,
)

__all__ = [
    "AccumulatedCounts",
    "AppendResult",
    "DocumentLog",
    "IngestReport",
    "RefreshReport",
    "ShardStats",
    "StreamConfig",
    "StreamError",
    "StreamLogError",
    "StreamSupervisor",
    "TopicStream",
    "replay_iterations",
]
