"""Background refresh worker: watch the log, re-fit, publish, hot-swap.

:class:`StreamSupervisor` runs the refresh loop off the request path, in
the same condition-guarded daemon-worker style as the serving layer's
:class:`~repro.serve.batching.MicroBatcher`.  Its job:

1. poll the stream's on-disk state (cross-process safe — every poll
   re-opens the manifests, so documents ingested by *other* processes are
   seen) or wake immediately on :meth:`notify`;
2. when the refresh policy is satisfied, run
   :meth:`~repro.stream.updater.TopicStream.refresh` — segmentation and
   PhraseLDA happen entirely on this worker thread;
3. the refresh's atomic publish replaces ``models/current.npz``, which a
   live :class:`~repro.serve.registry.ModelRegistry` hot-reloads on its
   next request — a server keeps answering ``/v1/infer`` throughout, from
   the old version until the instant the new one is resident.

Refresh failures are recorded three ways and the loop keeps running: the
``stream_refresh_errors_total`` counter, :attr:`last_error`, and one
structured JSON event line on stderr
(:func:`repro.obs.logging.log_event`) — so a failing refresh is visible
in a scrape *and* in the process log without attaching a debugger, while
the previous published version keeps serving.  Consecutive failures back
the poll off exponentially (capped at ``max_backoff``) instead of
hammering a broken stream every tick, :meth:`notify` still wakes the
worker immediately, and the first clean poll after a run of errors emits
a structured ``stream_refresh_recovered`` event plus the
``stream_refresh_recoveries_total`` counter.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Callable, Optional, Union

from repro.obs.logging import log_event
from repro.obs.profile import profiled
from repro.stream.updater import RefreshReport, TopicStream
from repro.utils.retry import RetryPolicy
from repro.utils.timing import MetricsRegistry


class StreamSupervisor:
    """Watches a stream directory and publishes refreshes in the background.

    Parameters
    ----------
    root:
        The stream directory (see
        :class:`~repro.stream.updater.TopicStream`).
    poll_interval:
        Seconds between state polls when nothing calls :meth:`notify`.
    metrics:
        Optional shared metrics registry; refresh counters/latencies and
        errors are recorded into it (alongside the serving metrics when
        the supervisor runs inside ``repro serve``).
    on_publish:
        Optional callback invoked with each successful
        :class:`~repro.stream.updater.RefreshReport` (on the worker
        thread).
    max_backoff:
        Cap (seconds) on the exponential poll backoff applied after
        consecutive refresh errors.
    profile_dir:
        When set, every refresh runs under the sampling profiler
        (:func:`repro.obs.profile.profiled`) and its collapsed-stack
        flamegraph text is written to
        ``<profile_dir>/refresh-v<version>.collapsed`` — continuous
        profiling of the one code path that periodically burns minutes
        of CPU off the request path.
    """

    def __init__(self, root: Union[str, Path], poll_interval: float = 1.0,
                 metrics: Optional[MetricsRegistry] = None,
                 on_publish: Optional[Callable[[RefreshReport], None]] = None,
                 max_backoff: float = 30.0,
                 profile_dir: Optional[Union[str, Path]] = None,
                 ) -> None:
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if max_backoff < poll_interval:
            raise ValueError("max_backoff must be >= poll_interval")
        self.root = Path(root)
        self.poll_interval = poll_interval
        self.max_backoff = max_backoff
        self._backoff = RetryPolicy(retries=1_000_000,
                                    base_delay=poll_interval,
                                    max_delay=max_backoff, jitter=0.1)
        self._consecutive_errors = 0
        self.metrics = metrics or MetricsRegistry()
        self.on_publish = on_publish
        self.profile_dir = Path(profile_dir) if profile_dir is not None \
            else None
        self.last_report: Optional[RefreshReport] = None
        self.last_error: Optional[str] = None
        self._condition = threading.Condition()
        self._stopped = False
        self._poked = False
        self._worker: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------------------
    def start(self) -> None:
        """Start the worker thread (idempotent)."""
        with self._condition:
            if self._worker is not None and self._worker.is_alive():
                return
            self._stopped = False
            self._worker = threading.Thread(target=self._run,
                                            name="repro-stream-supervisor",
                                            daemon=True)
            self._worker.start()

    def stop(self, timeout: float = 30.0) -> None:
        """Stop the worker (waits for an in-flight refresh to finish)."""
        with self._condition:
            self._stopped = True
            self._condition.notify_all()
        worker = self._worker
        if worker is not None and worker.is_alive():
            worker.join(timeout)

    def notify(self) -> None:
        """Wake the worker immediately (e.g. right after an ingest)."""
        with self._condition:
            self._poked = True
            self._condition.notify_all()

    # -- observation -------------------------------------------------------------------
    @property
    def published_version(self) -> int:
        """The stream's current published version (0 before any publish)."""
        try:
            return TopicStream.open(self.root).published_version
        except Exception:
            return 0

    def wait_for_version(self, version: int,
                         timeout: float = 60.0) -> bool:
        """Block until the published version reaches ``version``.

        Returns ``False`` on timeout.  Intended for tests and smoke
        scripts that need to observe a background publish.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.published_version >= version:
                return True
            time.sleep(min(0.05, self.poll_interval))
        return self.published_version >= version

    # -- worker ------------------------------------------------------------------------
    def _poll_delay(self) -> float:
        """Current poll wait: base interval, backed off after errors."""
        if not self._consecutive_errors:
            return self.poll_interval
        return self._backoff.delay(min(self._consecutive_errors, 16),
                                   token=str(self.root))

    def _wait_for_wakeup(self) -> bool:
        """Sleep until poked, the (possibly backed-off) poll delay
        elapses, or stop; returns whether the loop should keep running."""
        with self._condition:
            if not self._poked and not self._stopped:
                self._condition.wait(timeout=self._poll_delay())
            self._poked = False
            return not self._stopped

    def _run(self) -> None:
        while self._wait_for_wakeup():
            errors_before = self._consecutive_errors
            self._poll_once()
            if errors_before and self._consecutive_errors == errors_before:
                # A full poll completed without a new error: the stream
                # recovered.  Say so in the same three channels errors use.
                self._consecutive_errors = 0
                self.metrics.increment("stream_refresh_recoveries_total")
                log_event("stream_refresh_recovered", stream=str(self.root),
                          after_errors=errors_before)

    def _poll_once(self) -> None:
        """One supervision step: reopen state, refresh if the policy says so."""
        try:
            stream = TopicStream.open(self.root, metrics=self.metrics)
        except Exception as exc:
            # The stream may not exist yet (e.g. the first ingest has not
            # happened); keep watching rather than dying.
            self._record_error(f"cannot open stream: {exc}")
            return
        if not stream.should_refresh():
            return
        try:
            report = self._refresh(stream)
        except Exception as exc:
            self._record_error(f"refresh failed: {exc}")
            return
        if report is None:
            return
        self.last_report = report
        self.last_error = None
        if self.on_publish is not None:
            try:
                self.on_publish(report)
            except Exception as exc:  # callbacks must not kill the loop
                self._record_error(f"on_publish callback failed: {exc}")

    def _refresh(self, stream: TopicStream) -> Optional[RefreshReport]:
        """Run one refresh, profiled into ``profile_dir`` when configured."""
        if self.profile_dir is None:
            return stream.refresh()
        with profiled() as profiler:
            report = stream.refresh()
        if report is not None:
            try:
                self.profile_dir.mkdir(parents=True, exist_ok=True)
                path = self.profile_dir / \
                    f"refresh-v{report.version}.collapsed"
                path.write_text(profiler.collapsed(), encoding="utf-8")
                log_event("stream_refresh_profile", stream=str(self.root),
                          version=report.version, profile=str(path),
                          samples=profiler.n_samples)
            except OSError as exc:  # profiling must never fail a refresh
                log_event("stream_refresh_profile_error",
                          stream=str(self.root), error=str(exc))
        return report

    def _record_error(self, message: str) -> None:
        self.last_error = message
        self._consecutive_errors += 1
        self.metrics.increment("stream_refresh_errors_total")
        log_event("stream_refresh_error", stream=str(self.root),
                  error=message,
                  consecutive_errors=self._consecutive_errors)
