"""Stream state machine: ingest shards, merge statistics, publish bundles.

:class:`TopicStream` ties the pieces of :mod:`repro.stream` into one
on-disk state machine under a single directory::

    stream/
      stream.json            # config (frozen at create) + published version
      log/                   # the append-only document log (repro.stream.log)
      stats/shard-*.npz      # per-shard tokenized docs + raw phrase counts
      vocabulary.json        # shared vocabulary, full surface-form fidelity
      counts.npz             # accumulated raw counts over all shards
      models/
        model-v00001.npz     # every published version, immutable
        current.npz          # stable serving path, atomically replaced

**Ingest** is O(delta): a document batch is deduplicated and appended to
the log, tokenized once against the shared growing vocabulary, counted
once (Algorithm 1 at support 1), and merged into ``counts.npz``.  Old
shards are never re-read, re-tokenized, or re-counted.

**Refresh** rebuilds the model over the accumulated snapshot: the merged
counts are filtered into a miner-equivalent result
(:meth:`~repro.stream.counters.AccumulatedCounts.mining_result`),
segmentation and PhraseLDA re-run deterministically (fixed config seed),
and the fitted bundle is written to a new immutable version file, then
*published* by atomically replacing ``models/current.npz`` — the stable
path a live :class:`~repro.serve.registry.ModelRegistry` hot-reloads from
without a restart.

**Determinism contract** — a refresh over ``N`` ingested documents
produces a bundle whose vocabulary, phrase table, and topic tables are
bit-identical to running the offline ``mine``/``fit`` pipeline on those
same ``N`` documents (log-replay order) with the same configuration and
seed.  The contract is what makes streamed models auditable: any
published version can be reproduced from a corpus snapshot alone.

Crash consistency: the log manifest is the commit point for ingest, and
the derived state files are written in the fixed order *stats →
vocabulary → counts* with the vocabulary recording which shards it has
absorbed.  :meth:`TopicStream._recover` can therefore always finish a
half-done ingest: shards the vocabulary has not absorbed are re-encoded
from the log (the only case any text is re-read), and shards absorbed but
not yet merged re-merge from their stats file.  Writers are single-process
by design (one ingester at a time); concurrent *readers* — refreshes,
model servers — are always safe.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.phrase_construction import PhraseConstructionConfig
from repro.core.phrase_lda import PhraseLDA, PhraseLDAConfig
from repro.core.segmentation import CorpusSegmenter
from repro.core.topmine import ToPMineConfig
from repro.io.artifacts import ModelBundle, save_bundle
from repro.stream.counters import (
    AccumulatedCounts,
    ShardStats,
    StreamStatsError,
    encode_texts,
)
from repro.stream.log import AppendResult, DocumentLog, write_json_atomic
from repro.text.corpus import Corpus
from repro.text.flat import FlatChunks
from repro.text.preprocess import PreprocessConfig, Preprocessor
from repro.text.vocabulary import Vocabulary
from repro.utils.timing import MetricsRegistry, Stopwatch

STREAM_FORMAT = "repro.stream"
STREAM_VERSION = 1

_STREAM_FILE = "stream.json"
_LOG_DIR = "log"
_STATS_DIR = "stats"
_VOCAB_FILE = "vocabulary.json"
_COUNTS_FILE = "counts.npz"
_MODELS_DIR = "models"
CURRENT_MODEL = "current.npz"


class StreamError(Exception):
    """The stream directory is missing, corrupt, or was misused."""


def _dataclass_from_dict(cls, payload: Dict[str, Any]):
    """Rebuild a flat dataclass, ignoring unknown (forward-compat) keys."""
    known = {f.name for f in fields(cls)}
    return cls(**{key: value for key, value in payload.items() if key in known})


@dataclass
class StreamConfig:
    """Frozen-at-create configuration of a topic stream.

    The model half mirrors ``repro fit`` and the mining half mirrors
    ``repro mine``; fixing both (plus the seed) at stream creation is what
    makes every refresh deterministic and offline-reproducible.

    Parameters
    ----------
    n_topics, n_iterations, alpha, beta, optimize_hyperparameters:
        PhraseLDA parameters (as in
        :class:`~repro.core.phrase_lda.PhraseLDAConfig`).
    seed:
        The seed every refresh runs with.
    min_support:
        Fixed mining support ε; ``None`` rescales with the snapshot's
        token count on every refresh (the offline default).
    significance_threshold:
        Segmentation merge threshold α.
    max_phrase_length:
        Cap on mined/constructed phrase length (also caps the raw
        per-shard counting).
    engine:
        Mining/segmentation engine (``"auto"``, ``"numpy"``,
        ``"reference"``).
    lda_engine:
        PhraseLDA sampling engine.
    n_jobs:
        Segmentation worker processes at refresh.
    preprocess:
        Preprocessing options; ``min_word_frequency`` must stay ≤ 1 —
        corpus-global rare-word dropping is a two-pass operation that
        cannot be computed incrementally.
    refresh_min_documents:
        Refresh policy: a (non-forced) refresh runs only once at least
        this many documents are pending since the last published version.
    source:
        Label recorded in published bundle metadata.
    """

    n_topics: int = 10
    n_iterations: int = 100
    alpha: Optional[float] = None
    beta: float = 0.01
    optimize_hyperparameters: bool = False
    seed: int = 7
    min_support: Optional[int] = None
    significance_threshold: float = 5.0
    max_phrase_length: Optional[int] = None
    engine: str = "auto"
    lda_engine: str = "auto"
    n_jobs: int = 1
    preprocess: PreprocessConfig = field(default_factory=PreprocessConfig)
    refresh_min_documents: int = 1
    source: str = "stream"

    def validate(self) -> None:
        """Raise :class:`StreamError` on configurations streams cannot honour."""
        if self.refresh_min_documents < 1:
            raise StreamError("refresh_min_documents must be >= 1")
        if self.min_support is not None and self.min_support < 1:
            raise StreamError("min_support must be >= 1 when fixed")
        if self.preprocess.min_word_frequency > 1:
            raise StreamError(
                "streams cannot use preprocess.min_word_frequency > 1: "
                "corpus-global rare-word dropping needs a second pass over "
                "all documents, which incremental ingestion never performs")

    def construction_config(self) -> PhraseConstructionConfig:
        """Segmenter parameters for refreshes (matches ``repro mine``)."""
        return PhraseConstructionConfig(
            significance_threshold=self.significance_threshold,
            max_phrase_words=self.max_phrase_length,
            engine=self.engine, n_jobs=self.n_jobs)

    def phrase_lda_config(self) -> PhraseLDAConfig:
        """PhraseLDA parameters for refreshes (matches ``repro fit``)."""
        return PhraseLDAConfig(
            n_topics=self.n_topics, alpha=self.alpha, beta=self.beta,
            n_iterations=self.n_iterations,
            optimize_hyperparameters=self.optimize_hyperparameters,
            seed=self.seed, engine=self.lda_engine)

    def topmine_config(self) -> ToPMineConfig:
        """The equivalent offline pipeline configuration.

        Feeding the stream's logged documents through
        :class:`~repro.core.topmine.ToPMine` under this configuration (and
        PhraseLDA under :meth:`phrase_lda_config`) reproduces a refresh
        bit for bit — the determinism contract's offline side.
        """
        return ToPMineConfig(
            n_topics=self.n_topics, min_support=self.min_support,
            significance_threshold=self.significance_threshold,
            max_phrase_length=self.max_phrase_length,
            n_iterations=self.n_iterations, alpha=self.alpha, beta=self.beta,
            optimize_hyperparameters=self.optimize_hyperparameters,
            preprocess=self.preprocess, seed=self.seed,
            mining_engine=self.engine, n_jobs=self.n_jobs)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (stored in ``stream.json``)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "StreamConfig":
        """Rebuild a config, tolerating unknown forward-compat keys."""
        payload = dict(payload)
        preprocess = _dataclass_from_dict(PreprocessConfig,
                                          payload.pop("preprocess", {}) or {})
        config = _dataclass_from_dict(cls, payload)
        config.preprocess = preprocess
        return config


@dataclass
class IngestReport:
    """Outcome of one :meth:`TopicStream.ingest` call.

    Attributes
    ----------
    shard:
        Name of the created shard, or ``None`` when the whole batch was
        duplicates.
    n_documents, n_duplicates:
        Appended vs. dropped document counts.
    n_tokens:
        Chunked tokens tokenized and counted (the O(delta) work done).
    vocabulary_size:
        Vocabulary size after the ingest.
    pending_documents:
        Documents ingested since the last published version.
    seconds:
        Wall-clock of the ingest.
    """

    shard: Optional[str]
    n_documents: int
    n_duplicates: int
    n_tokens: int
    vocabulary_size: int
    pending_documents: int
    seconds: float


@dataclass
class RefreshReport:
    """Outcome of one successful :meth:`TopicStream.refresh`.

    Attributes
    ----------
    version:
        The published stream version (1-based, monotonic).
    path:
        The immutable versioned bundle file.
    current_path:
        The stable serving path the version was published to.
    n_documents:
        Snapshot size the model was fitted on.
    seconds:
        Wall-clock of the whole refresh.
    timings:
        Per-stage seconds (``mining_merge``, ``segmentation``,
        ``topic_modeling``, ``publish``).
    """

    version: int
    path: Path
    current_path: Path
    n_documents: int
    seconds: float
    timings: Dict[str, float] = field(default_factory=dict)


class TopicStream:
    """An incrementally-updatable ToPMine model rooted at one directory.

    Use :meth:`create` once, then any number of :meth:`ingest` /
    :meth:`refresh` cycles (across processes — every instance reads the
    on-disk state fresh).  Writers must not run concurrently; readers may.

    Parameters
    ----------
    root:
        The stream directory.
    metrics:
        Optional shared :class:`~repro.utils.timing.MetricsRegistry`;
        ingest/refresh counters and latencies are recorded into it.
    """

    def __init__(self, root: Union[str, Path],
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.root = Path(root)
        self.metrics = metrics or MetricsRegistry()
        self.config = StreamConfig()
        self.published_version = 0
        self.published_documents = 0
        self.log: Optional[DocumentLog] = None

    # -- lifecycle ---------------------------------------------------------------------
    @classmethod
    def exists(cls, root: Union[str, Path]) -> bool:
        """Return whether ``root`` holds a stream."""
        return (Path(root) / _STREAM_FILE).exists()

    @classmethod
    def create(cls, root: Union[str, Path],
               config: Optional[StreamConfig] = None,
               metrics: Optional[MetricsRegistry] = None) -> "TopicStream":
        """Initialise a new stream at ``root`` with a frozen ``config``."""
        root = Path(root)
        if cls.exists(root):
            raise StreamError(f"a stream already exists at {root}")
        stream = cls(root, metrics=metrics)
        stream.config = config or StreamConfig()
        stream.config.validate()
        root.mkdir(parents=True, exist_ok=True)
        stream.log = DocumentLog.create(root / _LOG_DIR)
        (root / _STATS_DIR).mkdir(exist_ok=True)
        (root / _MODELS_DIR).mkdir(exist_ok=True)
        stream._write_stream_file()
        return stream

    @classmethod
    def open(cls, root: Union[str, Path],
             metrics: Optional[MetricsRegistry] = None) -> "TopicStream":
        """Open an existing stream (reads config + published state only)."""
        root = Path(root)
        stream = cls(root, metrics=metrics)
        path = root / _STREAM_FILE
        if not path.exists():
            raise StreamError(f"no stream at {root} (missing {_STREAM_FILE}); "
                              f"create one with `repro ingest` or "
                              f"TopicStream.create()")
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise StreamError(f"{path}: unreadable stream file: {exc}") from exc
        if payload.get("format") != STREAM_FORMAT:
            raise StreamError(f"{path}: not a {STREAM_FORMAT} file")
        if int(payload.get("version", 0)) > STREAM_VERSION:
            raise StreamError(
                f"{path}: stream version {payload.get('version')} is newer "
                f"than this reader (supports up to {STREAM_VERSION})")
        stream.config = StreamConfig.from_dict(payload.get("config", {}))
        published = payload.get("published", {})
        stream.published_version = int(published.get("version", 0))
        stream.published_documents = int(published.get("n_documents", 0))
        stream.log = DocumentLog.open(root / _LOG_DIR)
        return stream

    def _write_stream_file(self) -> None:
        write_json_atomic(self.root / _STREAM_FILE, {
            "format": STREAM_FORMAT,
            "version": STREAM_VERSION,
            "config": self.config.as_dict(),
            "published": {"version": self.published_version,
                          "n_documents": self.published_documents},
        })

    # -- paths -------------------------------------------------------------------------
    @property
    def models_dir(self) -> Path:
        """Directory holding every published bundle version."""
        return self.root / _MODELS_DIR

    @property
    def current_model_path(self) -> Path:
        """The stable serving path (atomically replaced on publish)."""
        return self.models_dir / CURRENT_MODEL

    def version_path(self, version: int) -> Path:
        """The immutable bundle path of one published version."""
        return self.models_dir / f"model-v{version:05d}.npz"

    def _stats_path(self, shard_name: str) -> Path:
        return self.root / _STATS_DIR / f"{shard_name}.npz"

    # -- derived-state persistence -----------------------------------------------------
    def _load_vocabulary(self) -> tuple:
        """Return ``(vocabulary, absorbed_shard_names)`` from disk."""
        path = self.root / _VOCAB_FILE
        if not path.exists():
            return Vocabulary(), []
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise StreamError(f"{path}: unreadable vocabulary state: "
                              f"{exc}") from exc
        vocabulary = Vocabulary.from_state(
            (row[0], row[1], [(form, count) for form, count in row[2]])
            for row in payload.get("entries", []))
        return vocabulary, [str(s) for s in payload.get("shards", [])]

    def _save_vocabulary(self, vocabulary: Vocabulary,
                         shard_names: List[str]) -> None:
        write_json_atomic(self.root / _VOCAB_FILE, {
            "format": "repro.stream.vocabulary",
            "version": 1,
            "shards": list(shard_names),
            "entries": [[word, frequency, [[form, count]
                                           for form, count in forms]]
                        for word, frequency, forms
                        in vocabulary.export_state()],
        })

    def _load_counts(self) -> AccumulatedCounts:
        """Load the accumulated counts, treating corruption as absence.

        ``counts.npz`` is derived state: every merged shard's stats file
        still exists, so an unreadable archive (e.g. disk truncation) is
        rebuilt by the recovery re-merge rather than wedging the stream.
        """
        path = self.root / _COUNTS_FILE
        if not path.exists():
            return AccumulatedCounts()
        try:
            return AccumulatedCounts.load(path)
        except StreamStatsError:
            return AccumulatedCounts()

    # -- recovery ----------------------------------------------------------------------
    def _recover(self, persist: bool = True) -> tuple:
        """Finish any half-done ingest; return ``(vocabulary, counts)``.

        The log manifest is the commit point, so recovery replays forward:
        logged shards the vocabulary has not absorbed are re-encoded from
        the log (the only case any text is re-read), and absorbed shards
        the accumulated counts miss are re-merged from their stats files.

        Parameters
        ----------
        persist:
            Write the recovered derived state back to disk.  Only the
            *ingest* path persists: refreshes (including the background
            supervisor's, which may run in a different process) recover in
            memory only, so the single on-disk writer stays the ingester —
            a supervisor poll landing inside an external ingest's commit
            window must never race it file for file.

        Returns
        -------
        (vocabulary, counts, recovered_documents)
            The up-to-date vocabulary and accumulated counts, plus the
            encoded documents of any shard that was recovered during this
            call, keyed by shard name — with ``persist=False`` those exist
            *only* here, so snapshot builders must consult the mapping
            before reaching for the stats files.
        """
        assert self.log is not None
        self.log.reload()
        vocabulary, absorbed = self._load_vocabulary()
        counts = self._load_counts()
        logged = self.log.shard_names()
        if absorbed != logged[:len(absorbed)]:
            raise StreamError(
                f"stream state at {self.root} is corrupt: vocabulary "
                f"absorbed shards {absorbed} but the log holds {logged}")
        if counts.shard_names != absorbed[:len(counts.shard_names)]:
            raise StreamError(
                f"stream state at {self.root} is corrupt: counts merged "
                f"{counts.shard_names} but the vocabulary absorbed {absorbed}")

        # Merge order must follow the log, so first catch counts up to the
        # shards the vocabulary already absorbed, then replay the rest.
        for name in absorbed[len(counts.shard_names):]:
            counts.merge_shard(ShardStats.load(self._stats_path(name)))
            if persist:
                counts.save(self.root / _COUNTS_FILE)
        preprocessor = None
        recovered_documents: Dict[str, List[List[List[int]]]] = {}
        for name in logged[len(absorbed):]:
            # The vocabulary predates this shard, so re-encoding from the
            # logged text reproduces the interrupted ingest exactly.
            if preprocessor is None:
                preprocessor = Preprocessor(self.config.preprocess)
            documents = encode_texts(self.log.read_shard(name), preprocessor,
                                     vocabulary)
            stats = ShardStats.compute(name, documents,
                                       self.config.max_phrase_length,
                                       self.config.engine)
            absorbed.append(name)
            counts.merge_shard(stats)
            recovered_documents[name] = documents
            if persist:
                stats.save(self._stats_path(name))
                self._save_vocabulary(vocabulary, absorbed)
                counts.save(self.root / _COUNTS_FILE)
        return vocabulary, counts, recovered_documents

    # -- ingest ------------------------------------------------------------------------
    @property
    def n_documents(self) -> int:
        """Total distinct documents ingested."""
        assert self.log is not None
        return self.log.n_documents

    @property
    def pending_documents(self) -> int:
        """Documents ingested since the last published version."""
        return self.n_documents - self.published_documents

    def ingest(self, texts: Sequence[str], source: str = "") -> IngestReport:
        """Append a document batch and absorb its statistics (O(delta)).

        Parameters
        ----------
        texts:
            Raw document strings.
        source:
            Provenance label stored on the log shard.

        Returns
        -------
        IngestReport
            Appended/duplicate counts and the delta work performed.
        """
        assert self.log is not None
        start = time.perf_counter()
        vocabulary, counts, _recovered = self._recover()
        result: AppendResult = self.log.append(texts, source=source)
        self.metrics.increment("stream_duplicate_documents_total",
                               result.n_duplicates)
        n_tokens = 0
        if result.shard is not None:
            preprocessor = Preprocessor(self.config.preprocess)
            documents = encode_texts(self.log.read_shard(result.shard.name),
                                     preprocessor, vocabulary)
            stats = ShardStats.compute(result.shard.name, documents,
                                       self.config.max_phrase_length,
                                       self.config.engine)
            n_tokens = stats.total_tokens
            # Commit order (stats → vocabulary → counts) matches _recover.
            stats.save(self._stats_path(result.shard.name))
            self._save_vocabulary(vocabulary, self.log.shard_names())
            counts.merge_shard(stats)
            counts.save(self.root / _COUNTS_FILE)
            self.metrics.increment("stream_ingested_documents_total",
                                   result.n_appended)
            self.metrics.increment("stream_ingest_tokens_total", n_tokens)
        seconds = time.perf_counter() - start
        self.metrics.observe("stream_ingest_seconds", seconds)
        return IngestReport(
            shard=result.shard.name if result.shard else None,
            n_documents=result.n_appended,
            n_duplicates=result.n_duplicates,
            n_tokens=n_tokens,
            vocabulary_size=len(vocabulary),
            pending_documents=self.pending_documents,
            seconds=seconds)

    # -- refresh -----------------------------------------------------------------------
    def should_refresh(self) -> bool:
        """Whether the refresh policy is currently satisfied."""
        return self.pending_documents >= self.config.refresh_min_documents

    def refresh(self, force: bool = False) -> Optional[RefreshReport]:
        """Re-fit over the accumulated snapshot and publish a new version.

        Parameters
        ----------
        force:
            Run even when the refresh policy is not satisfied (pending
            documents below ``refresh_min_documents``).  A refresh with
            *zero* ingested documents is an error either way.

        Returns
        -------
        RefreshReport or None
            ``None`` when the policy declined (and ``force`` was off).
        """
        assert self.log is not None
        start = time.perf_counter()
        if not force and not self.should_refresh():
            return None
        # Read-only recovery: the refresh may run concurrently with an
        # external ingester (the serve --stream supervisor does), so it
        # must never write the ingest-owned state files.
        vocabulary, counts, recovered = self._recover(persist=False)
        if counts.n_documents == 0:
            raise StreamError(f"stream at {self.root} has no documents; "
                              f"ingest before refreshing")

        watch = Stopwatch()
        corpus = Corpus(vocabulary=vocabulary, name=self.config.source)
        for name in self.log.shard_names():
            documents = recovered.get(name)
            if documents is None:
                documents = ShardStats.load(self._stats_path(name)).documents
            for chunks in documents:
                corpus.add_document(chunks)

        with watch.measure("mining_merge"):
            mining = counts.mining_result(
                FlatChunks.from_corpus(corpus),
                min_support=self.config.min_support,
                max_length=self.config.max_phrase_length)
        with watch.measure("segmentation"):
            segmenter = CorpusSegmenter(mining, self.config.construction_config())
            segmented = segmenter.segment(corpus)
        with watch.measure("topic_modeling"):
            state = PhraseLDA(self.config.phrase_lda_config()).fit(segmented)

        version = self._next_version()
        bundle = ModelBundle.from_fit(
            segmented, state, mining,
            construction=self.config.construction_config(),
            preprocess=self.config.preprocess,
            metadata={"source": self.config.source,
                      "seed": self.config.seed,
                      "n_iterations": self.config.n_iterations,
                      "stream_version": version,
                      "n_documents": counts.n_documents,
                      # Publish timestamp: servers compute the publish-to-
                      # resident swap lag from it (registry_swap_lag_seconds
                      # and /v1/models' swap_lag_seconds).  Metadata only —
                      # the determinism contract compares functional
                      # manifest sections, never metadata.
                      "published_at": time.time()})
        with watch.measure("publish"):
            path = save_bundle(self.version_path(version), bundle)
            self._publish(path)
            self.published_version = version
            self.published_documents = counts.n_documents
            self._write_stream_file()

        seconds = time.perf_counter() - start
        self.metrics.increment("stream_refreshes_total")
        self.metrics.observe("stream_refresh_seconds", seconds)
        return RefreshReport(version=version, path=path,
                             current_path=self.current_model_path,
                             n_documents=counts.n_documents,
                             seconds=seconds, timings=watch.as_dict())

    def _next_version(self) -> int:
        """The next unused version number.

        Derived from both ``stream.json`` *and* the version files on disk:
        a crash between writing ``model-v000NN.npz`` and recording version
        ``NN`` (or a competing refresher) must never lead to an existing —
        immutable — version file being overwritten.
        """
        highest = self.published_version
        for path in self.models_dir.glob("model-v*.npz"):
            suffix = path.stem.rpartition("-v")[2]
            if suffix.isdigit():
                highest = max(highest, int(suffix))
        return highest + 1

    def _publish(self, versioned_path: Path) -> None:
        """Atomically point ``current.npz`` at the new version.

        A copy of the immutable version file is moved into place with
        ``os.replace``, so concurrent readers (a serving registry
        mid-``np.load``) see either the old or the new bundle in full —
        never a torn file.  The registry's stat-based hot-reload picks the
        change up on its next request.
        """
        temporary = self.current_model_path.with_name(CURRENT_MODEL + ".tmp")
        shutil.copyfile(versioned_path, temporary)
        os.replace(temporary, self.current_model_path)

    # -- introspection -----------------------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        """JSON-friendly stream summary (used by the CLI)."""
        assert self.log is not None
        return {
            "root": str(self.root),
            "n_documents": self.n_documents,
            "n_shards": self.log.n_shards,
            "published_version": self.published_version,
            "published_documents": self.published_documents,
            "pending_documents": self.pending_documents,
            "current_model": str(self.current_model_path)
            if self.current_model_path.exists() else None,
            "config": self.config.as_dict(),
        }
