"""Deterministic fault injection for replication and serving chaos tests.

The chaos tests need real network failures — refused connections, bodies
cut mid-flight, reads that stall — without wall-clock randomness, so every
fault here is *scheduled*: a :class:`FaultInjector` maps connection
indices (accept order on the proxy) to :class:`Fault` actions, and a
:class:`FaultyProxy` sits between a client and an upstream server applying
them.  A single-threaded client (like the log follower, which performs
one HTTP call at a time over ``Connection: close``) therefore hits each
fault at an exactly reproducible point in its protocol.

Supported faults:

``refuse``
    Accept then immediately close, before any bytes flow — the client
    sees a connection reset/refused-style error.
``truncate``
    Proxy normally, but close both directions after ``after_bytes`` of
    *response* bytes — the client sees a short body (torn mid-flight).
``slow``
    Delay each response chunk by ``delay`` seconds — with a client read
    timeout shorter than ``delay`` this is a deterministic read timeout.
``hold``
    Block before contacting the upstream until the injector's
    :meth:`FaultInjector.release` fires — the synchronization primitive
    chaos tests use to freeze a follower at a known protocol point (e.g.
    "mid-replay, before shard 2") so a SIGKILL lands deterministically.

:func:`kill_process` / :func:`terminate_process` complete the matrix with
process-level faults (SIGKILL / SIGTERM) for crash-recovery tests.
"""

from __future__ import annotations

import signal
import socket
import struct
import threading
from dataclasses import dataclass
from typing import Dict, Optional

_CHUNK = 16384


@dataclass(frozen=True)
class Fault:
    """One scheduled fault.

    Attributes
    ----------
    kind:
        ``"refuse"``, ``"truncate"``, ``"slow"``, or ``"hold"``.
    after_bytes:
        For ``truncate``: response bytes forwarded before the cut.
    delay:
        For ``slow``: seconds each response chunk is delayed.
    """

    kind: str
    after_bytes: int = 0
    delay: float = 0.0

    def __post_init__(self) -> None:
        """Validate the fault kind and its parameters."""
        if self.kind not in ("refuse", "truncate", "slow", "hold"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.after_bytes < 0 or self.delay < 0:
            raise ValueError("after_bytes and delay must be >= 0")


class FaultInjector:
    """Deterministic fault plan keyed by proxy connection index.

    Parameters
    ----------
    plan:
        ``{connection_index: Fault}`` — indices count accepted proxy
        connections from 0 in accept order.
    default:
        Fault applied to every connection *not* in ``plan`` (``None``
        passes them through untouched).
    """

    def __init__(self, plan: Optional[Dict[int, Fault]] = None,
                 default: Optional[Fault] = None) -> None:
        self.plan = dict(plan or {})
        self.default = default
        self._lock = threading.Lock()
        self._connections = 0
        self._release = threading.Event()

    def next_index(self) -> int:
        """Claim the next connection index (thread-safe)."""
        with self._lock:
            index = self._connections
            self._connections += 1
            return index

    @property
    def connections(self) -> int:
        """Connections the proxy has accepted so far."""
        with self._lock:
            return self._connections

    def fault_for(self, index: int) -> Optional[Fault]:
        """The fault scheduled for connection ``index`` (or the default)."""
        return self.plan.get(index, self.default)

    def release(self) -> None:
        """Unblock every current and future ``hold`` fault."""
        self._release.set()

    def wait_released(self, timeout: Optional[float] = None) -> bool:
        """Block until :meth:`release` (used by ``hold`` connections)."""
        return self._release.wait(timeout)


class FaultyProxy:
    """TCP proxy that applies a :class:`FaultInjector`'s plan.

    Listens on an ephemeral local port (read it from :attr:`port` /
    :attr:`url` after :meth:`start`) and forwards each accepted
    connection to ``upstream_host:upstream_port``, subject to the fault
    scheduled for its index.  Designed for HTTP clients that open one
    connection per request, which makes connection order — and therefore
    fault placement — deterministic.
    """

    def __init__(self, upstream_host: str, upstream_port: int,
                 injector: Optional[FaultInjector] = None,
                 host: str = "127.0.0.1") -> None:
        self.upstream = (upstream_host, upstream_port)
        self.injector = injector or FaultInjector()
        self.host = host
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._threads: list = []

    # -- lifecycle ---------------------------------------------------------------------
    def start(self) -> "FaultyProxy":
        """Bind, listen, and start the accept loop; returns ``self``."""
        if self._listener is not None:
            raise RuntimeError("proxy already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, 0))
        listener.listen(32)
        # A blocking accept() is not reliably woken by close() from
        # another thread; poll with a short timeout so stop() is prompt.
        listener.settimeout(0.1)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="faulty-proxy-accept", daemon=True)
        self._accept_thread.start()
        return self

    @property
    def port(self) -> int:
        """The proxy's bound port (after :meth:`start`)."""
        if self._listener is None:
            raise RuntimeError("proxy not started")
        return self._listener.getsockname()[1]

    @property
    def url(self) -> str:
        """Base URL clients should point at instead of the upstream."""
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        """Stop accepting, release held connections, close everything."""
        self._stopping.set()
        self.injector.release()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        for thread in self._threads:
            thread.join(timeout=5)

    def __enter__(self) -> "FaultyProxy":
        """Start on context entry."""
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        """Stop on context exit."""
        self.stop()

    # -- internals ---------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            client.settimeout(None)  # pumps block; faults drive the timing
            index = self.injector.next_index()
            thread = threading.Thread(
                target=self._handle, args=(client, index),
                name=f"faulty-proxy-conn-{index}", daemon=True)
            self._threads.append(thread)
            thread.start()

    def _handle(self, client: socket.socket, index: int) -> None:
        fault = self.injector.fault_for(index)
        try:
            if fault is not None and fault.kind == "refuse":
                return  # close without a byte: reset/refused at the client
            if fault is not None and fault.kind == "hold":
                self.injector.wait_released()
                if self._stopping.is_set():
                    return
                fault = None  # once released, proxy the connection cleanly
            try:
                upstream = socket.create_connection(self.upstream, timeout=10)
            except OSError:
                return
            with upstream:
                forward = threading.Thread(
                    target=self._pump_request, args=(client, upstream),
                    daemon=True)
                forward.start()
                self._pump_response(upstream, client, fault)
                if fault is not None and fault.kind == "truncate":
                    # Cut now: shutdown unblocks the request pump's recv()
                    # (close alone would not) and the SO_LINGER(0) close
                    # reaches the client as a reset, not a clean
                    # end-of-body.
                    try:
                        client.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
                    try:
                        client.close()
                    except OSError:
                        pass
                forward.join(timeout=5)
        finally:
            try:
                client.close()
            except OSError:
                pass

    def _pump_request(self, client: socket.socket,
                      upstream: socket.socket) -> None:
        """Client → upstream, verbatim."""
        try:
            while True:
                data = client.recv(_CHUNK)
                if not data:
                    break
                upstream.sendall(data)
            upstream.shutdown(socket.SHUT_WR)
        except OSError:
            pass

    def _pump_response(self, upstream: socket.socket, client: socket.socket,
                       fault: Optional[Fault]) -> None:
        """Upstream → client, applying truncate/slow faults."""
        sent = 0
        try:
            while True:
                data = upstream.recv(_CHUNK)
                if not data:
                    break
                if fault is not None and fault.kind == "truncate":
                    budget = fault.after_bytes - sent
                    if budget <= 0:
                        break
                    data = data[:budget]
                if fault is not None and fault.kind == "slow" and fault.delay:
                    # Interruptible by stop(): a stuck-slow connection must
                    # not stall proxy shutdown for the rest of its delay.
                    self._stopping.wait(fault.delay)
                client.sendall(data)
                sent += len(data)
                if fault is not None and fault.kind == "truncate" \
                        and sent >= fault.after_bytes:
                    break
        except OSError:
            pass
        # A truncate fault must look like a torn connection, not a clean
        # end-of-body: reset instead of FIN so keep-alive parsing cannot
        # mistake the cut for completion.
        if fault is not None and fault.kind == "truncate":
            try:
                client.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                                  struct.pack("ii", 1, 0))
            except OSError:
                pass


def kill_process(process: "object") -> None:
    """SIGKILL a ``subprocess.Popen`` (or pid) and reap it.

    The hard half of the fault matrix: no cleanup handlers run, exactly
    like a crash — crash-recovery tests assert state converges afterwards.
    """
    if hasattr(process, "kill"):
        process.kill()
        process.wait()  # type: ignore[attr-defined]
    else:
        import os
        os.kill(int(process), signal.SIGKILL)  # type: ignore[arg-type]


def terminate_process(process: "object", timeout: float = 10.0) -> int:
    """SIGTERM a ``subprocess.Popen`` and wait for a clean exit code."""
    process.terminate()  # type: ignore[attr-defined]
    return int(process.wait(timeout=timeout))  # type: ignore[attr-defined]
