"""Test-support harnesses shipped with the package.

Currently one module: :mod:`repro.testing.faults`, the deterministic
fault-injection harness the replication chaos tests (and CI's chaos smoke
step) drive — connection refusal, mid-body truncation, slow reads,
hold-until-released stalls, and process kills, all scheduled by connection
index rather than wall-clock randomness.
"""

from repro.testing.faults import (
    Fault,
    FaultInjector,
    FaultyProxy,
    kill_process,
    terminate_process,
)

__all__ = ["Fault", "FaultInjector", "FaultyProxy", "kill_process",
           "terminate_process"]
