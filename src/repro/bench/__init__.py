"""Benchmark harness for the ToPMine reproduction.

``python -m repro.bench`` times the framework's three runtime halves —
frequent phrase mining (Algorithm 1), phrase construction / segmentation
(Algorithm 2), and PhraseLDA Gibbs sweeps (Section 5) — at several corpus
sizes, compares the sampling engines against the readable reference
sampler, and writes one ``BENCH_<stage>.json`` artifact per stage so the
performance trajectory of the repo can be tracked across commits.
"""

from repro.bench.report import validate_report, write_report
from repro.bench.runner import BenchConfig, run_benchmarks

__all__ = [
    "BenchConfig",
    "run_benchmarks",
    "validate_report",
    "write_report",
]
