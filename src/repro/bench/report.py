"""Benchmark report construction, validation, and serialisation.

Every benchmark stage produces one JSON artifact (``BENCH_<stage>.json``)
with a fixed schema so downstream tooling — CI trend tracking, the test
suite, human diffing — can rely on its shape:

.. code-block:: text

    {
      "schema": "repro.bench/1",
      "benchmark": "<stage name>",
      "created_at": <unix seconds>,
      "config": { ... BenchConfig fields ... },
      "environment": {"python": ..., "numpy": ..., "platform": ...,
                       "c_kernel": ...},
      "records": [ {"stage": ..., "dataset": ..., "n_documents": ...,
                    "seconds": ..., ...}, ... ],
      "summary": { ... stage-specific aggregates, e.g. "speedups" ... }
    }
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Union

import numpy as np

SCHEMA = "repro.bench/1"

_REQUIRED_TOP_LEVEL = ("schema", "benchmark", "created_at", "config",
                       "environment", "records", "summary")
_REQUIRED_RECORD = ("stage", "dataset", "n_documents", "seconds")


def environment_info() -> Dict[str, Any]:
    """Describe the machine/software the benchmark ran on."""
    from repro.topicmodel import ckernel

    return {
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "c_kernel": ckernel.kernel_available(),
    }


def make_report(benchmark: str, config: Dict[str, Any],
                records: List[Dict[str, Any]],
                summary: Dict[str, Any]) -> Dict[str, Any]:
    """Assemble a schema-conforming report dictionary."""
    report = {
        "schema": SCHEMA,
        "benchmark": benchmark,
        "created_at": time.time(),
        "config": config,
        "environment": environment_info(),
        "records": records,
        "summary": summary,
    }
    return validate_report(report)


def validate_report(report: Dict[str, Any]) -> Dict[str, Any]:
    """Check a report against the ``repro.bench/1`` schema.

    Raises ``ValueError`` describing every violation; returns the report
    unchanged when it conforms.
    """
    problems: List[str] = []
    if not isinstance(report, dict):
        raise ValueError("report must be a dictionary")
    for key in _REQUIRED_TOP_LEVEL:
        if key not in report:
            problems.append(f"missing top-level key {key!r}")
    if report.get("schema") != SCHEMA:
        problems.append(f"schema must be {SCHEMA!r}, got {report.get('schema')!r}")
    records = report.get("records", [])
    if not isinstance(records, list):
        problems.append("records must be a list")
        records = []
    for i, record in enumerate(records):
        if not isinstance(record, dict):
            problems.append(f"records[{i}] must be a dictionary")
            continue
        for key in _REQUIRED_RECORD:
            if key not in record:
                problems.append(f"records[{i}] missing key {key!r}")
        seconds = record.get("seconds")
        if isinstance(seconds, (int, float)) and seconds < 0:
            problems.append(f"records[{i}] has negative seconds")
    if problems:
        raise ValueError("invalid benchmark report: " + "; ".join(problems))
    return report


def write_report(report: Dict[str, Any], output_dir: Union[str, Path]) -> Path:
    """Validate and write ``BENCH_<benchmark>.json`` into ``output_dir``."""
    validate_report(report)
    directory = Path(output_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{report['benchmark']}.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def load_report(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate a benchmark artifact."""
    return validate_report(json.loads(Path(path).read_text()))
