"""Benchmark artifact comparison: speedup/regression deltas between runs.

``python -m repro.bench --compare OLD`` runs the configured stages, then
matches the fresh reports record-by-record against previously written
``BENCH_*.json`` baselines and prints per-stage deltas.  Records match on
``(stage, dataset, engine, n_documents)`` — a like-for-like wall-clock
comparison; runs at unmatched sizes are reported as skipped rather than
guessed at.  A record whose new time exceeds the old by more than the
configured threshold factor is a **regression**, and the CLI exits non-zero
— the bench-trajectory gate CI runs against the committed baselines.

Summary-level headline metrics (engine speedups, serving throughput and
latency percentiles) are compared informationally alongside the per-record
deltas.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.bench.report import load_report

#: Summary keys worth printing side by side when both runs report them.
SUMMARY_METRICS = ("best_speedup", "docs_per_second", "latency_p50_ms",
                   "latency_p95_ms")

RecordKey = Tuple[str, str, Optional[str], Any]


@dataclass
class RecordComparison:
    """One matched benchmark record across the old and new runs.

    Attributes
    ----------
    key:
        The ``(stage, dataset, engine, n_documents)`` match key.
    old_seconds, new_seconds:
        Wall-clock of the baseline and fresh records.
    speedup:
        ``old_seconds / new_seconds`` — above 1 the new run is faster.
    regressed:
        Whether the new run breaches the regression threshold.
    """

    key: RecordKey
    old_seconds: float
    new_seconds: float
    speedup: Optional[float]
    regressed: bool

    def describe(self) -> str:
        """One printable delta line for this record."""
        stage, dataset, engine, n_documents = self.key
        label = f"{stage} {dataset} {n_documents} docs"
        if engine:
            label += f" [{engine}]"
        if self.speedup is None:
            rate = "n/a"
        else:
            rate = (f"{self.speedup:.2f}x faster" if self.speedup >= 1.0
                    else f"{1 / self.speedup:.2f}x slower")
        flag = "  ** REGRESSION **" if self.regressed else ""
        return (f"  {label}: {self.old_seconds:.4f}s -> "
                f"{self.new_seconds:.4f}s ({rate}){flag}")


def record_key(record: Dict[str, Any]) -> RecordKey:
    """Build the match key of one benchmark record."""
    return (record["stage"], record.get("dataset", ""),
            record.get("engine"), record.get("n_documents"))


def compare_reports(old: Dict[str, Any], new: Dict[str, Any],
                    threshold: float = 2.0) -> List[RecordComparison]:
    """Match two same-stage reports record by record.

    Parameters
    ----------
    old, new:
        Validated ``repro.bench/1`` reports of the same benchmark.
    threshold:
        Regression factor: a matched record regresses when
        ``new_seconds > old_seconds * threshold``.

    Returns
    -------
    list of RecordComparison
        One entry per record key present in both reports.

    Raises
    ------
    ValueError
        If the reports describe different benchmarks or the threshold is
        not positive.
    """
    if old.get("benchmark") != new.get("benchmark"):
        raise ValueError(
            f"cannot compare benchmark {old.get('benchmark')!r} against "
            f"{new.get('benchmark')!r}")
    if threshold <= 0:
        raise ValueError("regression threshold must be positive")
    old_records = {record_key(r): r for r in old.get("records", [])}
    comparisons: List[RecordComparison] = []
    for new_record in new.get("records", []):
        key = record_key(new_record)
        old_record = old_records.get(key)
        if old_record is None:
            continue
        old_seconds = float(old_record["seconds"])
        new_seconds = float(new_record["seconds"])
        speedup = old_seconds / new_seconds if new_seconds > 0 else None
        comparisons.append(RecordComparison(
            key=key, old_seconds=old_seconds, new_seconds=new_seconds,
            speedup=speedup,
            regressed=new_seconds > old_seconds * threshold))
    return comparisons


def summary_deltas(old: Dict[str, Any], new: Dict[str, Any]) -> List[str]:
    """Render side-by-side lines for shared headline summary metrics."""
    lines: List[str] = []
    old_summary = old.get("summary", {})
    new_summary = new.get("summary", {})
    for metric in SUMMARY_METRICS:
        if metric in old_summary and metric in new_summary:
            lines.append(f"  {metric}: {old_summary[metric]:.2f} -> "
                         f"{new_summary[metric]:.2f}")
    return lines


def load_baselines(paths: Sequence[Union[str, Path]],
                   stages: Iterable[str]) -> Dict[str, Dict[str, Any]]:
    """Resolve ``--compare`` arguments into per-stage baseline reports.

    Each path may be a ``BENCH_*.json`` file or a directory searched for
    ``BENCH_<stage>.json`` per requested stage.  Later paths win on
    conflicts.

    Raises
    ------
    FileNotFoundError
        If an explicit file path does not exist, or no baseline was found
        for any requested stage.
    """
    baselines: Dict[str, Dict[str, Any]] = {}
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for stage in stages:
                candidate = path / f"BENCH_{stage}.json"
                if candidate.exists():
                    report = load_report(candidate)
                    baselines[report["benchmark"]] = report
        else:
            report = load_report(path)
            baselines[report["benchmark"]] = report
    if not baselines:
        raise FileNotFoundError(
            f"no baseline BENCH_*.json artifacts found under {list(paths)}")
    return baselines


def compare_runs(baselines: Dict[str, Dict[str, Any]],
                 reports: Dict[str, Dict[str, Any]],
                 threshold: float = 2.0) -> Tuple[List[str], int]:
    """Compare every fresh report against its baseline.

    Returns
    -------
    (lines, n_regressions)
        Printable output and the number of regressed records across all
        stages — non-zero means the comparison gate fails.
    """
    lines: List[str] = []
    n_regressions = 0
    for stage, report in reports.items():
        baseline = baselines.get(stage)
        lines.append(f"\n== compare: {stage} (threshold {threshold:g}x) ==")
        if baseline is None:
            lines.append("  no baseline artifact; skipped")
            continue
        comparisons = compare_reports(baseline, report, threshold)
        if not comparisons:
            lines.append("  no records matched the baseline "
                         "(different sizes/dataset/engines?); skipped")
            continue
        for comparison in comparisons:
            lines.append(comparison.describe())
            n_regressions += comparison.regressed
        unmatched = len(report.get("records", [])) - len(comparisons)
        if unmatched:
            lines.append(f"  {unmatched} record(s) had no baseline match; "
                         f"skipped (not gated)")
        lines.extend(summary_deltas(baseline, report))
    return lines, n_regressions
