"""Benchmark orchestration: corpus scaling, stage timers, engine shoot-outs.

The runner reproduces the paper's scalability methodology (Section 6,
Figure 8): generate synthetic corpora of increasing size with a fixed seed,
time each half of the framework separately, and decompose the end-to-end
ToPMine runtime into its phrase-mining and topic-modeling parts.  On top of
that it races the PhraseLDA sampling engines (reference loop vs. vectorized
NumPy vs. compiled kernel) on identical Gibbs sweeps, which is the number
quoted in the acceptance gate: ``speedups`` in ``BENCH_phrase_lda.json``.

The ``serving`` stage measures the query path instead of the train path:
it fits a model, starts an in-process :mod:`repro.serve` HTTP server, and
replays concurrent ``/v1/infer`` requests through the real client/server/
micro-batcher stack, recording p50/p95 request latency and docs/sec into
``BENCH_serving.json`` (percentiles via the same
:mod:`repro.utils.timing` helpers the server's ``/metrics`` uses).

The ``ingestion`` stage measures the continuous-update path
(:mod:`repro.stream`): documents are streamed shard by shard into a real
:class:`~repro.stream.updater.TopicStream` (dedup + tokenize + incremental
count merge) and one refresh re-fits and publishes a bundle, recording
ingest docs/sec and refresh latency into ``BENCH_ingestion.json``.
"""

from __future__ import annotations

import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.report import make_report, write_report
from repro.core.phrase_lda import PhraseLDA, PhraseLDAConfig, _extract_phrase_documents
from repro.core.topmine import ToPMine, ToPMineConfig
from repro.datasets.registry import load_dataset
from repro.eval.runtime import figure8_decomposition
from repro.topicmodel import ckernel
from repro.topicmodel.gibbs import (
    FlatPhraseCorpus,
    make_sampler,
    random_initialization,
    resolve_engine,
)
from repro.utils.rng import new_rng
from repro.utils.timing import LatencyTracker

ALL_STAGES = ("phrase_mining", "segmentation", "phrase_lda", "topmine",
              "serving", "ingestion")


@dataclass
class BenchConfig:
    """Configuration of one benchmark run.

    Parameters
    ----------
    sizes:
        Corpus sizes (number of documents) to scale over.
    dataset:
        Registered synthetic dataset name (see ``repro.datasets.registry``).
    n_topics:
        Topics ``K`` for the PhraseLDA stages.
    sweeps:
        Gibbs sweeps timed per engine (per repeat).
    repeats:
        Timing repeats; the minimum is reported (standard best-of timing).
    seed:
        Seed for corpus generation and samplers — the whole run is
        deterministic given this value.
    engines:
        PhraseLDA engines to race.  ``None`` selects the reference and
        NumPy samplers plus the C kernel when it is available.
    stages:
        Subset of :data:`ALL_STAGES` to run.
    output_dir:
        Where ``BENCH_*.json`` artifacts are written.
    serving_requests:
        ``serving`` stage: number of ``/v1/infer`` requests replayed (one
        unseen document each).
    serving_concurrency:
        ``serving`` stage: concurrent client threads.
    serving_iterations:
        ``serving`` stage: fold-in sweeps per request.
    serving_workers:
        ``serving`` stage: fleet sizes for the high-concurrency worker-
        scaling replay (each runs a real multi-process
        :class:`~repro.serve.fleet.ServeFleet`); the docs/sec curve lands
        in ``BENCH_serving.json`` as one ``engine="workers-N"`` record
        per size.
    serving_fleet_requests:
        ``serving`` stage: requests replayed against each fleet size.
    serving_fleet_concurrency:
        ``serving`` stage: concurrent client threads of the fleet replay
        (higher than ``serving_concurrency`` — the point is saturation).
    ingestion_shards:
        ``ingestion`` stage: how many batches each corpus size is split
        into before being streamed in (ingest cost is measured per shard).
    """

    sizes: Sequence[int] = (250, 500, 1000)
    dataset: str = "dblp-titles"
    n_topics: int = 20
    sweeps: int = 5
    repeats: int = 3
    seed: int = 7
    engines: Optional[Sequence[str]] = None
    stages: Sequence[str] = ALL_STAGES
    output_dir: Path = field(default_factory=lambda: Path("."))
    serving_requests: int = 64
    serving_concurrency: int = 8
    serving_iterations: int = 10
    serving_workers: Sequence[int] = (1, 4)
    serving_fleet_requests: int = 384
    serving_fleet_concurrency: int = 24
    ingestion_shards: int = 4

    @classmethod
    def smoke(cls, output_dir: Path = Path(".")) -> "BenchConfig":
        """A seconds-scale configuration for CI smoke runs."""
        return cls(sizes=(60,), sweeps=2, repeats=1, output_dir=output_dir,
                   serving_requests=16, serving_concurrency=4,
                   serving_workers=(1, 2), serving_fleet_requests=64,
                   serving_fleet_concurrency=8)

    def resolved_engines(self) -> List[str]:
        """Concrete engine names to race, validated upfront.

        Resolving here (rather than at sweep time) makes an impossible
        request — e.g. ``--engines c`` without a compiler — fail before any
        timing work starts, and de-duplicates ``auto`` aliases.
        """
        if self.engines is None:
            names = ["reference", "numpy"] + (
                ["c"] if ckernel.kernel_available() else [])
        else:
            names = [resolve_engine(engine) for engine in self.engines]
        seen: List[str] = []
        for name in names:
            if name not in seen:
                seen.append(name)
        return seen

    def as_dict(self) -> Dict[str, Any]:
        """Return the configuration as a JSON-serialisable dictionary."""
        return {
            "sizes": list(self.sizes),
            "dataset": self.dataset,
            "n_topics": self.n_topics,
            "sweeps": self.sweeps,
            "repeats": self.repeats,
            "seed": self.seed,
            "engines": self.resolved_engines(),
            "stages": list(self.stages),
            "serving_requests": self.serving_requests,
            "serving_concurrency": self.serving_concurrency,
            "serving_iterations": self.serving_iterations,
            "serving_workers": list(self.serving_workers),
            "serving_fleet_requests": self.serving_fleet_requests,
            "serving_fleet_concurrency": self.serving_fleet_concurrency,
            "ingestion_shards": self.ingestion_shards,
        }


def _best_of(func: Callable[[], Any], repeats: int) -> float:
    """Wall-clock the callable ``repeats`` times and return the minimum."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        func()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def _prepare_corpus(config: BenchConfig, n_documents: int, segment: bool = True):
    """Generate, preprocess, mine, and (optionally) segment one corpus size."""
    generated = load_dataset(config.dataset, n_documents=n_documents,
                             seed=config.seed)
    pipeline = ToPMine(ToPMineConfig(n_topics=config.n_topics,
                                     min_support=None, seed=config.seed))
    corpus = pipeline.preprocess(generated.texts, name=config.dataset)
    mining = pipeline.mine_phrases(corpus)
    segmented = pipeline.segment(corpus, mining) if segment else None
    return pipeline, corpus, mining, segmented


MINING_RACE_ENGINES = ("reference", "numpy")


def _engine_race_summary(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Shared summary shape for the mining/segmentation engine races.

    ``speedups`` holds each non-reference engine's speedup over the
    reference at the **largest** benchmarked size (the headline the
    acceptance gate and ``--compare`` read); ``tokens_per_second`` tracks
    the fast path's throughput per size — the series that exhibits the
    paper's Figure 8 linearity claim.
    """
    largest = max(r["n_documents"] for r in records)
    speedups = {r["engine"]: r["speedup_vs_reference"]
                for r in records
                if r["n_documents"] == largest and "speedup_vs_reference" in r}
    summary: Dict[str, Any] = {
        "speedups": speedups,
        "tokens_per_second": {
            str(r["n_documents"]): r["n_tokens"] / r["seconds"] if r["seconds"] else None
            for r in records if r["engine"] == "numpy"},
    }
    if speedups:
        summary["best_speedup"] = max(speedups.values())
        summary["best_engine"] = max(speedups, key=speedups.get)
    return summary


def bench_phrase_mining(config: BenchConfig) -> Dict[str, Any]:
    """Race the mining engines on Algorithm 1 across corpus sizes.

    Both the reference loop and the vectorized flat-buffer engine mine the
    same corpus at the same support; results are bit-identical, so the only
    difference is speed — recorded per engine with
    ``speedup_vs_reference``.
    """
    from repro.core.frequent_phrases import FrequentPhraseMiner, PhraseMiningConfig

    records: List[Dict[str, Any]] = []
    for size in config.sizes:
        _, corpus, mining, _ = _prepare_corpus(config, size, segment=False)
        reference_seconds = None
        for engine in MINING_RACE_ENGINES:
            miner = FrequentPhraseMiner(PhraseMiningConfig(
                min_support=mining.min_support, engine=engine))
            seconds = _best_of(lambda: miner.mine(corpus), config.repeats)
            record = {
                "stage": "phrase_mining",
                "engine": engine,
                "dataset": config.dataset,
                "n_documents": size,
                "n_tokens": corpus.num_tokens,
                "n_frequent_phrases": mining.num_frequent_phrases(),
                "seconds": seconds,
            }
            if engine == "reference":
                reference_seconds = seconds
            elif reference_seconds is not None and seconds > 0:
                record["speedup_vs_reference"] = reference_seconds / seconds
            records.append(record)
    return make_report("phrase_mining", config.as_dict(), records,
                       _engine_race_summary(records))


def bench_segmentation(config: BenchConfig) -> Dict[str, Any]:
    """Race the segmentation engines on Algorithm 2 across sizes.

    Times :meth:`~repro.core.segmentation.CorpusSegmenter.segment` end to
    end (scorer construction included) per engine on identical mining
    results; partitions are bit-identical, so ``speedup_vs_reference`` is a
    pure hot-path number.
    """
    from repro.core.phrase_construction import PhraseConstructionConfig
    from repro.core.segmentation import CorpusSegmenter

    records: List[Dict[str, Any]] = []
    for size in config.sizes:
        pipeline, corpus, mining, segmented = _prepare_corpus(config, size)
        base = pipeline.config.construction_config()
        reference_seconds = None
        for engine in MINING_RACE_ENGINES:
            construction = PhraseConstructionConfig(
                significance_threshold=base.significance_threshold,
                max_phrase_words=base.max_phrase_words, engine=engine)
            # The segmenter is built inside the timed callable so the numpy
            # engine pays for its one-time scorer/table precompute in the
            # recorded seconds — the speedup is end to end, not just the
            # per-chunk pass.
            seconds = _best_of(
                lambda: CorpusSegmenter(mining, construction).segment(corpus),
                config.repeats)
            record = {
                "stage": "segmentation",
                "engine": engine,
                "dataset": config.dataset,
                "n_documents": size,
                "n_tokens": corpus.num_tokens,
                "n_phrases": segmented.num_phrases,
                "seconds": seconds,
            }
            if engine == "reference":
                reference_seconds = seconds
            elif reference_seconds is not None and seconds > 0:
                record["speedup_vs_reference"] = reference_seconds / seconds
            records.append(record)
    return make_report("segmentation", config.as_dict(), records,
                       _engine_race_summary(records))


def _time_reference_sweeps(config: BenchConfig, phrase_docs, vocabulary_size,
                           ) -> Tuple[float, int]:
    """Best-of time for ``sweeps`` reference Gibbs sweeps; returns
    ``(seconds, n_cliques)``."""
    model = PhraseLDA(PhraseLDAConfig(n_topics=config.n_topics, n_iterations=0,
                                      seed=config.seed, engine="reference"))
    state = model.fit(phrase_docs, vocabulary_size=vocabulary_size)
    n_cliques = sum(len(c) for c in state.clique_assignments)
    rng = new_rng(config.seed + 1)

    def run() -> None:
        for _ in range(config.sweeps):
            model._sweep(phrase_docs, state, rng)

    return _best_of(run, config.repeats), n_cliques


def _time_engine_sweeps(config: BenchConfig, engine: str, phrase_docs,
                        vocabulary_size) -> float:
    """Best-of time for ``sweeps`` flat-engine Gibbs sweeps."""
    flat = FlatPhraseCorpus(phrase_docs)
    rng = new_rng(config.seed)
    topic_word, doc_topic, topic_totals, assign = random_initialization(
        flat, config.n_topics, vocabulary_size, rng)
    alpha = np.full(config.n_topics, 50.0 / config.n_topics)
    sampler = make_sampler(engine, flat, topic_word, doc_topic, topic_totals,
                           assign, alpha, 0.01)
    sweep_rng = new_rng(config.seed + 1)

    def run() -> None:
        for _ in range(config.sweeps):
            sampler.sweep(sweep_rng)

    return _best_of(run, config.repeats)


def bench_phrase_lda(config: BenchConfig) -> Dict[str, Any]:
    """Race the PhraseLDA engines on identical Gibbs sweeps across sizes.

    ``summary["speedups"]`` maps each non-reference engine to its sweep
    speedup over the reference loop sampler at the largest corpus size;
    ``summary["best_speedup"]`` is the maximum over engines — the number
    the acceptance gate checks.
    """
    engines = config.resolved_engines()
    records: List[Dict[str, Any]] = []
    speedups_by_size: Dict[int, Dict[str, float]] = {}
    for size in config.sizes:
        speedups = speedups_by_size.setdefault(size, {})
        _, corpus, _, segmented = _prepare_corpus(config, size)
        phrase_docs, vocabulary_size = _extract_phrase_documents(segmented, None)
        reference_seconds = None
        if "reference" in engines:
            reference_seconds, n_cliques = _time_reference_sweeps(
                config, phrase_docs, vocabulary_size)
            records.append({
                "stage": "phrase_lda_sweep",
                "engine": "reference",
                "dataset": config.dataset,
                "n_documents": size,
                "n_cliques": n_cliques,
                "sweeps": config.sweeps,
                "seconds": reference_seconds,
                "seconds_per_sweep": reference_seconds / config.sweeps,
            })
        for engine in engines:
            if engine == "reference":
                continue
            seconds = _time_engine_sweeps(config, engine, phrase_docs,
                                          vocabulary_size)
            record = {
                "stage": "phrase_lda_sweep",
                "engine": engine,
                "dataset": config.dataset,
                "n_documents": size,
                "sweeps": config.sweeps,
                "seconds": seconds,
                "seconds_per_sweep": seconds / config.sweeps,
            }
            if reference_seconds is not None and seconds > 0:
                record["speedup_vs_reference"] = reference_seconds / seconds
                speedups[engine] = reference_seconds / seconds
            records.append(record)
    # The headline speedups come from the largest corpus size benchmarked
    # (the most representative of the scalability claim), regardless of the
    # order sizes were listed in.
    headline = speedups_by_size[max(speedups_by_size)] if speedups_by_size else {}
    summary: Dict[str, Any] = {"speedups": headline}
    if headline:
        summary["best_speedup"] = max(headline.values())
        summary["best_engine"] = max(headline, key=headline.get)
    return make_report("phrase_lda", config.as_dict(), records, summary)


def bench_topmine(config: BenchConfig) -> Dict[str, Any]:
    """End-to-end ToPMine runs recording the Figure 8 decomposition
    (phrase mining vs. topic modeling seconds) across corpus sizes."""
    records = []
    for size in config.sizes:
        generated = load_dataset(config.dataset, n_documents=size,
                                 seed=config.seed)
        pipeline = ToPMine(ToPMineConfig(n_topics=config.n_topics,
                                         min_support=None,
                                         n_iterations=config.sweeps,
                                         seed=config.seed))
        start = time.perf_counter()
        result = pipeline.fit(generated.texts, name=config.dataset)
        total = time.perf_counter() - start
        records.append({
            "stage": "topmine_fit",
            "dataset": config.dataset,
            "n_documents": size,
            "n_tokens": result.corpus.num_tokens,
            "seconds": total,
            "timings": result.timings,
        })
    summary = {"figure8": figure8_decomposition(
        {str(r["n_documents"]): r["timings"] for r in records})}
    return make_report("topmine", config.as_dict(), records, summary)


def _bench_serving_fleet(config: BenchConfig,
                         path: Path) -> Tuple[List[Dict[str, Any]],
                                              Dict[str, Any]]:
    """Replay the high-concurrency workload against each fleet size.

    For every entry of ``config.serving_workers``, starts a real
    multi-process :class:`~repro.serve.fleet.ServeFleet` over the saved
    bundle at ``path`` (``workers=1`` included, so the scaling baseline
    pays the same process-based serving costs) and replays
    ``serving_fleet_requests`` single-document requests from
    ``serving_fleet_concurrency`` client threads.  Returns one
    ``engine="workers-N"`` record per fleet size plus the
    ``worker_scaling`` summary (docs/sec per worker count, and the
    largest-fleet speedup over ``workers=1``).  On a single-core runner
    the speedup is bounded by batch-window overlap (~``2 - 1/N``); real
    core counts are recorded in the summary for context.
    """
    import http.client
    import json
    import os as _os
    import threading

    from repro.serve import ServeConfig, ServeFleet
    from repro.serve.api import InferRequest

    records: List[Dict[str, Any]] = []
    n_requests = config.serving_fleet_requests
    concurrency = max(1, config.serving_fleet_concurrency)
    unseen = load_dataset(config.dataset, n_documents=n_requests,
                          seed=config.seed + 2).texts
    for workers in config.serving_workers:
        # max_batch_size stays above the whole client pool so every fleet
        # size runs the same delay-bound batching regime: a batch closes
        # on the production window, never early because the pool happens
        # to divide evenly into one worker's queue.
        serve_config = ServeConfig(port=0, workers=workers,
                                   max_batch_size=concurrency * 2,
                                   default_iterations=config.serving_iterations)
        tracker = LatencyTracker(max_samples=max(n_requests, 1))
        fleet = ServeFleet(serve_config, {"bench": path}).start()
        local = threading.local()

        def post_infer(index: int) -> None:
            # One persistent keep-alive connection per client thread (how
            # production clients talk to a fleet): SO_REUSEPORT assigns
            # each connection to a worker once, so per-worker batches stay
            # coherent instead of re-sharding on every request.
            connection = getattr(local, "connection", None)
            if connection is None:
                connection = http.client.HTTPConnection(
                    serve_config.host, fleet.config.port, timeout=60)
                local.connection = connection
            request = InferRequest(
                documents=(unseen[index % len(unseen)],), seed=index,
                iterations=config.serving_iterations)
            body = json.dumps(request.to_payload()).encode("utf-8")
            connection.request("POST", "/v1/infer", body,
                               {"Content-Type": "application/json"})
            reply = connection.getresponse()
            payload = reply.read()
            if reply.status != 200:
                raise RuntimeError(f"/v1/infer answered {reply.status}: "
                                   f"{payload[:200]!r}")

        def fire(index: int) -> None:
            start = time.perf_counter()
            post_infer(index)
            tracker.observe(time.perf_counter() - start)

        try:
            fleet.wait_until_ready()
            with ThreadPoolExecutor(concurrency) as pool:
                # Warmup on the measurement connections: every worker
                # loads (mmaps) the bundle and primes its batcher before
                # the timed window.
                list(pool.map(post_infer, range(concurrency)))
                wall_start = time.perf_counter()
                list(pool.map(fire, range(n_requests)))
                wall = time.perf_counter() - wall_start
        finally:
            fleet.stop()
        latency = tracker.summary()
        records.append({
            "stage": "serving",
            "engine": f"workers-{workers}",
            "dataset": config.dataset,
            "n_documents": n_requests,
            "workers": workers,
            "seconds": wall,
            "requests": n_requests,
            "concurrency": concurrency,
            "iterations": config.serving_iterations,
            "docs_per_second": n_requests / wall if wall else None,
            "latency_p50_ms": latency["p50"] * 1e3,
            "latency_p95_ms": latency["p95"] * 1e3,
        })
    scaling = {str(r["workers"]): r["docs_per_second"] for r in records}
    summary: Dict[str, Any] = {"worker_scaling": scaling,
                               "cpu_count": _os.cpu_count()}
    baseline = scaling.get("1")
    largest = max(int(w) for w in scaling) if scaling else None
    if baseline and largest is not None and largest > 1 \
            and scaling.get(str(largest)):
        summary["fleet_speedup"] = scaling[str(largest)] / baseline
        summary["fleet_workers"] = largest
        cores = summary["cpu_count"] or 1
        if cores < largest:
            # Workers parallelize fold-in compute across cores; with fewer
            # cores than workers the processes time-slice one CPU and the
            # curve caps near 1x. Flag it so a committed artifact from a
            # small box is not read as a fleet regression.
            summary["fleet_note"] = (
                f"host has {cores} CPU core(s) for {largest} workers; "
                "worker scaling requires >= workers cores")
    return records, summary


def bench_serving(config: BenchConfig) -> Dict[str, Any]:
    """Replay concurrent requests through live model servers.

    Fits one model (at the largest configured corpus size), saves it as a
    bundle, starts a real :class:`~repro.serve.http.ReproServer` on an
    ephemeral port, and fires ``serving_requests`` single-document
    ``/v1/infer`` requests from ``serving_concurrency`` client threads —
    the full client → HTTP → micro-batcher → batched fold-in path.
    The same bundle then backs the high-concurrency worker-scaling
    replay (:func:`_bench_serving_fleet`): one record per
    ``serving_workers`` fleet size, giving the docs/sec scaling curve of
    multi-process serving.  ``summary`` reports ``docs_per_second`` (the
    in-process serving headline), p50/p95 request latency in
    milliseconds, per-span p50/p95 (``spans`` — queue wait, batch
    assembly, model load, segmentation, fold-in, from the server's own
    request traces), and ``worker_scaling``/``fleet_speedup``.

    The measured replay additionally runs under the sampling profiler:
    its collapsed-stack flamegraph text is written next to the report as
    ``BENCH_serving_profile.collapsed`` and referenced by the record's
    ``profile`` field (the ``--compare`` regression gate only reads
    ``seconds``, so the artifact never affects gating).
    """
    from repro.io.artifacts import ModelBundle, save_bundle
    from repro.obs import SPAN_NAMES, span_metric
    from repro.obs.profile import profiled
    from repro.serve import ModelRegistry, ReproServer, ServeClient

    size = max(config.sizes)
    generated = load_dataset(config.dataset, n_documents=size, seed=config.seed)
    train_config = ToPMineConfig(n_topics=config.n_topics, min_support=None,
                                 n_iterations=max(config.sweeps, 2),
                                 seed=config.seed)
    result = ToPMine(train_config).fit(generated.texts, name=config.dataset)
    bundle = ModelBundle.from_result(result, train_config)

    n_requests = config.serving_requests
    unseen = load_dataset(config.dataset, n_documents=n_requests,
                          seed=config.seed + 1).texts
    tracker = LatencyTracker(max_samples=max(n_requests, 1))

    with tempfile.TemporaryDirectory() as scratch:
        path = Path(scratch) / "serving-model.npz"
        save_bundle(path, bundle)
        registry = ModelRegistry()
        registry.register("bench", path)
        server = ReproServer(registry, port=0, batch_delay=0.002,
                             max_batch_size=config.serving_concurrency * 4)
        server.start_background()
        try:
            client = ServeClient(server.url)
            # Warmup: loads the bundle and primes the batcher thread so the
            # measured window reflects steady-state serving.
            client.infer([unseen[0]], seed=0,
                         iterations=config.serving_iterations)

            def fire(index: int) -> None:
                start = time.perf_counter()
                client.infer([unseen[index]], seed=index,
                             iterations=config.serving_iterations)
                tracker.observe(time.perf_counter() - start)

            with profiled() as profiler:
                wall_start = time.perf_counter()
                with ThreadPoolExecutor(config.serving_concurrency) as pool:
                    list(pool.map(fire, range(n_requests)))
                wall = time.perf_counter() - wall_start
            batches = server.metrics.counter("infer_batches_total")
            # Per-span request breakdown (queue wait, batch assembly,
            # model load, segmentation, fold-in) from the same registry
            # the batcher records its traces into: where the latency goes,
            # not just what it totals.
            spans = {}
            for span in SPAN_NAMES:
                observed = server.metrics.latency(span_metric(span)).summary()
                if observed["count"]:
                    spans[span] = {"count": observed["count"],
                                   "p50_ms": observed["p50"] * 1e3,
                                   "p95_ms": observed["p95"] * 1e3}
        finally:
            server.stop()
        fleet_records, fleet_summary = _bench_serving_fleet(config, path)

    profile_name = "BENCH_serving_profile.collapsed"
    profile_path = Path(config.output_dir) / profile_name
    profile_path.parent.mkdir(parents=True, exist_ok=True)
    profile_path.write_text(profiler.collapsed(), encoding="utf-8")

    latency = tracker.summary()
    record = {
        "stage": "serving",
        "dataset": config.dataset,
        "n_documents": n_requests,
        "seconds": wall,
        "train_size": size,
        "requests": n_requests,
        "concurrency": config.serving_concurrency,
        "iterations": config.serving_iterations,
        "docs_per_second": n_requests / wall if wall else None,
        "latency_p50_ms": latency["p50"] * 1e3,
        "latency_p95_ms": latency["p95"] * 1e3,
        "batches": batches,
        "spans": spans,
        "profile": profile_name,
        "profile_samples": profiler.n_samples,
    }
    summary = {
        "docs_per_second": record["docs_per_second"],
        "latency_p50_ms": record["latency_p50_ms"],
        "latency_p95_ms": record["latency_p95_ms"],
        "spans": spans,
        "requests": n_requests,
        "requests_per_batch": (n_requests + 1) / batches if batches else None,
    }
    summary.update(fleet_summary)
    return make_report("serving", config.as_dict(), [record] + fleet_records,
                       summary)


def bench_ingestion(config: BenchConfig) -> Dict[str, Any]:
    """Stream each corpus size through a real topic stream, timed.

    For every configured size the documents are split into
    ``ingestion_shards`` batches and ingested one by one into a fresh
    :class:`~repro.stream.updater.TopicStream` (log append + dedup +
    tokenize + incremental count merge — the O(delta) path), then one
    forced refresh re-fits and publishes a versioned bundle.  Records
    report ``docs_per_second`` (ingest throughput, the streaming headline)
    and ``refresh_seconds`` (publish latency); ``seconds`` — the value the
    ``--compare`` regression gate matches on — is the ingest+refresh total.
    Each repeat streams into a fresh directory (ingest deduplicates, so
    re-running in place would measure nothing) and the minimum is kept.
    """
    from repro.core.frequent_phrases import resolve_mining_engine
    from repro.stream import StreamConfig, TopicStream

    records: List[Dict[str, Any]] = []
    engine = resolve_mining_engine("auto")
    for size in config.sizes:
        texts = load_dataset(config.dataset, n_documents=size,
                             seed=config.seed).texts
        n_shards = max(1, min(config.ingestion_shards, size))
        bounds = [(size * shard) // n_shards for shard in range(n_shards + 1)]
        batches = [texts[a:b] for a, b in zip(bounds, bounds[1:]) if b > a]
        stream_config = StreamConfig(
            n_topics=config.n_topics, n_iterations=config.sweeps,
            seed=config.seed, engine=engine, source=config.dataset)

        best_ingest = best_refresh = float("inf")
        n_documents = n_tokens = version_documents = 0
        for _ in range(max(1, config.repeats)):
            with tempfile.TemporaryDirectory() as scratch:
                stream = TopicStream.create(Path(scratch) / "stream",
                                            stream_config)
                ingest_start = time.perf_counter()
                reports = [stream.ingest(batch, source=config.dataset)
                           for batch in batches]
                ingest_seconds = time.perf_counter() - ingest_start
                refresh_start = time.perf_counter()
                refresh = stream.refresh(force=True)
                refresh_seconds = time.perf_counter() - refresh_start
                best_ingest = min(best_ingest, ingest_seconds)
                best_refresh = min(best_refresh, refresh_seconds)
                n_documents = sum(r.n_documents for r in reports)
                n_tokens = sum(r.n_tokens for r in reports)
                version_documents = refresh.n_documents
        records.append({
            "stage": "ingestion",
            "engine": engine,
            "dataset": config.dataset,
            "n_documents": size,
            "n_unique_documents": n_documents,
            "n_tokens": n_tokens,
            "shards": len(batches),
            "seconds": best_ingest + best_refresh,
            "ingest_seconds": best_ingest,
            "refresh_seconds": best_refresh,
            "docs_per_second": n_documents / best_ingest if best_ingest else None,
            "model_documents": version_documents,
        })
    largest = max(records, key=lambda r: r["n_documents"])
    summary = {
        "docs_per_second": largest["docs_per_second"],
        "refresh_seconds": largest["refresh_seconds"],
        "ingest_docs_per_second": {
            str(r["n_documents"]): r["docs_per_second"] for r in records},
    }
    return make_report("ingestion", config.as_dict(), records, summary)


_STAGE_RUNNERS = {
    "phrase_mining": bench_phrase_mining,
    "segmentation": bench_segmentation,
    "phrase_lda": bench_phrase_lda,
    "topmine": bench_topmine,
    "serving": bench_serving,
    "ingestion": bench_ingestion,
}


def run_benchmarks(config: BenchConfig,
                   write: bool = True) -> Dict[str, Dict[str, Any]]:
    """Run the configured stages; return ``{stage: report}`` and (by
    default) write one ``BENCH_<stage>.json`` per stage."""
    unknown = set(config.stages) - set(_STAGE_RUNNERS)
    if unknown:
        raise ValueError(f"unknown benchmark stages: {sorted(unknown)}; "
                         f"available: {list(_STAGE_RUNNERS)}")
    reports: Dict[str, Dict[str, Any]] = {}
    for stage in config.stages:
        report = _STAGE_RUNNERS[stage](config)
        reports[stage] = report
        if write:
            write_report(report, config.output_dir)
    return reports
