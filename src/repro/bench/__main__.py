"""Command-line entry point: ``python -m repro.bench``.

Examples
--------
Full run with defaults (writes ``BENCH_*.json`` into the working directory)::

    python -m repro.bench

CI smoke run (one tiny corpus, a couple of sweeps, seconds of wall-clock)::

    python -m repro.bench --smoke

Scaling study of just the sampler on larger corpora::

    python -m repro.bench --stages phrase_lda --sizes 1000,2000,4000
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

from repro.bench.runner import ALL_STAGES, BenchConfig, run_benchmarks
from repro.datasets.registry import available_datasets


def _csv_ints(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part.strip()]


def _csv_strs(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    """Build the ``python -m repro.bench`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark phrase mining, segmentation, and PhraseLDA "
                    "across corpus sizes and sampling engines.")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI (one small corpus, "
                             "two sweeps, single repeat)")
    parser.add_argument("--sizes", type=_csv_ints, default=None,
                        metavar="N1,N2,...",
                        help="comma-separated corpus sizes in documents "
                             "(default: 250,500,1000)")
    parser.add_argument("--dataset", default=None,
                        choices=available_datasets(),
                        help="synthetic dataset to scale (default: dblp-titles)")
    parser.add_argument("--topics", type=int, default=None,
                        help="number of topics K (default: 20)")
    parser.add_argument("--sweeps", type=int, default=None,
                        help="Gibbs sweeps timed per engine (default: 5)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of timing repeats (default: 3)")
    parser.add_argument("--seed", type=int, default=None,
                        help="seed for corpora and samplers (default: 7)")
    parser.add_argument("--engines", type=_csv_strs, default=None,
                        metavar="E1,E2,...",
                        help="PhraseLDA engines to race (default: reference,"
                             "numpy plus c when a compiler is available)")
    parser.add_argument("--stages", type=_csv_strs, default=None,
                        metavar="S1,S2,...",
                        help=f"stages to run (default: all of {','.join(ALL_STAGES)})")
    parser.add_argument("--serving-requests", type=int, default=None,
                        help="serving stage: /v1/infer requests replayed "
                             "against the in-process server (default: 64)")
    parser.add_argument("--serving-concurrency", type=int, default=None,
                        help="serving stage: concurrent client threads of "
                             "the in-process replay (default: 8)")
    parser.add_argument("--serving-workers", type=_csv_ints, default=None,
                        metavar="N1,N2,...",
                        help="serving stage: fleet sizes for the "
                             "high-concurrency worker-scaling replay "
                             "(default: 1,4; 1,2 with --smoke)")
    parser.add_argument("--output-dir", type=Path, default=None,
                        help="directory for BENCH_*.json artifacts "
                             "(default: current directory)")
    parser.add_argument("--compare", type=_csv_strs, default=None,
                        metavar="OLD[,OLD2,...]",
                        help="compare this run against baseline BENCH_*.json "
                             "artifacts (files, or directories searched per "
                             "stage) and exit non-zero on regression")
    parser.add_argument("--regression-threshold", type=float, default=2.0,
                        metavar="FACTOR",
                        help="with --compare: fail when a matched record is "
                             "more than FACTOR times slower than the "
                             "baseline (default: 2.0)")
    return parser


def config_from_args(args: argparse.Namespace) -> BenchConfig:
    """Turn parsed CLI arguments into a :class:`BenchConfig`."""
    config = BenchConfig.smoke() if args.smoke else BenchConfig()
    if args.sizes is not None:
        config.sizes = args.sizes
    if args.dataset is not None:
        config.dataset = args.dataset
    if args.topics is not None:
        config.n_topics = args.topics
    if args.sweeps is not None:
        config.sweeps = args.sweeps
    if args.repeats is not None:
        config.repeats = args.repeats
    if args.seed is not None:
        config.seed = args.seed
    if args.engines is not None:
        config.engines = args.engines
    if args.stages is not None:
        config.stages = args.stages
    if args.output_dir is not None:
        config.output_dir = args.output_dir
    if args.serving_requests is not None:
        config.serving_requests = args.serving_requests
    if args.serving_concurrency is not None:
        config.serving_concurrency = args.serving_concurrency
    if args.serving_workers is not None:
        config.serving_workers = args.serving_workers
    return config


def _print_summary(reports) -> None:
    for stage, report in reports.items():
        print(f"\n== {stage} ==")
        for record in report["records"]:
            engine = record.get("engine")
            label = f"{record['n_documents']:>6} docs"
            if engine:
                label += f"  [{engine:>9}]"
            line = f"  {label}  {record['seconds']:9.4f}s"
            if "seconds_per_sweep" in record:
                line += f"  ({record['seconds_per_sweep'] * 1e3:8.2f} ms/sweep)"
            if "speedup_vs_reference" in record:
                line += f"  {record['speedup_vs_reference']:6.2f}x vs reference"
            print(line)
        summary = report.get("summary", {})
        if "best_speedup" in summary:
            print(f"  best engine speedup: {summary['best_speedup']:.2f}x "
                  f"({summary['best_engine']})")
        if "figure8" in summary:
            for size, split in summary["figure8"].items():
                mining = split.get("phrase_mining") or 0.0
                modeling = split.get("topic_modeling") or 0.0
                print(f"  {size:>6} docs  mining={mining:.3f}s "
                      f"topic_modeling={modeling:.3f}s")
        if "latency_p50_ms" in summary:
            print(f"  serving throughput: "
                  f"{summary['docs_per_second']:.1f} docs/s  "
                  f"p50={summary['latency_p50_ms']:.2f}ms  "
                  f"p95={summary['latency_p95_ms']:.2f}ms")
        if "worker_scaling" in summary:
            curve = "  ".join(
                f"{workers}w={value:.1f}" if value else f"{workers}w=?"
                for workers, value in sorted(
                    summary["worker_scaling"].items(), key=lambda kv: int(kv[0])))
            line = f"  fleet scaling (docs/s): {curve}"
            if "fleet_speedup" in summary:
                line += (f"  -> {summary['fleet_speedup']:.2f}x at "
                         f"{summary['fleet_workers']} workers")
            print(line)
        if "refresh_seconds" in summary:
            print(f"  ingest throughput: "
                  f"{summary['docs_per_second']:.1f} docs/s  "
                  f"refresh latency: {summary['refresh_seconds']:.3f}s")


def main(argv=None) -> int:
    """Run the benchmark CLI; returns the process exit code.

    With ``--compare``, the fresh run is matched against the given baseline
    artifacts and the exit code is 1 when any matched record regressed past
    ``--regression-threshold``.
    """
    args = build_parser().parse_args(argv)
    config = config_from_args(args)
    baselines = None
    if args.compare:
        from repro.bench.compare import compare_runs, load_baselines

        # Load baselines BEFORE running: the fresh run writes BENCH_*.json
        # into the output directory, and when that overlaps the baseline
        # location (e.g. `--compare .` from the repo root) a late load
        # would silently compare the run against itself.
        baselines = load_baselines(args.compare, config.stages)
    reports = run_benchmarks(config)
    _print_summary(reports)
    out = Path(config.output_dir).resolve()
    names = ", ".join(f"BENCH_{stage}.json" for stage in reports)
    print(f"\nwrote {names} to {out}")
    if baselines is not None:
        lines, n_regressions = compare_runs(baselines, reports,
                                            args.regression_threshold)
        print("\n".join(lines))
        if n_regressions:
            print(f"\n{n_regressions} record(s) regressed beyond "
                  f"{args.regression_threshold:g}x")
            return 1
        print("\nno regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
