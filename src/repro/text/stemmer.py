"""The Porter stemming algorithm (Porter, 1980), implemented from scratch.

The paper stems all tokens with the Porter stemmer "to address the various
forms of words (e.g. cooking, cook, cooked) and phrase sparsity" and later
unstems for visualisation.  This is a faithful implementation of the original
five-step algorithm described in

    M. F. Porter, "An algorithm for suffix stripping",
    Program 14(3), 130-137, 1980.

The implementation follows the classic measure-based formulation: a word is
viewed as ``[C](VC)^m[V]`` where ``C``/``V`` are maximal consonant/vowel
sequences and ``m`` is the *measure*.  Each step applies the longest matching
suffix rule whose condition is satisfied.
"""

from __future__ import annotations

from typing import Dict


class PorterStemmer:
    """Porter stemmer with a per-instance memo cache.

    Stemming is a pure function of the word, and real corpora repeat words
    heavily, so each instance caches its results — this is the dominant
    preprocessing cost on the serving hot path.  The cache is bounded (it
    resets after :data:`CACHE_LIMIT` distinct words) so long-lived server
    processes cannot grow it without bound.

    Usage::

        stemmer = PorterStemmer()
        stemmer.stem("relational")   # -> "relat"
        stemmer.stem("caresses")     # -> "caress"
    """

    #: Distinct words memoised before the cache resets.
    CACHE_LIMIT = 262144

    def __init__(self) -> None:
        self._cache: dict[str, str] = {}

    def stem(self, word: str) -> str:
        """Return the Porter stem of ``word`` (lowercased), memoised."""
        cached = self._cache.get(word)
        if cached is None:
            if len(self._cache) >= self.CACHE_LIMIT:
                self._cache.clear()
            cached = self._cache[word] = self._stem_uncached(word)
        return cached

    _VOWELS = "aeiou"

    # -- public API -----------------------------------------------------------
    def _stem_uncached(self, word: str) -> str:
        """Compute the Porter stem of ``word`` (lowercased)."""
        word = word.lower()
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

    # -- character classification ----------------------------------------------
    def _is_consonant(self, word: str, i: int) -> bool:
        ch = word[i]
        if ch in self._VOWELS:
            return False
        if ch == "y":
            return i == 0 or not self._is_consonant(word, i - 1)
        return True

    def _measure(self, stem: str) -> int:
        """Return m, the number of VC sequences in ``stem``."""
        forms = []
        for i in range(len(stem)):
            forms.append("c" if self._is_consonant(stem, i) else "v")
        collapsed = []
        for f in forms:
            if not collapsed or collapsed[-1] != f:
                collapsed.append(f)
        return "".join(collapsed).count("vc")

    def _contains_vowel(self, stem: str) -> bool:
        return any(not self._is_consonant(stem, i) for i in range(len(stem)))

    def _ends_double_consonant(self, word: str) -> bool:
        return (len(word) >= 2 and word[-1] == word[-2]
                and self._is_consonant(word, len(word) - 1))

    def _ends_cvc(self, word: str) -> bool:
        """True when the word ends consonant-vowel-consonant, the final
        consonant not being w, x or y (the *o rule)."""
        if len(word) < 3:
            return False
        if not self._is_consonant(word, len(word) - 3):
            return False
        if self._is_consonant(word, len(word) - 2):
            return False
        if not self._is_consonant(word, len(word) - 1):
            return False
        return word[-1] not in "wxy"

    # -- rule application -------------------------------------------------------
    def _replace_if_m(self, word: str, suffix: str, replacement: str,
                      min_measure: int) -> str | None:
        """If ``word`` ends with ``suffix`` and the stem measure exceeds
        ``min_measure``, return the replaced form; otherwise ``None`` when the
        suffix matched but the condition failed, and ``None`` when it did not
        match (callers distinguish via :meth:`_try_rules`)."""
        if not word.endswith(suffix):
            return None
        stem = word[: len(word) - len(suffix)]
        if self._measure(stem) > min_measure:
            return stem + replacement
        return word

    def _try_rules(self, word: str, rules: Dict[str, str], min_measure: int) -> str:
        """Apply the longest matching rule from ``rules`` (suffix → new suffix)
        subject to measure > ``min_measure``.  Only the longest matching suffix
        is considered, as in the original algorithm."""
        match = ""
        for suffix in rules:
            if word.endswith(suffix) and len(suffix) > len(match):
                match = suffix
        if not match:
            return word
        stem = word[: len(word) - len(match)]
        if self._measure(stem) > min_measure:
            return stem + rules[match]
        return word

    # -- the five steps ----------------------------------------------------------
    def _step1a(self, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    def _step1b(self, word: str) -> str:
        if word.endswith("eed"):
            stem = word[:-3]
            if self._measure(stem) > 0:
                return word[:-1]
            return word
        flag = False
        if word.endswith("ed"):
            stem = word[:-2]
            if self._contains_vowel(stem):
                word = stem
                flag = True
        elif word.endswith("ing"):
            stem = word[:-3]
            if self._contains_vowel(stem):
                word = stem
                flag = True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if self._ends_double_consonant(word) and word[-1] not in "lsz":
                return word[:-1]
            if self._measure(word) == 1 and self._ends_cvc(word):
                return word + "e"
        return word

    def _step1c(self, word: str) -> str:
        if word.endswith("y") and self._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_RULES = {
        "ational": "ate", "tional": "tion", "enci": "ence", "anci": "ance",
        "izer": "ize", "abli": "able", "alli": "al", "entli": "ent",
        "eli": "e", "ousli": "ous", "ization": "ize", "ation": "ate",
        "ator": "ate", "alism": "al", "iveness": "ive", "fulness": "ful",
        "ousness": "ous", "aliti": "al", "iviti": "ive", "biliti": "ble",
    }

    def _step2(self, word: str) -> str:
        return self._try_rules(word, self._STEP2_RULES, 0)

    _STEP3_RULES = {
        "icate": "ic", "ative": "", "alize": "al", "iciti": "ic",
        "ical": "ic", "ful": "", "ness": "",
    }

    def _step3(self, word: str) -> str:
        return self._try_rules(word, self._STEP3_RULES, 0)

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    )

    def _step4(self, word: str) -> str:
        match = ""
        for suffix in self._STEP4_SUFFIXES:
            if word.endswith(suffix) and len(suffix) > len(match):
                match = suffix
        if not match:
            return word
        stem = word[: len(word) - len(match)]
        if match == "ion" and (not stem or stem[-1] not in "st"):
            return word
        if self._measure(stem) > 1:
            return stem
        return word

    def _step5a(self, word: str) -> str:
        if word.endswith("e"):
            stem = word[:-1]
            m = self._measure(stem)
            if m > 1:
                return stem
            if m == 1 and not self._ends_cvc(stem):
                return stem
        return word

    def _step5b(self, word: str) -> str:
        if (self._measure(word) > 1 and self._ends_double_consonant(word)
                and word.endswith("l")):
            return word[:-1]
        return word
