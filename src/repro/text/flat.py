"""Flat-buffer corpus encoding: chunked documents as contiguous arrays.

The vectorized phrase-mining and segmentation engines operate on a *flat*
view of the corpus: every chunk's token ids concatenated into one contiguous
``int32`` array, plus an offsets array delimiting chunks and a per-chunk
document index.  This is the same buffers-first layout the PhraseLDA engines
use for cliques (:class:`repro.topicmodel.gibbs.FlatPhraseCorpus`), applied
one stage earlier in the pipeline: a single pass of NumPy indexing can then
answer questions that the pure-Python reference engines answer with
per-position tuple slicing.

Empty chunks are dropped during encoding — mirroring the reference miner,
which skips them — so :attr:`FlatChunks.total_tokens` is by construction the
token count the mining algorithms actually see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.text.corpus import Corpus


@dataclass
class FlatChunks:
    """All chunk tokens of a document collection in one contiguous buffer.

    Attributes
    ----------
    tokens:
        ``int32`` array holding every (non-empty) chunk's token ids,
        concatenated in document order.
    offsets:
        ``int64`` array of length ``n_chunks + 1``; chunk ``i`` occupies
        ``tokens[offsets[i]:offsets[i + 1]]``.
    doc_ids:
        ``int32`` array of length ``n_chunks`` mapping each chunk back to
        the index of the document it came from (within the encoded
        collection, in input order).
    n_documents:
        Number of documents encoded (including documents whose chunks were
        all empty).
    """

    tokens: np.ndarray
    offsets: np.ndarray
    doc_ids: np.ndarray
    n_documents: int

    @classmethod
    def from_documents(cls, documents: Sequence[Sequence[Sequence[int]]]) -> "FlatChunks":
        """Encode ``documents`` (each a sequence of token-id chunks).

        Empty chunks are dropped (they carry no tokens and the miners skip
        them); empty documents keep their slot in ``n_documents`` so callers
        can reassemble per-document results positionally.
        """
        flat_tokens: List[int] = []
        lengths: List[int] = []
        doc_ids: List[int] = []
        for doc_index, chunks in enumerate(documents):
            for chunk in chunks:
                if not len(chunk):
                    continue
                flat_tokens.extend(chunk)
                lengths.append(len(chunk))
                doc_ids.append(doc_index)
        offsets = np.zeros(len(lengths) + 1, dtype=np.int64)
        if lengths:
            np.cumsum(lengths, out=offsets[1:])
        return cls(tokens=np.asarray(flat_tokens, dtype=np.int32),
                   offsets=offsets,
                   doc_ids=np.asarray(doc_ids, dtype=np.int32),
                   n_documents=len(documents))

    @classmethod
    def from_corpus(cls, corpus: "Corpus") -> "FlatChunks":
        """Encode every document of a :class:`~repro.text.corpus.Corpus`."""
        return cls.from_documents([doc.chunks for doc in corpus])

    @property
    def n_chunks(self) -> int:
        """Number of (non-empty) chunks encoded."""
        return len(self.offsets) - 1

    @property
    def total_tokens(self) -> int:
        """Total token count across all encoded chunks.

        This is exactly the ``L`` the miners report as
        :attr:`~repro.core.frequent_phrases.FrequentPhraseMiningResult.total_tokens`
        and use as the Bernoulli-trial count of the significance null model.
        """
        return int(self.offsets[-1])

    @property
    def chunk_lengths(self) -> np.ndarray:
        """``int64`` array of per-chunk token counts."""
        return np.diff(self.offsets)

    def chunk(self, index: int) -> List[int]:
        """Return chunk ``index`` as a plain list of ints (for debugging)."""
        start, end = self.offsets[index], self.offsets[index + 1]
        return [int(w) for w in self.tokens[start:end]]

    def chunk_end_per_position(self) -> np.ndarray:
        """For every token position, the (exclusive) end offset of its chunk."""
        return np.repeat(self.offsets[1:], self.chunk_lengths)

    def chunk_index_per_position(self) -> np.ndarray:
        """For every token position, the index of the chunk containing it."""
        return np.repeat(np.arange(self.n_chunks, dtype=np.int64),
                         self.chunk_lengths)
