"""Tokenisation and phrase-invariant chunk splitting.

Two facts from the paper shape this module:

* Phrases are *contiguous* token sequences, so tokenisation order matters and
  tokens never cross punctuation that terminates a phrase.
* Section 4.1 notes that splitting documents on "phrase-invariant punctuation
  (commas, periods, semicolons, etc)" keeps candidate generation effectively
  linear in corpus size, because each chunk is of roughly constant size.

The tokeniser therefore produces *chunks*: lists of lowercase word tokens
between phrase-invariant punctuation marks.  Downstream code never forms a
phrase across a chunk boundary.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Sequence

# Punctuation that terminates a phrase.  A phrase can never span one of these.
PHRASE_INVARIANT_PUNCTUATION = frozenset(
    [".", ",", ";", ":", "!", "?", "(", ")", "[", "]", "{", "}", '"',
     "—", "–", "…"]
)

_TOKEN_RE = re.compile(r"[A-Za-z][A-Za-z'\-]*|\d+(?:\.\d+)?|[^\sA-Za-z0-9]")
_WORD_RE = re.compile(r"^[A-Za-z][A-Za-z'\-]*$")
_NUMBER_RE = re.compile(r"^\d+(?:\.\d+)?$")


def tokenize(text: str) -> List[str]:
    """Split raw ``text`` into lowercase word/number/punctuation tokens."""
    return [tok.lower() for tok in _TOKEN_RE.findall(text)]


def split_chunks(tokens: Sequence[str], keep_numbers: bool = False) -> List[List[str]]:
    """Split a token stream into phrase-invariant chunks of word tokens.

    Punctuation tokens in :data:`PHRASE_INVARIANT_PUNCTUATION` close the
    current chunk and are discarded.  Other punctuation (apostrophes or
    hyphens are kept inside word tokens by the tokeniser) is dropped.  Number
    tokens are dropped unless ``keep_numbers`` is set — the paper's corpora
    are title/abstract/review text where numbers carry little topical signal.
    """
    chunks: List[List[str]] = []
    current: List[str] = []
    for token in tokens:
        if token in PHRASE_INVARIANT_PUNCTUATION:
            if current:
                chunks.append(current)
                current = []
            continue
        if _WORD_RE.match(token):
            current.append(token)
        elif keep_numbers and _NUMBER_RE.match(token):
            current.append(token)
        # any other symbol is ignored
    if current:
        chunks.append(current)
    return chunks


@dataclass
class Tokenizer:
    """Configurable tokeniser producing phrase-invariant chunks.

    Parameters
    ----------
    lowercase:
        Lowercase all tokens (the paper's corpora are case-folded).
    keep_numbers:
        Keep numeric tokens as words.
    min_token_length:
        Drop word tokens shorter than this many characters (after
        lowercasing); 1 keeps everything.
    """

    lowercase: bool = True
    keep_numbers: bool = False
    min_token_length: int = 1
    extra_phrase_breakers: frozenset = field(default_factory=frozenset)

    def tokenize(self, text: str) -> List[str]:
        """Return the flat token list for ``text``."""
        tokens = _TOKEN_RE.findall(text)
        if self.lowercase:
            tokens = [tok.lower() for tok in tokens]
        return tokens

    def chunk(self, text: str) -> List[List[str]]:
        """Return phrase-invariant chunks of word tokens for ``text``."""
        breakers = PHRASE_INVARIANT_PUNCTUATION | self.extra_phrase_breakers
        chunks: List[List[str]] = []
        current: List[str] = []
        for token in self.tokenize(text):
            if token in breakers:
                if current:
                    chunks.append(current)
                    current = []
                continue
            is_word = bool(_WORD_RE.match(token))
            is_number = bool(_NUMBER_RE.match(token))
            if not is_word and not (self.keep_numbers and is_number):
                continue
            if len(token) < self.min_token_length:
                continue
            current.append(token)
        if current:
            chunks.append(current)
        return chunks
