"""End-to-end preprocessing pipeline: raw strings → :class:`Corpus`.

Follows the paper's Section 7.1 recipe:

1. tokenise and split each document on phrase-invariant punctuation,
2. remove English stop words,
3. stem each remaining token with the Porter stemmer,
4. encode stems as integer ids over a shared vocabulary, remembering the
   most frequent surface form of each stem so visualisations can unstem.

Stemming and stop-word removal are both optional so that synthetic corpora
(whose tokens are already canonical) can bypass them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.text.corpus import Corpus
from repro.text.stemmer import PorterStemmer
from repro.text.stopwords import ENGLISH_STOP_WORDS
from repro.text.tokenizer import Tokenizer


@dataclass
class PreprocessConfig:
    """Configuration of the preprocessing pipeline.

    Parameters
    ----------
    stem:
        Apply Porter stemming (paper default: on).
    remove_stop_words:
        Remove English stop words before mining (paper default: on).
    lowercase:
        Case-fold the text.
    min_token_length:
        Drop word tokens shorter than this.
    min_word_frequency:
        Words occurring fewer times than this across the corpus are dropped
        from documents after the vocabulary pass (0/1 keeps all words).
    keep_numbers:
        Keep numeric tokens.
    """

    stem: bool = True
    remove_stop_words: bool = True
    lowercase: bool = True
    min_token_length: int = 1
    min_word_frequency: int = 1
    keep_numbers: bool = False


class Preprocessor:
    """Turns an iterable of raw document strings into a :class:`Corpus`."""

    def __init__(self, config: Optional[PreprocessConfig] = None) -> None:
        self.config = config or PreprocessConfig()
        self._tokenizer = Tokenizer(lowercase=self.config.lowercase,
                                    keep_numbers=self.config.keep_numbers,
                                    min_token_length=self.config.min_token_length)
        self._stemmer = PorterStemmer()

    # -- single-document helpers -------------------------------------------------
    def process_text(self, text: str) -> List[List[tuple[str, str]]]:
        """Return chunks of ``(processed_token, surface_token)`` pairs."""
        chunks = self._tokenizer.chunk(text)
        processed: List[List[tuple[str, str]]] = []
        for chunk in chunks:
            out_chunk: List[tuple[str, str]] = []
            for token in chunk:
                if self.config.remove_stop_words and token in ENGLISH_STOP_WORDS:
                    continue
                stem = self._stemmer.stem(token) if self.config.stem else token
                if not stem:
                    continue
                out_chunk.append((stem, token))
            if out_chunk:
                processed.append(out_chunk)
        return processed

    # -- corpus construction -------------------------------------------------------
    def build_corpus(self, texts: Iterable[str], name: str = "corpus") -> Corpus:
        """Preprocess ``texts`` into a :class:`Corpus`.

        The vocabulary is grown over the whole collection; when
        ``min_word_frequency > 1`` a second pass removes rare words from the
        documents (their ids stay in the vocabulary so that indexing remains
        stable, but they no longer appear in any chunk).
        """
        corpus = Corpus(name=name)
        per_doc_chunks: List[List[List[tuple[str, str]]]] = []
        raw_texts: List[str] = []
        for text in texts:
            per_doc_chunks.append(self.process_text(text))
            raw_texts.append(text)

        for doc_chunks, raw in zip(per_doc_chunks, raw_texts):
            id_chunks: List[List[int]] = []
            for chunk in doc_chunks:
                id_chunk = [
                    corpus.vocabulary.add(stem, surface_form=surface)
                    for stem, surface in chunk
                ]
                if id_chunk:
                    id_chunks.append(id_chunk)
            corpus.add_document(id_chunks, raw_text=raw)

        if self.config.min_word_frequency > 1:
            self._drop_rare_words(corpus)
        return corpus

    def _drop_rare_words(self, corpus: Corpus) -> None:
        threshold = self.config.min_word_frequency
        vocab = corpus.vocabulary
        keep = {
            word_id
            for word_id in range(len(vocab))
            if vocab.frequency_of(word_id) >= threshold
        }
        for doc in corpus.documents:
            doc.chunks = [
                [w for w in chunk if w in keep]
                for chunk in doc.chunks
            ]
            doc.chunks = [chunk for chunk in doc.chunks if chunk]


def preprocess_corpus(texts: Sequence[str], name: str = "corpus",
                      config: Optional[PreprocessConfig] = None) -> Corpus:
    """Convenience wrapper: preprocess ``texts`` with ``config`` into a corpus."""
    return Preprocessor(config).build_corpus(texts, name=name)
