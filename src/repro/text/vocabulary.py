"""Word ↔ integer-id mapping with frequency bookkeeping and unstemming.

The problem definition (paper Section 2) indexes all unique words with a
vocabulary of ``V`` words; tokens are then integers ``1..V`` (0-based here).
Because the pipeline stems words before mining, the vocabulary also tracks,
for every stem, the most frequent surface form that produced it so that
visualisations can "unstem" phrases back to readable English (Section 7.1).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence


class Vocabulary:
    """Bidirectional word/id mapping.

    Attributes
    ----------
    word_to_id:
        Mapping from (stemmed) word string to integer id.
    id_to_word:
        List such that ``id_to_word[i]`` is the word with id ``i``.
    """

    def __init__(self) -> None:
        self.word_to_id: Dict[str, int] = {}
        self.id_to_word: List[str] = []
        self._frequencies: List[int] = []
        # stem -> Counter of surface forms that stemmed to it
        self._surface_forms: Dict[str, Counter] = {}

    # -- size / lookup ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.id_to_word)

    def __contains__(self, word: str) -> bool:
        return word in self.word_to_id

    def id_of(self, word: str) -> int:
        """Return the id of ``word``; raises ``KeyError`` when absent."""
        return self.word_to_id[word]

    def word_of(self, word_id: int) -> str:
        """Return the word string for ``word_id``."""
        return self.id_to_word[word_id]

    def frequency_of(self, word_id: int) -> int:
        """Return the corpus frequency recorded for ``word_id``."""
        return self._frequencies[word_id]

    # -- construction -----------------------------------------------------------
    def add(self, word: str, count: int = 1, surface_form: Optional[str] = None) -> int:
        """Add an occurrence of ``word`` and return its id.

        ``surface_form`` is the original (unstemmed) token; recording it lets
        :meth:`unstem` recover the most common readable form later.
        """
        word_id = self.word_to_id.get(word)
        if word_id is None:
            word_id = len(self.id_to_word)
            self.word_to_id[word] = word_id
            self.id_to_word.append(word)
            self._frequencies.append(0)
        self._frequencies[word_id] += count
        if surface_form is not None:
            self._surface_forms.setdefault(word, Counter())[surface_form] += count
        return word_id

    def encode(self, tokens: Sequence[str], grow: bool = True) -> List[int]:
        """Encode ``tokens`` as word ids.

        With ``grow=False`` unknown tokens are skipped instead of added, which
        is what held-out perplexity evaluation needs.
        """
        ids: List[int] = []
        for token in tokens:
            if grow:
                ids.append(self.add(token))
            else:
                word_id = self.word_to_id.get(token)
                if word_id is not None:
                    ids.append(word_id)
        return ids

    def decode(self, word_ids: Iterable[int]) -> List[str]:
        """Return the word strings for ``word_ids``."""
        return [self.id_to_word[i] for i in word_ids]

    # -- unstemming ---------------------------------------------------------------
    def unstem(self, word: str) -> str:
        """Return the most frequent surface form recorded for stem ``word``.

        Falls back to the stem itself when no surface form was recorded (e.g.
        for synthetic corpora that skip stemming).
        """
        forms = self._surface_forms.get(word)
        if not forms:
            return word
        return forms.most_common(1)[0][0]

    def unstem_id(self, word_id: int) -> str:
        """Unstem by word id."""
        return self.unstem(self.id_to_word[word_id])

    def unstem_phrase(self, word_ids: Sequence[int]) -> str:
        """Return the readable (unstemmed, space-joined) form of a phrase."""
        return " ".join(self.unstem_id(i) for i in word_ids)

    # -- serialisation --------------------------------------------------------------
    def export_entries(self) -> List[tuple[str, int, str]]:
        """Export the vocabulary as ``(word, frequency, surface_form)`` rows.

        Returns
        -------
        list of tuple
            One ``(word, frequency, best_surface_form)`` triple per word id,
            in id order.  Only the *most frequent* surface form of each stem
            is exported (that is all :meth:`unstem` ever consults), so the
            export is lossy with respect to minority surface spellings.

        See Also
        --------
        from_entries : rebuild a vocabulary from exported rows.
        """
        return [
            (word, self._frequencies[word_id], self.unstem(word))
            for word_id, word in enumerate(self.id_to_word)
        ]

    @classmethod
    def from_entries(cls, entries: Iterable[tuple[str, int, str]]) -> "Vocabulary":
        """Rebuild a vocabulary from :meth:`export_entries` rows.

        Parameters
        ----------
        entries:
            Iterable of ``(word, frequency, surface_form)`` triples; word ids
            are assigned in iteration order, so feeding back the rows of
            :meth:`export_entries` reproduces the original id assignment.

        Returns
        -------
        Vocabulary
            A vocabulary for which ``id_of``, ``frequency_of`` and
            :meth:`unstem` agree with the exporting instance.
        """
        vocabulary = cls()
        for word, frequency, surface_form in entries:
            vocabulary.add(str(word), count=int(frequency),
                           surface_form=str(surface_form))
        return vocabulary

    def export_state(self) -> List[tuple[str, int, List[tuple[str, int]]]]:
        """Export the vocabulary *losslessly*, surface-form counters included.

        Where :meth:`export_entries` keeps only each stem's single best
        surface form (all :meth:`unstem` consults, and all the artifact
        bundles persist), this export also carries every minority surface
        spelling with its count, in first-seen order.  That full fidelity is
        what incremental pipelines (``repro.stream``) need between ingests:
        a vocabulary restored with :meth:`from_state` and then grown with
        more documents behaves *identically* to one that saw all documents
        in a single pass — including :meth:`unstem` tie-breaking, which
        depends on surface-form insertion order and exact counts.

        Returns
        -------
        list of tuple
            One ``(word, frequency, [(surface_form, count), ...])`` row per
            word id, in id order.
        """
        return [
            (word, self._frequencies[word_id],
             list(self._surface_forms.get(word, {}).items()))
            for word_id, word in enumerate(self.id_to_word)
        ]

    @classmethod
    def from_state(cls, rows: Iterable[tuple[str, int, Iterable[tuple[str, int]]]],
                   ) -> "Vocabulary":
        """Rebuild a vocabulary from :meth:`export_state` rows, losslessly.

        Parameters
        ----------
        rows:
            ``(word, frequency, surface_form_counts)`` triples; word ids are
            assigned in iteration order (so feeding back
            :meth:`export_state` reproduces the original id assignment),
            and each stem's surface-form counter is restored form by form
            in the exported order.

        Returns
        -------
        Vocabulary
            Indistinguishable from the exporting instance: same ids,
            frequencies, and surface-form counters (so further :meth:`add`
            calls continue exactly where the exporter left off).
        """
        vocabulary = cls()
        for word, frequency, forms in rows:
            word = str(word)
            word_id = len(vocabulary.id_to_word)
            vocabulary.word_to_id[word] = word_id
            vocabulary.id_to_word.append(word)
            vocabulary._frequencies.append(int(frequency))
            restored = Counter()
            for form, count in forms:
                restored[str(form)] = int(count)
            if restored:
                vocabulary._surface_forms[word] = restored
        return vocabulary

    # -- pruning -------------------------------------------------------------------
    def top_words(self, n: int) -> List[str]:
        """Return the ``n`` most frequent words (by recorded frequency)."""
        order = sorted(range(len(self.id_to_word)),
                       key=lambda i: (-self._frequencies[i], self.id_to_word[i]))
        return [self.id_to_word[i] for i in order[:n]]
