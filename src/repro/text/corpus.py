"""Document and corpus containers.

A corpus (paper Section 2) is ``D`` documents, each a sequence of token ids
over a shared vocabulary.  Because phrase mining never crosses
phrase-invariant punctuation, documents store their tokens as a list of
*chunks*; the flat token sequence is the concatenation of the chunks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from repro.text.vocabulary import Vocabulary
from repro.utils.rng import SeedLike, new_rng


@dataclass
class Document:
    """A single document as chunked token-id sequences.

    Attributes
    ----------
    chunks:
        Phrase-invariant chunks; each chunk is a list of word ids.  Phrases
        mined later never span two chunks.
    doc_id:
        Position of the document within its corpus.
    raw_text:
        Optional original text kept for inspection and examples.
    """

    chunks: List[List[int]]
    doc_id: int = 0
    raw_text: Optional[str] = None

    @property
    def tokens(self) -> List[int]:
        """Flat token-id sequence (concatenation of chunks)."""
        flat: List[int] = []
        for chunk in self.chunks:
            flat.extend(chunk)
        return flat

    @property
    def num_tokens(self) -> int:
        """Number of tokens ``N_d`` in the document."""
        return sum(len(chunk) for chunk in self.chunks)

    def __len__(self) -> int:
        return self.num_tokens

    def iter_chunks(self) -> Iterator[List[int]]:
        """Iterate over the document's chunks."""
        return iter(self.chunks)


@dataclass
class Corpus:
    """A collection of documents sharing one vocabulary.

    Attributes
    ----------
    documents:
        The documents, indexed by ``doc_id``.
    vocabulary:
        Shared :class:`~repro.text.vocabulary.Vocabulary`.
    name:
        Human-readable dataset name (used in benchmark output).
    """

    documents: List[Document] = field(default_factory=list)
    vocabulary: Vocabulary = field(default_factory=Vocabulary)
    name: str = "corpus"

    def __len__(self) -> int:
        return len(self.documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self.documents)

    def __getitem__(self, index: int) -> Document:
        return self.documents[index]

    @property
    def num_documents(self) -> int:
        """Number of documents ``D``."""
        return len(self.documents)

    @property
    def num_tokens(self) -> int:
        """Total token count ``N`` across all documents."""
        return sum(doc.num_tokens for doc in self.documents)

    @property
    def vocabulary_size(self) -> int:
        """Vocabulary size ``V``."""
        return len(self.vocabulary)

    def add_document(self, chunks: Sequence[Sequence[int]],
                     raw_text: Optional[str] = None) -> Document:
        """Append a document built from ``chunks`` and return it."""
        doc = Document(chunks=[list(c) for c in chunks],
                       doc_id=len(self.documents), raw_text=raw_text)
        self.documents.append(doc)
        return doc

    def split(self, holdout_fraction: float, seed: SeedLike = None) -> tuple["Corpus", "Corpus"]:
        """Split into (training, held-out) corpora sharing the vocabulary.

        Used by the perplexity experiments (Figures 6, 7): the topic model is
        trained on the first part and evaluated on the second.  The split is
        a deterministic shuffle controlled by ``seed`` (an int or an existing
        :class:`numpy.random.Generator`).
        """
        if not 0.0 < holdout_fraction < 1.0:
            raise ValueError("holdout_fraction must be in (0, 1)")
        rng = new_rng(seed)
        order = rng.permutation(len(self.documents))
        n_holdout = max(1, int(round(holdout_fraction * len(self.documents))))
        holdout_ids = set(int(i) for i in order[:n_holdout])

        train = Corpus(vocabulary=self.vocabulary, name=f"{self.name}-train")
        held = Corpus(vocabulary=self.vocabulary, name=f"{self.name}-heldout")
        for doc in self.documents:
            target = held if doc.doc_id in holdout_ids else train
            target.add_document(doc.chunks, raw_text=doc.raw_text)
        return train, held

    def subsample(self, n_documents: int, seed: SeedLike = None) -> "Corpus":
        """Return a corpus containing a random sample of ``n_documents``.

        Mirrors the paper's "sampled dblp titles/abstracts" datasets used to
        make the expensive baselines tractable (Table 3).
        """
        if n_documents >= len(self.documents):
            return self
        rng = new_rng(seed)
        chosen = rng.choice(len(self.documents), size=n_documents, replace=False)
        sample = Corpus(vocabulary=self.vocabulary,
                        name=f"{self.name}-sample{n_documents}")
        for doc_id in sorted(int(i) for i in chosen):
            doc = self.documents[doc_id]
            sample.add_document(doc.chunks, raw_text=doc.raw_text)
        return sample
