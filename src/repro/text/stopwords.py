"""English stop-word list.

Section 7.1 of the paper removes English stop words before phrase mining and
topic modelling and re-inserts them only for visualisation.  We ship a
self-contained list (a superset of the classic SMART/Glasgow short lists)
rather than depending on an external NLP toolkit.
"""

from __future__ import annotations

ENGLISH_STOP_WORDS = frozenset("""
a about above after again against all am an and any are aren't as at be
because been before being below between both but by can cannot can't could
couldn't did didn't do does doesn't doing don't down during each few for from
further had hadn't has hasn't have haven't having he he'd he'll he's her here
here's hers herself him himself his how how's i i'd i'll i'm i've if in into
is isn't it it's its itself let's me more most mustn't my myself no nor not of
off on once only or other ought our ours ourselves out over own same shan't
she she'd she'll she's should shouldn't so some such than that that's the
their theirs them themselves then there there's these they they'd they'll
they're they've this those through to too under until up very was wasn't we
we'd we'll we're we've were weren't what what's when when's where where's
which while who who's whom why why's with won't would wouldn't you you'd
you'll you're you've your yours yourself yourselves
also may might must shall upon via within without toward towards whether
yet thus hence however therefore moreover furthermore etc ie eg
""".split())
"""Frozen set of lowercase English stop words."""


def is_stop_word(token: str) -> bool:
    """Return ``True`` when ``token`` (any case) is an English stop word."""
    return token.lower() in ENGLISH_STOP_WORDS


def remove_stop_words(tokens: list[str]) -> list[str]:
    """Return ``tokens`` with stop words removed (order preserved)."""
    return [tok for tok in tokens if tok.lower() not in ENGLISH_STOP_WORDS]
