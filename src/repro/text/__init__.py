"""Text-processing substrate for the ToPMine reproduction.

The paper's pipeline (Section 7.1) performs tokenisation, Porter stemming,
and English stop-word removal before phrase mining and topic modelling, then
unstems and re-inserts stop words when visualising topics.  Everything needed
for that is implemented here from scratch:

* :mod:`repro.text.tokenizer` — regex tokeniser with sentence/chunk splitting
  on phrase-invariant punctuation.
* :mod:`repro.text.stemmer` — the Porter (1980) stemming algorithm.
* :mod:`repro.text.stopwords` — a standard English stop-word list.
* :mod:`repro.text.vocabulary` — word ↔ integer-id mapping with frequency
  bookkeeping and unstemming support.
* :mod:`repro.text.corpus` — ``Document`` / ``Corpus`` containers holding
  token-id sequences and chunk boundaries.
* :mod:`repro.text.preprocess` — the end-to-end preprocessing pipeline turning
  raw strings into a :class:`~repro.text.corpus.Corpus`.
"""

from repro.text.corpus import Corpus, Document
from repro.text.preprocess import PreprocessConfig, Preprocessor, preprocess_corpus
from repro.text.stemmer import PorterStemmer
from repro.text.stopwords import ENGLISH_STOP_WORDS, is_stop_word
from repro.text.tokenizer import Tokenizer, split_chunks, tokenize
from repro.text.vocabulary import Vocabulary

__all__ = [
    "Corpus",
    "Document",
    "PreprocessConfig",
    "Preprocessor",
    "preprocess_corpus",
    "PorterStemmer",
    "ENGLISH_STOP_WORDS",
    "is_stop_word",
    "Tokenizer",
    "split_chunks",
    "tokenize",
    "Vocabulary",
]
