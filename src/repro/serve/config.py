"""One frozen ``ServeConfig`` for every layer of the serving stack.

Serving knobs used to be scattered across ``ReproServer`` constructor
kwargs, ``MicroBatcher`` arguments, and ``repro serve`` CLI flags — three
surfaces that had to be kept in sync by hand, and that a fleet of worker
processes would immediately let drift apart.  :class:`ServeConfig` is the
single source of truth: the CLI builds one, the fleet supervisor ships the
same (pickled) instance to every worker, and ``ReproServer`` /
``MicroBatcher`` consume it directly, so all workers are guaranteed to run
identical batching windows, iteration defaults, and registry capacities.

The dataclass is frozen: a config can be shared between threads and
processes without defensive copies, and deriving a variant (e.g. pinning
the concrete port after an ephemeral bind) goes through
:meth:`ServeConfig.replace`, which re-runs validation.

Legacy constructor kwargs (``ReproServer(registry, port=0, ...)``) keep
working through :func:`config_from_legacy_kwargs`, which folds them into a
``ServeConfig`` while emitting a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Any, Dict, Optional

DEFAULT_ITERATIONS = 50
DEFAULT_SEED = 7

# Legacy ReproServer/serve() keyword names -> ServeConfig field names.
_LEGACY_KWARGS = {
    "host": "host",
    "port": "port",
    "max_batch_size": "max_batch_size",
    "batch_delay": "batch_delay",
    "default_iterations": "default_iterations",
}


@dataclass(frozen=True)
class ServeConfig:
    """Every serving knob, in one immutable place.

    Attributes
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (the fleet
        supervisor resolves it once and pins the concrete port into the
        config every worker receives, so all workers share one listener
        address).
    workers:
        Worker *processes* serving the same port via ``SO_REUSEPORT``.
        ``1`` means the classic in-process server (no fleet supervisor).
    max_batch_size, batch_delay:
        The micro-batching window of each worker's scheduler: a batch
        closes at ``max_batch_size`` pending requests or after
        ``batch_delay`` seconds, whichever comes first.
    default_iterations:
        Fold-in sweeps when a request does not specify ``iterations``.
    registry_capacity:
        Per-worker :class:`~repro.serve.registry.ModelRegistry` LRU cap.
    stream_poll:
        Stream supervisor poll interval in seconds (parent process only —
        the stream writer never moves into a worker).
    health_interval:
        Seconds between fleet supervisor liveness checks of its workers.
    restart_backoff:
        Seconds the supervisor waits before respawning a dead worker.
    shutdown_timeout:
        Seconds each worker gets to exit after the SIGTERM fan-out before
        it is killed.
    metrics_dir:
        Directory for mmap-backed per-process metric shards
        (:mod:`repro.obs`).  ``None`` means in-memory metrics only for a
        standalone server; the fleet supervisor provisions a temporary
        directory automatically so ``/metrics`` scrapes are always
        fleet-wide.
    history_interval_seconds:
        Seconds between metrics-history samples
        (:class:`~repro.obs.history.HistoryRecorder`): the fleet parent
        (or a standalone server with a ``metrics_dir``) appends one
        fleet-total frame per interval under ``<metrics_dir>/history/``,
        feeding SLO burn-rate evaluation and ``repro slo``.
    slow_request_seconds:
        Opt-in slow-request threshold: a request whose total wall-clock
        exceeds it emits one structured JSON log line with its span
        breakdown and increments ``slow_requests_total``.  ``None``
        disables the log (the counter then stays at 0).
    log_root:
        Directory of a :class:`~repro.stream.log.DocumentLog` to publish
        over ``/v1/log/manifest`` and ``/v1/log/shard/<name>`` so replica
        followers can tail this server's ingest log.  ``repro serve
        --stream`` points it at the stream's log automatically; ``None``
        (the default) keeps the log endpoints answering 404.
    """

    host: str = "127.0.0.1"
    port: int = 8765
    workers: int = 1
    max_batch_size: int = 32
    batch_delay: float = 0.005
    default_iterations: int = DEFAULT_ITERATIONS
    registry_capacity: int = 4
    stream_poll: float = 2.0
    health_interval: float = 0.25
    restart_backoff: float = 0.2
    shutdown_timeout: float = 5.0
    metrics_dir: Optional[str] = None
    history_interval_seconds: float = 5.0
    slow_request_seconds: Optional[float] = None
    log_root: Optional[str] = None

    def __post_init__(self) -> None:
        """Validate every field once, at construction (and per replace)."""
        if not self.host:
            raise ValueError("host must be non-empty")
        if not 0 <= self.port <= 65535:
            raise ValueError("port must be in [0, 65535]")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.batch_delay < 0:
            raise ValueError("batch_delay must be >= 0")
        if self.default_iterations < 1:
            raise ValueError("default_iterations must be >= 1")
        if self.registry_capacity < 1:
            raise ValueError("registry_capacity must be >= 1")
        for name in ("stream_poll", "health_interval", "restart_backoff",
                     "shutdown_timeout", "history_interval_seconds"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0")
        if self.metrics_dir is not None and not str(self.metrics_dir):
            raise ValueError("metrics_dir must be None or a non-empty path")
        if self.slow_request_seconds is not None \
                and self.slow_request_seconds <= 0:
            raise ValueError("slow_request_seconds must be None or > 0")
        if self.log_root is not None and not str(self.log_root):
            raise ValueError("log_root must be None or a non-empty path")

    def replace(self, **changes: Any) -> "ServeConfig":
        """Return a copy with ``changes`` applied (validation re-runs)."""
        return dataclasses.replace(self, **changes)

    def as_dict(self) -> Dict[str, Any]:
        """The config as a plain dict (for logs, benches, and manifests)."""
        return dataclasses.asdict(self)


def config_from_legacy_kwargs(config: Optional[ServeConfig],
                              legacy: Dict[str, Any],
                              owner: str) -> ServeConfig:
    """Fold pre-``ServeConfig`` keyword arguments into a :class:`ServeConfig`.

    ``owner`` names the call site for the warning text.  Passing *both* a
    config and legacy kwargs is an error — silently merging the two would
    make it ambiguous which surface wins.

    Raises
    ------
    TypeError
        On an unknown keyword, or when legacy kwargs are combined with an
        explicit ``config``.
    """
    unknown = set(legacy) - set(_LEGACY_KWARGS)
    if unknown:
        raise TypeError(
            f"{owner} got unexpected keyword argument(s): {sorted(unknown)}")
    if not legacy:
        return config if config is not None else ServeConfig()
    if config is not None:
        raise TypeError(
            f"{owner} takes either a ServeConfig or legacy keyword "
            f"arguments, not both (got config plus {sorted(legacy)})")
    warnings.warn(
        f"passing {sorted(legacy)} to {owner} is deprecated; build a "
        f"repro.serve.ServeConfig and pass it as `config` instead",
        DeprecationWarning, stacklevel=3)
    return ServeConfig(**{_LEGACY_KWARGS[key]: value
                          for key, value in legacy.items()})
