"""Thin stdlib client for the ``repro.serve`` HTTP API.

One small class, :class:`ServeClient`, wrapping ``urllib.request`` — no
third-party dependencies, mirroring the server's own constraint.  POST
bodies are built from the same typed schemas the server validates with
(:mod:`repro.serve.api`), so the client cannot drift from the handlers'
contract.  Server errors (JSON ``{"error": ...}`` bodies with 4xx/5xx
statuses) surface as :class:`ServeError` carrying the HTTP status and
the server's message.

Retries follow a capped exponential backoff with deterministic jitter
(:class:`~repro.utils.retry.RetryPolicy`): connection-level failures are
retried for every method (the request never reached a handler), read
timeouts only for idempotent GETs (a timed-out POST may already have
executed — re-sending would double-submit), and an optional per-call
``deadline`` bounds the total wall-clock spent inside one logical call so
``retries x timeout`` can never silently exceed the caller's budget.

Example
-------
::

    client = ServeClient("http://127.0.0.1:8765")
    client.health()["status"]                    # "ok"
    reply = client.infer(["an unseen document about data mining"], seed=7)
    reply["documents"][0]["theta"]               # the topic mixture
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.serve.api import InferRequest, SegmentRequest
from repro.utils.retry import RetryPolicy


class ServeError(Exception):
    """An HTTP error answered by the server (or an unreachable server).

    Attributes
    ----------
    status:
        HTTP status code, or ``0`` when the server could not be reached.
    request_id:
        The server's ``X-Request-Id`` for the failed request, when one was
        answered — the handle to find the request in server-side metrics
        and structured logs.  ``None`` for connection-level failures.
    """

    def __init__(self, status: int, message: str,
                 request_id: Optional[str] = None) -> None:
        if request_id is not None:
            message = f"{message} [request_id={request_id}]"
        super().__init__(message)
        self.status = status
        self.request_id = request_id


def _is_timeout(exc: BaseException) -> bool:
    """Whether ``exc`` is a socket timeout (possibly URLError-wrapped)."""
    if isinstance(exc, socket.timeout):
        return True
    return isinstance(getattr(exc, "reason", None), socket.timeout)


class ServeClient:
    """Talks JSON to a :class:`~repro.serve.http.ReproServer`.

    Parameters
    ----------
    base_url:
        The server's root, e.g. ``"http://127.0.0.1:8765"``.
    timeout:
        Per-attempt socket timeout in seconds.
    retries:
        How many times a request is retried after a retryable failure.
        Connection-level failures (refused, reset, unreachable) are
        retryable for every method — the request never reached a handler.
        Socket *timeouts* are retryable for idempotent GETs only: a
        timed-out POST may have executed server-side, so re-sending could
        double-submit.  HTTP error replies are **never** retried.
    retry_delay:
        Backoff before the first retry; subsequent retries double it up
        to ``max_retry_delay``, minus a deterministic jitter.
    max_retry_delay:
        Cap on any single backoff sleep.
    deadline:
        Optional overall wall-clock budget (seconds) per logical call,
        covering every attempt and backoff sleep.  ``None`` leaves the
        budget at ``(retries + 1) x timeout`` plus sleeps.
    extra_headers:
        Headers sent with every request (on top of ``Accept`` and
        ``Content-Type``).  The dict stays live — callers such as the
        replication follower mutate it to stamp an ``X-Request-Id`` on
        every call of one logical operation, so the primary's access
        logs and span metrics correlate across the whole sync.
    """

    def __init__(self, base_url: str, timeout: float = 60.0,
                 retries: int = 2, retry_delay: float = 0.1,
                 max_retry_delay: float = 2.0,
                 deadline: Optional[float] = None,
                 extra_headers: Optional[Mapping[str, str]] = None) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if retry_delay < 0:
            raise ValueError("retry_delay must be >= 0")
        if max_retry_delay < retry_delay:
            raise ValueError("max_retry_delay must be >= retry_delay")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be None or > 0")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.retry_delay = retry_delay
        self.max_retry_delay = max_retry_delay
        self.deadline = deadline
        self.extra_headers: Dict[str, str] = dict(extra_headers or {})
        self.retry_policy = RetryPolicy(
            retries=retries, base_delay=retry_delay,
            max_delay=max_retry_delay, deadline=deadline)

    # -- plumbing ----------------------------------------------------------------------
    def _perform(self, path: str,
                 payload: Optional[Dict[str, Any]] = None
                 ) -> Tuple[bytes, Dict[str, str]]:
        """GET (``payload is None``) or POST JSON; return (body, headers).

        Implements the retry contract described on the class; gives up
        with a status-0 :class:`ServeError` once retries or the deadline
        are exhausted.
        """
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        headers.update(self.extra_headers)
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        idempotent = payload is None
        policy = self.retry_policy
        start = time.monotonic()
        attempt = 0
        while True:
            remaining = policy.remaining(start)
            if remaining is not None and remaining <= 0.0:
                raise ServeError(
                    0, f"deadline of {policy.deadline}s exhausted after "
                       f"{attempt} attempt(s) against {url}")
            timeout = self.timeout if remaining is None \
                else min(self.timeout, remaining)
            request = urllib.request.Request(url, data=data, headers=headers)
            try:
                with urllib.request.urlopen(request,
                                            timeout=timeout) as reply:
                    return reply.read(), dict(reply.headers)
            except urllib.error.HTTPError as exc:
                detail = exc.read().decode("utf-8", errors="replace")
                try:
                    detail = json.loads(detail).get("error", detail)
                except json.JSONDecodeError:
                    pass
                headers_ = exc.headers  # may be None in synthetic HTTPErrors
                raise ServeError(
                    exc.code, detail,
                    request_id=headers_.get("X-Request-Id")
                    if headers_ is not None else None) from exc
            except (urllib.error.URLError, ConnectionError,
                    socket.timeout) as exc:
                # ConnectionError covers resets urllib surfaces raw, e.g.
                # http.client.RemoteDisconnected when a fleet worker dies
                # after accepting but before answering — the request never
                # reached a handler, so re-sending cannot double-submit.
                # A *timeout* is different: the request may be executing,
                # so only idempotent GETs retry it.
                timed_out = _is_timeout(exc)
                attempt += 1
                retryable = idempotent or not timed_out
                pause = policy.delay(attempt, token=url) \
                    if attempt <= policy.retries else 0.0
                remaining = policy.remaining(start)
                if not retryable or attempt > policy.retries or (
                        remaining is not None and pause >= remaining):
                    reason = getattr(exc, "reason", exc)
                    kind = "timed out" if timed_out else "unreachable"
                    raise ServeError(
                        0, f"server {kind} at {url} after "
                           f"{attempt} attempt(s): {reason}") from exc
                if pause:
                    time.sleep(pause)

    def _request(self, path: str, payload: Optional[Dict[str, Any]] = None,
                 raw: bool = False) -> Any:
        """Perform a request and decode the reply (JSON, or text if ``raw``)."""
        body, _ = self._perform(path, payload)
        if raw:
            return body.decode("utf-8")
        return json.loads(body)

    # -- endpoints ---------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """``GET /healthz`` — liveness, model names, uptime."""
        return self._request("/healthz")

    def metrics_text(self) -> str:
        """``GET /metrics`` — the raw Prometheus exposition text."""
        return self._request("/metrics", raw=True)

    def models(self) -> List[Dict[str, Any]]:
        """``GET /v1/models`` — every registered bundle's description."""
        return self._request("/v1/models")["models"]

    def models_reply(self) -> Dict[str, Any]:
        """``GET /v1/models`` — the full reply, including log progress."""
        return self._request("/v1/models")

    def infer(self, documents: Sequence[str], model: Optional[str] = None,
              seed: int = 7, iterations: Optional[int] = None,
              top: int = 3) -> Dict[str, Any]:
        """``POST /v1/infer`` — fold unseen documents into a model.

        Parameters mirror the endpoint schema; ``model`` may be omitted
        when the server hosts exactly one.  The reply's per-document
        ``theta`` mixtures are deterministic in ``seed`` (bit-identical to
        a local solo run), however the server batches the request.
        """
        request = InferRequest(documents=tuple(documents), model=model,
                               seed=seed, iterations=iterations, top=top)
        return self._request("/v1/infer", request.to_payload())

    def segment(self, documents: Sequence[str],
                model: Optional[str] = None) -> Dict[str, Any]:
        """``POST /v1/segment`` — frozen-table segmentation, no fold-in."""
        request = SegmentRequest(documents=tuple(documents), model=model)
        return self._request("/v1/segment", request.to_payload())

    def topics(self, model: Optional[str] = None, n: int = 10) -> Dict[str, Any]:
        """``GET /v1/topics`` — a model's per-topic unigram/phrase tables."""
        query: Dict[str, Any] = {"n": n}
        if model is not None:
            query["model"] = model
        return self._request("/v1/topics?" + urllib.parse.urlencode(query))

    # -- log shipping ------------------------------------------------------------------
    def log_manifest(self) -> Tuple[bytes, Dict[str, str]]:
        """``GET /v1/log/manifest`` — raw manifest bytes plus headers.

        The body is served verbatim from the primary's ``manifest.json``;
        ``X-Content-SHA256`` in the headers covers exactly those bytes.
        """
        return self._perform("/v1/log/manifest")

    def log_shard_range(self, name: str, offset: int = 0,
                        length: Optional[int] = None
                        ) -> Tuple[bytes, Dict[str, str]]:
        """``GET /v1/log/shard/<name>`` — one byte range of a shard file.

        Headers carry ``X-Content-SHA256`` (digest of the returned range),
        ``X-Content-Offset``, and ``X-Shard-Size`` (the primary's current
        full file size, which a follower fetches up to).
        """
        query: Dict[str, Any] = {"offset": offset}
        if length is not None:
            query["length"] = length
        return self._perform(f"/v1/log/shard/{name}?"
                             + urllib.parse.urlencode(query))

    def log_shard_digest(self, name: str) -> Dict[str, Any]:
        """``GET /v1/log/shard/<name>?digest`` — full-file size + SHA-256."""
        return self._request(f"/v1/log/shard/{name}?digest=1")
