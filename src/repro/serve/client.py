"""Thin stdlib client for the ``repro.serve`` HTTP API.

One small class, :class:`ServeClient`, wrapping ``urllib.request`` — no
third-party dependencies, mirroring the server's own constraint.  POST
bodies are built from the same typed schemas the server validates with
(:mod:`repro.serve.api`), so the client cannot drift from the handlers'
contract.  Server errors (JSON ``{"error": ...}`` bodies with 4xx/5xx
statuses) surface as :class:`ServeError` carrying the HTTP status and
the server's message.

Example
-------
::

    client = ServeClient("http://127.0.0.1:8765")
    client.health()["status"]                    # "ok"
    reply = client.infer(["an unseen document about data mining"], seed=7)
    reply["documents"][0]["theta"]               # the topic mixture
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Dict, List, Optional, Sequence

from repro.serve.api import InferRequest, SegmentRequest


class ServeError(Exception):
    """An HTTP error answered by the server (or an unreachable server).

    Attributes
    ----------
    status:
        HTTP status code, or ``0`` when the server could not be reached.
    request_id:
        The server's ``X-Request-Id`` for the failed request, when one was
        answered — the handle to find the request in server-side metrics
        and structured logs.  ``None`` for connection-level failures.
    """

    def __init__(self, status: int, message: str,
                 request_id: Optional[str] = None) -> None:
        if request_id is not None:
            message = f"{message} [request_id={request_id}]"
        super().__init__(message)
        self.status = status
        self.request_id = request_id


class ServeClient:
    """Talks JSON to a :class:`~repro.serve.http.ReproServer`.

    Parameters
    ----------
    base_url:
        The server's root, e.g. ``"http://127.0.0.1:8765"``.
    timeout:
        Per-request socket timeout in seconds.
    retries:
        How many times a request is retried after a *connection-level*
        failure (refused, reset, unreachable — ``urllib.error.URLError``).
        HTTP error replies are **never** retried: the server answered, so
        re-sending would double-submit.  The default of 2 makes brief
        server restarts and model hot-swap windows invisible to callers
        instead of surfacing as crashes.
    retry_delay:
        Seconds slept between connection-error attempts.
    """

    def __init__(self, base_url: str, timeout: float = 60.0,
                 retries: int = 2, retry_delay: float = 0.1) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if retry_delay < 0:
            raise ValueError("retry_delay must be >= 0")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.retry_delay = retry_delay

    # -- plumbing ----------------------------------------------------------------------
    def _request(self, path: str, payload: Optional[Dict[str, Any]] = None,
                 raw: bool = False) -> Any:
        """GET (``payload is None``) or POST JSON; decode the reply.

        Connection-level failures are retried up to ``self.retries`` times
        (with ``self.retry_delay`` between attempts) before surfacing as a
        status-0 :class:`ServeError`; HTTP error replies surface
        immediately with the server's status and message.
        """
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(url, data=data, headers=headers)
            try:
                with urllib.request.urlopen(request,
                                            timeout=self.timeout) as reply:
                    body = reply.read()
            except urllib.error.HTTPError as exc:
                detail = exc.read().decode("utf-8", errors="replace")
                try:
                    detail = json.loads(detail).get("error", detail)
                except json.JSONDecodeError:
                    pass
                headers_ = exc.headers  # may be None in synthetic HTTPErrors
                raise ServeError(
                    exc.code, detail,
                    request_id=headers_.get("X-Request-Id")
                    if headers_ is not None else None) from exc
            except (urllib.error.URLError, ConnectionError) as exc:
                # ConnectionError covers resets urllib surfaces raw, e.g.
                # http.client.RemoteDisconnected when a fleet worker dies
                # after accepting but before answering — the request never
                # reached a handler, so re-sending cannot double-submit.
                if attempt < self.retries:
                    if self.retry_delay:
                        time.sleep(self.retry_delay)
                    continue
                reason = getattr(exc, "reason", exc)
                raise ServeError(
                    0, f"server unreachable at {url} after "
                       f"{self.retries + 1} attempt(s): {reason}") from exc
            if raw:
                return body.decode("utf-8")
            return json.loads(body)

    # -- endpoints ---------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """``GET /healthz`` — liveness, model names, uptime."""
        return self._request("/healthz")

    def metrics_text(self) -> str:
        """``GET /metrics`` — the raw Prometheus exposition text."""
        return self._request("/metrics", raw=True)

    def models(self) -> List[Dict[str, Any]]:
        """``GET /v1/models`` — every registered bundle's description."""
        return self._request("/v1/models")["models"]

    def infer(self, documents: Sequence[str], model: Optional[str] = None,
              seed: int = 7, iterations: Optional[int] = None,
              top: int = 3) -> Dict[str, Any]:
        """``POST /v1/infer`` — fold unseen documents into a model.

        Parameters mirror the endpoint schema; ``model`` may be omitted
        when the server hosts exactly one.  The reply's per-document
        ``theta`` mixtures are deterministic in ``seed`` (bit-identical to
        a local solo run), however the server batches the request.
        """
        request = InferRequest(documents=tuple(documents), model=model,
                               seed=seed, iterations=iterations, top=top)
        return self._request("/v1/infer", request.to_payload())

    def segment(self, documents: Sequence[str],
                model: Optional[str] = None) -> Dict[str, Any]:
        """``POST /v1/segment`` — frozen-table segmentation, no fold-in."""
        request = SegmentRequest(documents=tuple(documents), model=model)
        return self._request("/v1/segment", request.to_payload())

    def topics(self, model: Optional[str] = None, n: int = 10) -> Dict[str, Any]:
        """``GET /v1/topics`` — a model's per-topic unigram/phrase tables."""
        query: Dict[str, Any] = {"n": n}
        if model is not None:
            query["model"] = model
        return self._request("/v1/topics?" + urllib.parse.urlencode(query))
