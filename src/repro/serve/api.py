"""Typed request/response schemas of the ``/v1/*`` serving API.

One source of truth for the JSON shapes that used to live as ad-hoc dict
literals inside ``serve/http.py`` (building responses) and
``serve/client.py`` (building requests).  With a fleet of worker
processes answering one port, every worker **must** serialize identically
— so both sides now go through the frozen dataclasses here:

* the HTTP handlers parse bodies with ``*.from_payload`` (validation
  errors surface as :class:`SchemaError`, rendered as HTTP 400) and
  serialize replies with ``*.to_payload``;
* :class:`~repro.serve.client.ServeClient` builds its POST bodies from
  the same request dataclasses, so a client request can never drift from
  what the handlers validate.

The wire format is unchanged from PR 3–5 (plain JSON objects); these
types only pin it.  ``/v1/models`` and ``/healthz`` replies additionally
carry the answering worker's ``worker_id`` plus per-entry
resident-version info (``resident_signature``/``resident_version``), so a
fleet observer can tell *which* worker answered and which bundle version
that worker currently has swapped in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.serve.config import DEFAULT_ITERATIONS, DEFAULT_SEED

SEED_RANGE = (0, 2**63 - 1)
ITERATIONS_RANGE = (1, 10_000)
TOP_RANGE = (1, 1_000)


class SchemaError(ValueError):
    """A request payload that does not match the API schema.

    Attributes
    ----------
    status:
        The HTTP status the server answers with (always in the 4xx range).
    """

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def int_field(payload: Dict[str, Any], name: str, default: int,
              bounds: Tuple[int, int]) -> int:
    """Read an optional bounded integer field, rejecting bools and floats."""
    value = payload.get(name, default)
    minimum, maximum = bounds
    if not isinstance(value, int) or isinstance(value, bool) \
            or not minimum <= value <= maximum:
        raise SchemaError(
            f"{name!r} must be an integer in [{minimum}, {maximum}]")
    return value


def documents_field(payload: Dict[str, Any]) -> Tuple[str, ...]:
    """Read the mandatory ``documents`` list-of-strings field."""
    documents = payload.get("documents")
    if not isinstance(documents, list) or not documents \
            or not all(isinstance(doc, str) for doc in documents):
        raise SchemaError("'documents' must be a non-empty list of strings")
    return tuple(documents)


def model_field(payload: Dict[str, Any]) -> Optional[str]:
    """Read the optional ``model`` field (``None`` = server default)."""
    model = payload.get("model")
    if model is not None and not isinstance(model, str):
        raise SchemaError("'model' must be a string")
    return model


# -- requests --------------------------------------------------------------------------
@dataclass(frozen=True)
class InferRequest:
    """``POST /v1/infer`` body: fold documents into a model."""

    documents: Tuple[str, ...]
    model: Optional[str] = None
    seed: int = DEFAULT_SEED
    iterations: Optional[int] = None
    top: int = 3

    @classmethod
    def from_payload(cls, payload: Dict[str, Any],
                     default_iterations: int = DEFAULT_ITERATIONS) \
            -> "InferRequest":
        """Validate a decoded JSON body into a request (or raise
        :class:`SchemaError`); absent ``iterations`` resolves to the
        server's ``default_iterations``."""
        return cls(
            documents=documents_field(payload),
            model=model_field(payload),
            seed=int_field(payload, "seed", DEFAULT_SEED, SEED_RANGE),
            iterations=int_field(payload, "iterations", default_iterations,
                                 ITERATIONS_RANGE),
            top=int_field(payload, "top", 3, TOP_RANGE))

    def to_payload(self) -> Dict[str, Any]:
        """The JSON body the client POSTs (omits unset optionals)."""
        payload: Dict[str, Any] = {"documents": list(self.documents),
                                   "seed": self.seed, "top": self.top}
        if self.model is not None:
            payload["model"] = self.model
        if self.iterations is not None:
            payload["iterations"] = self.iterations
        return payload


@dataclass(frozen=True)
class SegmentRequest:
    """``POST /v1/segment`` body: frozen-table segmentation, no fold-in."""

    documents: Tuple[str, ...]
    model: Optional[str] = None

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "SegmentRequest":
        """Validate a decoded JSON body (or raise :class:`SchemaError`)."""
        return cls(documents=documents_field(payload),
                   model=model_field(payload))

    def to_payload(self) -> Dict[str, Any]:
        """The JSON body the client POSTs (omits unset optionals)."""
        payload: Dict[str, Any] = {"documents": list(self.documents)}
        if self.model is not None:
            payload["model"] = self.model
        return payload


# -- responses -------------------------------------------------------------------------
@dataclass(frozen=True)
class DocumentMixture:
    """One document's entry in an :class:`InferResponse`."""

    theta: Tuple[float, ...]
    top_topics: Tuple[Tuple[int, float], ...]
    n_phrases: int
    n_unknown_tokens: int

    @classmethod
    def from_inference(cls, document: Any, top: int) -> "DocumentMixture":
        """Build from one :class:`~repro.core.infer.DocumentInference`."""
        return cls(
            theta=tuple(float(p) for p in document.theta),
            top_topics=tuple((int(k), float(p))
                             for k, p in document.top_topics(top)),
            n_phrases=len(document.phrases),
            n_unknown_tokens=document.n_unknown_tokens)

    def to_payload(self) -> Dict[str, Any]:
        """The JSON object serialized into the response."""
        return {"theta": list(self.theta),
                "top_topics": [[k, p] for k, p in self.top_topics],
                "n_phrases": self.n_phrases,
                "n_unknown_tokens": self.n_unknown_tokens}


@dataclass(frozen=True)
class InferResponse:
    """``POST /v1/infer`` reply: per-document topic mixtures.

    ``request_id`` mirrors the ``X-Request-Id`` response header into the
    body, so a client that logs replies (rather than headers) still has
    the handle to correlate with server-side span metrics and logs.
    """

    model: str
    n_topics: int
    iterations: int
    seed: int
    documents: Tuple[DocumentMixture, ...]
    request_id: Optional[str] = None

    @classmethod
    def from_result(cls, model: str, result: Any, request: InferRequest,
                    request_id: Optional[str] = None) -> "InferResponse":
        """Build from a batcher :class:`~repro.core.infer.InferenceResult`."""
        iterations = request.iterations if request.iterations is not None \
            else DEFAULT_ITERATIONS
        return cls(
            model=model, n_topics=result.n_topics, iterations=iterations,
            seed=request.seed,
            documents=tuple(DocumentMixture.from_inference(doc, request.top)
                            for doc in result.documents),
            request_id=request_id)

    def to_payload(self) -> Dict[str, Any]:
        """The JSON object serialized onto the wire."""
        payload = {"model": self.model, "n_topics": self.n_topics,
                   "iterations": self.iterations, "seed": self.seed,
                   "documents": [doc.to_payload() for doc in self.documents]}
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        return payload


@dataclass(frozen=True)
class SegmentedDocument:
    """One document's entry in a :class:`SegmentResponse`."""

    phrases: Tuple[str, ...]
    surface_phrases: Tuple[str, ...]
    n_unknown_tokens: int

    def to_payload(self) -> Dict[str, Any]:
        """The JSON object serialized into the response."""
        return {"phrases": list(self.phrases),
                "surface_phrases": list(self.surface_phrases),
                "n_unknown_tokens": self.n_unknown_tokens}


@dataclass(frozen=True)
class SegmentResponse:
    """``POST /v1/segment`` reply: phrase segmentations per document."""

    model: str
    documents: Tuple[SegmentedDocument, ...]

    def to_payload(self) -> Dict[str, Any]:
        """The JSON object serialized onto the wire."""
        return {"model": self.model,
                "documents": [doc.to_payload() for doc in self.documents]}


@dataclass(frozen=True)
class TopicEntry:
    """One topic's row in a :class:`TopicsResponse`."""

    topic: int
    unigrams: Tuple[Any, ...]
    phrases: Tuple[Any, ...]

    def to_payload(self) -> Dict[str, Any]:
        """The JSON object serialized into the response."""
        return {"topic": self.topic, "unigrams": list(self.unigrams),
                "phrases": list(self.phrases)}


@dataclass(frozen=True)
class TopicsResponse:
    """``GET /v1/topics`` reply: per-topic unigram/phrase tables."""

    model: str
    n_topics: int
    topics: Tuple[TopicEntry, ...]

    def to_payload(self) -> Dict[str, Any]:
        """The JSON object serialized onto the wire."""
        return {"model": self.model, "n_topics": self.n_topics,
                "topics": [entry.to_payload() for entry in self.topics]}


@dataclass(frozen=True)
class HealthResponse:
    """``GET /healthz`` reply: liveness plus the answering worker's id.

    ``slo`` (present once metrics history exists) lists one verdict dict
    per declared SLO (:class:`~repro.obs.slo.SLOVerdict`), so degradation
    *reasons* travel with the liveness answer — the status stays ``ok``
    even mid-breach; consumers such as the rollout health gate decide
    whether a breach blocks them.
    """

    status: str
    models: Tuple[str, ...]
    loaded: Tuple[str, ...]
    uptime_seconds: float
    worker_id: int = 0
    slo: Optional[Tuple[Dict[str, Any], ...]] = None

    def to_payload(self) -> Dict[str, Any]:
        """The JSON object serialized onto the wire."""
        payload: Dict[str, Any] = {
            "status": self.status, "models": list(self.models),
            "loaded": list(self.loaded),
            "uptime_seconds": self.uptime_seconds,
            "worker_id": self.worker_id}
        if self.slo is not None:
            payload["slo"] = [dict(verdict) for verdict in self.slo]
        return payload


@dataclass(frozen=True)
class ModelsResponse:
    """``GET /v1/models`` reply: registry descriptions from one worker.

    Each entry is a registry description dict
    (:meth:`~repro.serve.registry.ModelRegistry.describe_all`) stamped
    with the answering worker's ``worker_id``; resident entries carry
    ``resident_signature``/``resident_version`` so observers can watch a
    published bundle land on every worker of a fleet independently.

    ``log`` (present only when the server publishes a document log over
    ``/v1/log/*``) reports the log's ``n_documents``/``n_shards`` so a
    replication observer can compute follower lag from ``/v1/models``
    alone.
    """

    models: Tuple[Dict[str, Any], ...]
    worker_id: int = 0
    log: Optional[Dict[str, Any]] = None

    def to_payload(self) -> Dict[str, Any]:
        """The JSON object serialized onto the wire."""
        payload: Dict[str, Any] = {
            "models": [dict(entry, worker_id=self.worker_id)
                       for entry in self.models],
            "worker_id": self.worker_id}
        if self.log is not None:
            payload["log"] = dict(self.log)
        return payload


__all__ = [
    "DocumentMixture",
    "HealthResponse",
    "InferRequest",
    "InferResponse",
    "ITERATIONS_RANGE",
    "ModelsResponse",
    "SchemaError",
    "SEED_RANGE",
    "SegmentRequest",
    "SegmentResponse",
    "SegmentedDocument",
    "TOP_RANGE",
    "TopicEntry",
    "TopicsResponse",
    "documents_field",
    "int_field",
    "model_field",
]
