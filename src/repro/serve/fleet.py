"""Multi-process serving fleet: N workers, one port, one supervisor.

A single :class:`~repro.serve.http.ReproServer` is a thread-per-connection
stdlib server, so the GIL caps its inference throughput.  The fleet scales
the *reader* side out in software, the way Polynesia splits update and
query paths: the parent process stays the only writer (it may run a
:class:`~repro.stream.StreamSupervisor`), while N forked worker processes
are pure readers that answer requests.

Architecture
------------
* **One address, N listeners.**  The supervisor binds a *reservation*
  socket (``SO_REUSEPORT``, bound but never listening) first — resolving
  ``port=0`` to a concrete port exactly once and keeping the port claimed
  across worker restarts.  Every worker then binds the same address with
  ``SO_REUSEPORT`` and the kernel spreads incoming connections across the
  listening sockets.  Clients see one ordinary ``host:port``.
* **Shared model memory.**  Workers never receive model state from the
  parent: each builds its own :class:`~repro.serve.registry.ModelRegistry`
  over the same bundle *paths*.  Because
  :func:`repro.io.artifacts.load_bundle` maps uncompressed bundles
  read-only (``mmap``), all workers share one physical copy of every
  array through the page cache — N workers cost ~1× model memory.
* **Independent hot-swap.**  Each worker's registry stats the backing
  file per request, so a published ``models/current.npz`` is picked up by
  every worker on its own schedule; ``/v1/models`` and ``/healthz``
  replies carry ``worker_id`` and resident-version info so observers can
  watch the swap land everywhere (:meth:`ServeFleet.wait_until_ready`
  uses the same signal).
* **Supervision.**  A monitor thread health-checks the workers every
  ``config.health_interval`` seconds and respawns dead ones after
  ``config.restart_backoff`` (counted in :attr:`ServeFleet.restarts`);
  :meth:`ServeFleet.stop` fans SIGTERM out to all workers and escalates
  to SIGKILL only past ``config.shutdown_timeout``.

Determinism is untouched: request seeds travel with each request, so any
worker answers any request bit-identically to a single-process server.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import signal
import socket
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Set, Union

from repro.obs.history import HistoryRecorder
from repro.obs.shards import reap_stale_shards
from repro.serve.client import ServeClient, ServeError
from repro.serve.config import ServeConfig
from repro.serve.http import ReproServer
from repro.serve.registry import ModelRegistry


def _worker_main(worker_id: int, config: ServeConfig,
                 sources: Dict[str, str]) -> None:
    """Entry point of one worker process: serve until SIGTERM.

    Builds a private registry over the shared bundle paths (arrays are
    mmap-shared via the page cache, not copied) and serves the common
    address with ``SO_REUSEPORT``.  SIGINT is ignored — shutdown is the
    supervisor's SIGTERM fan-out, so a Ctrl-C against the parent's
    process group cannot half-kill the fleet.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    registry = ModelRegistry(capacity=config.registry_capacity)
    for name in sorted(sources):
        registry.register(name, sources[name])
    # The fleet parent is the single metrics-history writer; workers only
    # read the history directory (for /healthz SLO verdicts).
    server = ReproServer(registry, config, worker_id=worker_id,
                         reuse_port=True, record_history=False)

    def _terminate(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()


class ServeFleet:
    """Supervisor of ``config.workers`` serving processes on one port.

    Parameters
    ----------
    config:
        The :class:`~repro.serve.config.ServeConfig` every worker runs
        with.  ``config.port=0`` is resolved to a concrete ephemeral port
        at :meth:`start` (read it back from ``fleet.config.port`` or
        ``fleet.url``).
    sources:
        Mapping of model name → bundle path registered in every worker's
        registry.  Paths are what travels to the workers — never loaded
        arrays — so each worker maps the bundles read-only itself.

    Example
    -------
    ::

        fleet = ServeFleet(ServeConfig(port=0, workers=4),
                           {"model": "model.npz"})
        fleet.start()
        fleet.wait_until_ready()
        ...                       # clients talk to fleet.url
        fleet.stop()
    """

    def __init__(self, config: ServeConfig,
                 sources: Mapping[str, Union[str, Path]]) -> None:
        if not sources:
            raise ValueError("a fleet needs at least one model source")
        self.config = config
        self.sources = {name: str(Path(path))
                        for name, path in sources.items()}
        methods = multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        self._workers: Dict[int, multiprocessing.process.BaseProcess] = {}
        self._reservation: Optional[socket.socket] = None
        self._monitor: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self._owns_metrics_dir = False
        self._history: Optional[HistoryRecorder] = None
        self.restarts = 0

    # -- lifecycle ---------------------------------------------------------------------
    @property
    def url(self) -> str:
        """The fleet's base URL (valid once :meth:`start` resolved the port)."""
        return f"http://{self.config.host}:{self.config.port}"

    def start(self) -> "ServeFleet":
        """Reserve the port, spawn every worker, start the monitor."""
        if self._reservation is not None:
            raise RuntimeError("fleet already started")
        if not hasattr(socket, "SO_REUSEPORT"):
            raise OSError("SO_REUSEPORT is not supported on this platform")
        reservation = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            reservation.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            reservation.bind((self.config.host, self.config.port))
        except BaseException:
            reservation.close()
            raise
        # Bound but never listening: it receives no connections, it only
        # pins the (possibly ephemeral) port for the fleet's lifetime so
        # worker restarts can always rebind the same address.
        self._reservation = reservation
        self.config = self.config.replace(port=reservation.getsockname()[1])
        if self.config.metrics_dir is None:
            # Fleet-wide /metrics needs a shard directory every worker can
            # write and any worker can read; provision a temporary one when
            # the caller did not pin a path (removed again at stop()).
            self.config = self.config.replace(
                metrics_dir=tempfile.mkdtemp(prefix="repro-metrics-"))
            self._owns_metrics_dir = True
        # The parent is the fleet's single metrics-history writer: one
        # recorder thread samples the aggregated shard totals per interval
        # so SLO burn rates survive worker crashes and restarts.
        self._history = HistoryRecorder(self.config.metrics_dir,
                                        self.config.history_interval_seconds)
        self._history.start()
        with self._lock:
            for worker_id in range(self.config.workers):
                self._spawn(worker_id)
        self._monitor = threading.Thread(target=self._watch,
                                         name="repro-serve-fleet-monitor",
                                         daemon=True)
        self._monitor.start()
        return self

    def _spawn(self, worker_id: int) -> None:
        """Start one worker process (caller holds the lock)."""
        process = self._context.Process(
            target=_worker_main,
            args=(worker_id, self.config, self.sources),
            name=f"repro-serve-worker-{worker_id}", daemon=True)
        process.start()
        self._workers[worker_id] = process

    def _watch(self) -> None:
        """Monitor loop: respawn dead workers until the fleet stops."""
        while not self._stopping.wait(self.config.health_interval):
            with self._lock:
                dead = [(worker_id, process)
                        for worker_id, process in self._workers.items()
                        if not process.is_alive()]
            for worker_id, process in dead:
                if self._stopping.wait(self.config.restart_backoff):
                    return
                with self._lock:
                    if self._workers.get(worker_id) is process \
                            and not process.is_alive():
                        process.join()  # reap before replacing
                        self.restarts += 1
                        self._spawn(worker_id)
            self._reap_shards()

    def _reap_shards(self) -> None:
        """Merge dead workers' metric shards into the reaped accumulator.

        Run every monitor tick: a crashed (or restarted) worker's shard is
        folded into ``metrics-reaped.shard`` so its counter totals keep
        contributing to the fleet ``_total`` series, and its stale
        per-``worker_id`` series disappears from subsequent scrapes.
        """
        if self.config.metrics_dir is None:
            return
        with self._lock:
            live = [process.pid for process in self._workers.values()
                    if process.is_alive() and process.pid is not None]
        # The parent process may write its own shard into the same
        # directory (the stream supervisor's "stream" label): never reap it.
        live.append(os.getpid())
        try:
            reap_stale_shards(self.config.metrics_dir, live)
        except OSError:  # a vanished directory must not kill the monitor
            pass

    def alive_workers(self) -> List[int]:
        """Worker ids whose process is currently alive."""
        with self._lock:
            return sorted(worker_id
                          for worker_id, process in self._workers.items()
                          if process.is_alive())

    def worker_pid(self, worker_id: int) -> int:
        """The current OS pid of one worker (restarts change it)."""
        with self._lock:
            process = self._workers[worker_id]
        if process.pid is None:
            raise RuntimeError(f"worker {worker_id} was never started")
        return process.pid

    def kill_worker(self, worker_id: int) -> None:
        """SIGKILL one worker (crash injection; the monitor restarts it)."""
        os.kill(self.worker_pid(worker_id), signal.SIGKILL)

    def wait_until_ready(self, timeout: float = 60.0,
                         require_all: bool = True) -> Set[int]:
        """Block until the fleet answers ``/healthz``; return worker ids seen.

        With ``require_all`` (the default), keeps sampling health checks —
        each new connection lands on a kernel-chosen worker — until every
        worker id has answered at least once, so a caller knows the *whole*
        fleet is listening, not just one member.
        """
        client = ServeClient(self.url, timeout=5.0, retries=0)
        deadline = time.monotonic() + timeout
        seen: Set[int] = set()
        wanted = set(range(self.config.workers)) if require_all else None
        while time.monotonic() < deadline:
            try:
                seen.add(int(client.health()["worker_id"]))
            except (ServeError, KeyError, ValueError):
                time.sleep(0.05)
                continue
            if wanted is None or wanted <= seen:
                return seen
        raise TimeoutError(
            f"fleet not ready after {timeout:.1f}s: saw workers "
            f"{sorted(seen)} of {self.config.workers}")

    def stop(self) -> None:
        """SIGTERM every worker, escalate to SIGKILL past the timeout."""
        self._stopping.set()
        if self._history is not None:
            self._history.stop()
            self._history = None
        if self._monitor is not None:
            self._monitor.join(timeout=self.config.shutdown_timeout)
            self._monitor = None
        with self._lock:
            workers = list(self._workers.values())
            self._workers = {}
        for process in workers:
            if process.is_alive():
                process.terminate()  # SIGTERM: workers exit their serve loop
        deadline = time.monotonic() + self.config.shutdown_timeout
        for process in workers:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
        for process in workers:
            if process.is_alive():
                process.kill()
                process.join()
        if self._reservation is not None:
            self._reservation.close()
            self._reservation = None
        if self._owns_metrics_dir and self.config.metrics_dir is not None:
            shutil.rmtree(self.config.metrics_dir, ignore_errors=True)
            self._owns_metrics_dir = False

    def __enter__(self) -> "ServeFleet":
        """Start the fleet on ``with`` entry."""
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        """Stop the fleet on ``with`` exit."""
        self.stop()
