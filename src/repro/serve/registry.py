"""Versioned-bundle model registry: load-on-demand, hot-reload, LRU cap.

The serving layer never constructs models; it *loads* the ``.npz`` + JSON
artifact bundles written by ``repro mine`` / ``repro fit``
(:mod:`repro.io.artifacts`) into immutable :class:`LoadedModel` holders
that every server thread shares read-only.  The registry guarantees:

* **Load-on-demand with an LRU cap** — bundles are registered cheaply by
  path and loaded on first use; at most ``capacity`` models stay resident,
  the least-recently-used being evicted when a new load would exceed it.
* **Hot-reload** — every :meth:`ModelRegistry.get` stats the backing file;
  if it changed on disk (mtime or size), the bundle is reloaded so a
  retrained model goes live without a server restart.
* **Immutability by convention** — a :class:`LoadedModel` is a frozen
  dataclass whose arrays are treated strictly read-only (fold-in never
  mutates trained counts), so concurrent requests share one copy safely.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.infer import TopicInferencer
from repro.io.artifacts import (
    ArtifactError,
    Bundle,
    ModelBundle,
    load_bundle,
    read_manifest,
)
from repro.utils.timing import MetricsRegistry


class UnknownModelError(KeyError):
    """A model name that was never registered was requested."""


@dataclass(frozen=True)
class LoadedModel:
    """One bundle resident in memory, shared read-only across threads.

    Attributes
    ----------
    name:
        Registry name the model is addressed by.
    path:
        Backing bundle file.
    kind:
        ``"model"`` or ``"segmentation"`` (segmentation bundles can serve
        ``/v1/segment`` but not inference or topics).
    bundle:
        The loaded :class:`~repro.io.artifacts.ModelBundle` or
        :class:`~repro.io.artifacts.SegmentationBundle`.
    inferencer:
        A ready :class:`~repro.core.infer.TopicInferencer`.  For
        segmentation-kind bundles it carries no trained state and supports
        only ``segment_texts`` (callers must gate fold-in on ``kind``).
    stat_signature:
        ``(mtime_ns, size)`` of the file at load time — the hot-reload
        fingerprint.
    loaded_at:
        Unix timestamp of the load.
    """

    name: str
    path: Path
    kind: str
    bundle: Bundle
    inferencer: Optional[TopicInferencer]
    stat_signature: tuple
    loaded_at: float = field(default_factory=time.time)

    @property
    def n_topics(self) -> Optional[int]:
        """Number of topics for model bundles, ``None`` for segmentations."""
        return self.bundle.n_topics if self.kind == "model" else None

    def describe(self) -> Dict[str, Any]:
        """Return the JSON-friendly description used by ``/v1/models``."""
        info: Dict[str, Any] = {
            "name": self.name,
            "path": str(self.path),
            "kind": self.kind,
            "loaded": True,
            "loaded_at": self.loaded_at,
            "vocabulary_size": len(self.bundle.vocabulary),
            "metadata": dict(self.bundle.metadata),
        }
        if self.kind == "model":
            info["n_topics"] = self.n_topics
        return info


def _stat_signature(path: Path) -> tuple:
    """Return the ``(mtime_ns, size)`` hot-reload fingerprint of ``path``."""
    stat = os.stat(path)
    return (stat.st_mtime_ns, stat.st_size)


class ModelRegistry:
    """Thread-safe name → bundle registry with LRU residency and hot-reload.

    Parameters
    ----------
    capacity:
        Maximum number of bundles resident at once; the least-recently-used
        is evicted when a load would exceed it.
    metrics:
        Optional shared :class:`~repro.utils.timing.MetricsRegistry`; the
        registry records ``registry_loads_total``, ``registry_reloads_total``,
        ``registry_evictions_total`` and ``registry_hits_total`` counters
        plus ``registry_load_seconds`` latencies into it.
    """

    def __init__(self, capacity: int = 4,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if capacity < 1:
            raise ValueError("registry capacity must be >= 1")
        self.capacity = capacity
        self.metrics = metrics or MetricsRegistry()
        self._sources: Dict[str, Path] = {}
        self._loaded: "OrderedDict[str, LoadedModel]" = OrderedDict()
        self._lock = threading.Lock()

    # -- registration ------------------------------------------------------------------
    def register(self, name: str, path: Union[str, Path]) -> None:
        """Register a bundle file under ``name`` (loaded lazily on first use).

        Re-registering an existing name atomically swaps its source path
        and drops any stale resident copy.
        """
        path = Path(path)
        if not name:
            raise ValueError("model name must be non-empty")
        with self._lock:
            self._sources[name] = path
            self._loaded.pop(name, None)

    def register_directory(self, root: Union[str, Path]) -> List[str]:
        """Register every ``*.npz`` under ``root`` (non-recursive), named by
        file stem; returns the sorted list of newly visible names."""
        root = Path(root)
        if not root.is_dir():
            raise ArtifactError(f"model directory not found: {root}")
        names = []
        for path in sorted(root.glob("*.npz")):
            self.register(path.stem, path)
            names.append(path.stem)
        return names

    def names(self) -> List[str]:
        """All registered model names, sorted."""
        with self._lock:
            return sorted(self._sources)

    def loaded_names(self) -> List[str]:
        """Names currently resident, least- to most-recently used."""
        with self._lock:
            return list(self._loaded)

    def default_name(self) -> Optional[str]:
        """The registry's implied default: its single name, else ``None``."""
        with self._lock:
            if len(self._sources) == 1:
                return next(iter(self._sources))
        return None

    # -- access ------------------------------------------------------------------------
    def get(self, name: str) -> LoadedModel:
        """Return the resident model for ``name``, loading or reloading it.

        Stats the backing file on every call: an unchanged resident copy is
        returned as-is (LRU-touched); a changed file triggers a reload (hot
        reload); a first use triggers a load, evicting the LRU entry when
        the capacity cap would be exceeded.

        Raises
        ------
        UnknownModelError
            If ``name`` was never registered.
        repro.io.artifacts.ArtifactError
            If the backing bundle is missing or invalid.
        """
        with self._lock:
            source = self._sources.get(name)
        if source is None:
            raise UnknownModelError(
                f"unknown model {name!r}; registered: {self.names()}")
        try:
            signature = _stat_signature(source)
        except OSError as exc:
            raise ArtifactError(f"bundle not found: {source}") from exc

        with self._lock:
            resident = self._loaded.get(name)
            if resident is not None and resident.stat_signature == signature \
                    and resident.path == source:
                self._loaded.move_to_end(name)
                self.metrics.increment("registry_hits_total")
                return resident

        loaded = self._load(name, source, signature,
                            reload=resident is not None)
        with self._lock:
            self._loaded[name] = loaded
            self._loaded.move_to_end(name)
            while len(self._loaded) > self.capacity:
                evicted, _ = self._loaded.popitem(last=False)
                self.metrics.increment("registry_evictions_total")
        return loaded

    def _load(self, name: str, path: Path, signature: tuple,
              reload: bool) -> LoadedModel:
        """Load ``path`` into a fresh :class:`LoadedModel` (outside the lock)."""
        with self.metrics.timer("registry_load_seconds"):
            bundle = load_bundle(path)
        if isinstance(bundle, ModelBundle):
            inferencer = bundle.inferencer()
        else:
            # Segmentation bundles segment but never fold in: build the
            # stateless inferencer once here so /v1/segment does not pay
            # segmenter construction per request.
            inferencer = TopicInferencer(
                state=None, segmenter=bundle.segmenter(),
                vocabulary=bundle.vocabulary, preprocess=bundle.preprocess)
        self.metrics.increment("registry_reloads_total" if reload
                               else "registry_loads_total")
        return LoadedModel(name=name, path=path, kind=bundle.kind,
                           bundle=bundle, inferencer=inferencer,
                           stat_signature=signature)

    def evict(self, name: str) -> bool:
        """Drop ``name``'s resident copy (it stays registered); returns
        whether anything was resident."""
        with self._lock:
            return self._loaded.pop(name, None) is not None

    def describe_all(self) -> List[Dict[str, Any]]:
        """Describe every registered model for ``/v1/models``.

        Resident models are described from memory; others from a cheap
        manifest-only read (:func:`repro.io.artifacts.read_manifest`) —
        unreadable bundles are reported with an ``"error"`` field rather
        than failing the whole listing.
        """
        with self._lock:
            sources = dict(self._sources)
            loaded = dict(self._loaded)
        descriptions = []
        for name in sorted(sources):
            resident = loaded.get(name)
            if resident is not None:
                descriptions.append(resident.describe())
                continue
            info: Dict[str, Any] = {"name": name, "path": str(sources[name]),
                                    "loaded": False}
            try:
                manifest = read_manifest(sources[name])
            except ArtifactError as exc:
                info["error"] = str(exc)
            else:
                info["kind"] = manifest["kind"]
                info["metadata"] = dict(manifest.get("metadata", {}))
                if manifest["kind"] == "model":
                    info["n_topics"] = manifest["model"].get("n_topics")
            descriptions.append(info)
        return descriptions
