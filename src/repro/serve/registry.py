"""Versioned-bundle model registry: load-on-demand, hot-reload, LRU cap.

The serving layer never constructs models; it *loads* the ``.npz`` + JSON
artifact bundles written by ``repro mine`` / ``repro fit``
(:mod:`repro.io.artifacts`) into immutable :class:`LoadedModel` holders
that every server thread shares read-only.  The registry guarantees:

* **Load-on-demand with an LRU cap** — bundles are registered cheaply by
  path and loaded on first use; at most ``capacity`` models stay resident,
  the least-recently-used being evicted when a new load would exceed it.
* **Hot-reload** — every :meth:`ModelRegistry.get` stats the backing file;
  if it changed on disk (mtime or size), the bundle is reloaded so a
  retrained model goes live without a server restart.
* **Single-flight, zero-downtime swaps** — when a file change is detected
  under concurrent traffic, exactly *one* thread loads the new version;
  every other request keeps being answered from the still-resident
  previous version until the swap completes (``registry_stale_hits_total``
  counts those).  A publish therefore never stalls the request path behind
  a stampede of duplicate loads, and never surfaces an error window — the
  property the streaming layer's atomic ``current.npz`` publishes
  (:mod:`repro.stream.updater`) rely on.
* **Immutability by convention** — a :class:`LoadedModel` is a frozen
  dataclass whose arrays are treated strictly read-only (fold-in never
  mutates trained counts), so concurrent requests share one copy safely.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.infer import TopicInferencer
from repro.io.artifacts import (
    ArtifactError,
    Bundle,
    ModelBundle,
    load_bundle,
    read_manifest,
)
from repro.utils.timing import MetricsRegistry


class UnknownModelError(KeyError):
    """A model name that was never registered was requested."""


@dataclass(frozen=True)
class LoadedModel:
    """One bundle resident in memory, shared read-only across threads.

    Attributes
    ----------
    name:
        Registry name the model is addressed by.
    path:
        Backing bundle file.
    kind:
        ``"model"`` or ``"segmentation"`` (segmentation bundles can serve
        ``/v1/segment`` but not inference or topics).
    bundle:
        The loaded :class:`~repro.io.artifacts.ModelBundle` or
        :class:`~repro.io.artifacts.SegmentationBundle`.
    inferencer:
        A ready :class:`~repro.core.infer.TopicInferencer`.  For
        segmentation-kind bundles it carries no trained state and supports
        only ``segment_texts`` (callers must gate fold-in on ``kind``).
    stat_signature:
        ``(mtime_ns, size)`` of the file at load time — the hot-reload
        fingerprint.
    loaded_at:
        Unix timestamp of the load.
    """

    name: str
    path: Path
    kind: str
    bundle: Bundle
    inferencer: Optional[TopicInferencer]
    stat_signature: tuple
    loaded_at: float = field(default_factory=time.time)

    @property
    def n_topics(self) -> Optional[int]:
        """Number of topics for model bundles, ``None`` for segmentations."""
        return self.bundle.n_topics if self.kind == "model" else None

    def describe(self) -> Dict[str, Any]:
        """Return the JSON-friendly description used by ``/v1/models``.

        Resident bundles report their hot-reload fingerprint
        (``resident_signature``) and, for stream-published bundles, the
        ``stream_version`` they were loaded from (``resident_version``) —
        the fields a fleet observer compares across workers to watch a
        publish land everywhere.  Stream-published bundles additionally
        report ``published_at`` (stamped into the bundle metadata at
        publish time) and ``swap_lag_seconds``, how long the publish took
        to become this worker's resident copy.
        """
        info: Dict[str, Any] = {
            "name": self.name,
            "path": str(self.path),
            "kind": self.kind,
            "loaded": True,
            "loaded_at": self.loaded_at,
            "vocabulary_size": len(self.bundle.vocabulary),
            "metadata": dict(self.bundle.metadata),
            "resident_signature": list(self.stat_signature),
            "resident_version": self.bundle.metadata.get("stream_version"),
        }
        published_at = self.bundle.metadata.get("published_at")
        info["published_at"] = published_at
        info["swap_lag_seconds"] = (
            max(0.0, self.loaded_at - float(published_at))
            if isinstance(published_at, (int, float)) else None)
        if self.kind == "model":
            info["n_topics"] = self.n_topics
        return info


def _stat_signature(path: Path) -> tuple:
    """Return the ``(mtime_ns, size)`` hot-reload fingerprint of ``path``."""
    stat = os.stat(path)
    return (stat.st_mtime_ns, stat.st_size)


class ModelRegistry:
    """Thread-safe name → bundle registry with LRU residency and hot-reload.

    Parameters
    ----------
    capacity:
        Maximum number of bundles resident at once; the least-recently-used
        is evicted when a load would exceed it.
    metrics:
        Optional shared :class:`~repro.utils.timing.MetricsRegistry`; the
        registry records ``registry_loads_total``, ``registry_reloads_total``,
        ``registry_evictions_total``, ``registry_hits_total`` and
        ``registry_stale_hits_total`` (requests answered from the previous
        version while a single-flight reload was in progress) counters plus
        ``registry_load_seconds`` latencies into it.
    """

    def __init__(self, capacity: int = 4,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if capacity < 1:
            raise ValueError("registry capacity must be >= 1")
        self.capacity = capacity
        self.metrics = metrics or MetricsRegistry()
        self._sources: Dict[str, Path] = {}
        self._loaded: "OrderedDict[str, LoadedModel]" = OrderedDict()
        self._lock = threading.Lock()
        # name -> Event set when that name's in-flight load finishes; the
        # presence of a key marks a load in progress (single-flight gate).
        self._inflight: Dict[str, threading.Event] = {}

    # -- registration ------------------------------------------------------------------
    def register(self, name: str, path: Union[str, Path]) -> None:
        """Register a bundle file under ``name`` (loaded lazily on first use).

        Re-registering an existing name atomically swaps its source path
        and drops any stale resident copy.
        """
        path = Path(path)
        if not name:
            raise ValueError("model name must be non-empty")
        with self._lock:
            self._sources[name] = path
            self._loaded.pop(name, None)

    def register_directory(self, root: Union[str, Path]) -> List[str]:
        """Register every ``*.npz`` under ``root`` (non-recursive), named by
        file stem; returns the sorted list of newly visible names."""
        root = Path(root)
        if not root.is_dir():
            raise ArtifactError(f"model directory not found: {root}")
        names = []
        for path in sorted(root.glob("*.npz")):
            self.register(path.stem, path)
            names.append(path.stem)
        return names

    def names(self) -> List[str]:
        """All registered model names, sorted."""
        with self._lock:
            return sorted(self._sources)

    def loaded_names(self) -> List[str]:
        """Names currently resident, least- to most-recently used."""
        with self._lock:
            return list(self._loaded)

    def default_name(self) -> Optional[str]:
        """The registry's implied default: its single name, else ``None``."""
        with self._lock:
            if len(self._sources) == 1:
                return next(iter(self._sources))
        return None

    # -- access ------------------------------------------------------------------------
    def get(self, name: str) -> LoadedModel:
        """Return the resident model for ``name``, loading or reloading it.

        Stats the backing file on every call: an unchanged resident copy is
        returned as-is (LRU-touched); a changed file triggers a reload (hot
        reload); a first use triggers a load, evicting the LRU entry when
        the capacity cap would be exceeded.

        Reloads are **single-flight**: under concurrent traffic exactly one
        thread performs the load while the others are answered from the
        still-resident previous version (or, on a cold first load, wait for
        the loader to finish).  A bundle publish under load therefore
        swaps versions without an error or latency window.

        Raises
        ------
        UnknownModelError
            If ``name`` was never registered.
        repro.io.artifacts.ArtifactError
            If the backing bundle is missing or invalid.
        """
        with self._lock:
            source = self._sources.get(name)
        if source is None:
            raise UnknownModelError(
                f"unknown model {name!r}; registered: {self.names()}")
        try:
            signature = _stat_signature(source)
        except OSError as exc:
            raise ArtifactError(f"bundle not found: {source}") from exc

        while True:
            with self._lock:
                resident = self._loaded.get(name)
                if resident is not None and resident.stat_signature == signature \
                        and resident.path == source:
                    self._loaded.move_to_end(name)
                    self.metrics.increment("registry_hits_total")
                    return resident
                inflight = self._inflight.get(name)
                if inflight is None:
                    # This thread becomes the (sole) loader.
                    self._inflight[name] = threading.Event()
                    break
                if resident is not None:
                    # Another thread is already swapping the new version
                    # in; answer from the previous one — zero downtime.
                    self._loaded.move_to_end(name)
                    self.metrics.increment("registry_stale_hits_total")
                    return resident
            # Cold load in progress and nothing resident: wait for the
            # loader, then re-check (it may have failed — loop and retry).
            inflight.wait()

        try:
            loaded = self._load(name, source, signature,
                                reload=resident is not None)
            with self._lock:
                self._loaded[name] = loaded
                self._loaded.move_to_end(name)
                while len(self._loaded) > self.capacity:
                    evicted, _ = self._loaded.popitem(last=False)
                    self.metrics.increment("registry_evictions_total")
        finally:
            with self._lock:
                self._inflight.pop(name).set()
        return loaded

    def _load(self, name: str, path: Path, signature: tuple,
              reload: bool) -> LoadedModel:
        """Load ``path`` into a fresh :class:`LoadedModel` (outside the lock)."""
        with self.metrics.timer("registry_load_seconds"):
            bundle = load_bundle(path)
        if isinstance(bundle, ModelBundle):
            inferencer = bundle.inferencer()
        else:
            # Segmentation bundles segment but never fold in: build the
            # stateless inferencer once here so /v1/segment does not pay
            # segmenter construction per request.
            inferencer = TopicInferencer(
                state=None, segmenter=bundle.segmenter(),
                vocabulary=bundle.vocabulary, preprocess=bundle.preprocess)
        self.metrics.increment("registry_reloads_total" if reload
                               else "registry_loads_total")
        loaded = LoadedModel(name=name, path=path, kind=bundle.kind,
                             bundle=bundle, inferencer=inferencer,
                             stat_signature=signature)
        published_at = bundle.metadata.get("published_at")
        if isinstance(published_at, (int, float)):
            # Publish-to-resident lag of a stream bundle: how long the
            # published version waited before this process swapped it in.
            self.metrics.observe(
                "registry_swap_lag_seconds",
                max(0.0, loaded.loaded_at - float(published_at)))
        return loaded

    def evict(self, name: str) -> bool:
        """Drop ``name``'s resident copy (it stays registered); returns
        whether anything was resident."""
        with self._lock:
            return self._loaded.pop(name, None) is not None

    def describe_all(self) -> List[Dict[str, Any]]:
        """Describe every registered model for ``/v1/models``.

        Up-to-date resident models are described from memory; everything
        else — never-loaded names, and resident copies whose backing file
        changed on disk since the load (a bundle was published but no
        request has triggered the hot-reload yet) — from a cheap
        manifest-only read (:func:`repro.io.artifacts.read_manifest`), so
        the listing always reflects the *current* file.  That is what lets
        an observer poll ``/v1/models`` to watch a stream publish land,
        independent of inference traffic.  Unreadable bundles are reported
        with an ``"error"`` field rather than failing the whole listing.
        """
        with self._lock:
            sources = dict(self._sources)
            loaded = dict(self._loaded)
        descriptions = []
        for name in sorted(sources):
            source = sources[name]
            resident = loaded.get(name)
            if resident is not None and resident.path == source:
                try:
                    signature = _stat_signature(source)
                except OSError:
                    signature = None
                if signature == resident.stat_signature:
                    descriptions.append(resident.describe())
                    continue
            info: Dict[str, Any] = {"name": name, "path": str(source),
                                    "loaded": resident is not None}
            if resident is not None:
                # A newer file was published; the resident copy still
                # serves until the next request hot-swaps it.
                info["stale"] = True
            try:
                manifest = read_manifest(source)
            except ArtifactError as exc:
                info["error"] = str(exc)
            else:
                info["kind"] = manifest["kind"]
                info["metadata"] = dict(manifest.get("metadata", {}))
                info["published_at"] = info["metadata"].get("published_at")
                if manifest["kind"] == "model":
                    info["n_topics"] = manifest["model"].get("n_topics")
            descriptions.append(info)
        return descriptions
