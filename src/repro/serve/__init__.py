"""``repro.serve`` — a batched-inference model server over artifact bundles.

The query path of the reproduction: where :mod:`repro.cli` trains models
and writes ``.npz`` bundles (the train-once half), this package serves
them to many concurrent clients (the apply-many half at traffic):

* :mod:`repro.serve.config` — one frozen :class:`ServeConfig` consumed
  uniformly by the CLI, the server, the batcher, and the fleet;
* :mod:`repro.serve.api` — the typed request/response schemas of the
  ``/v1/*`` endpoints, shared by the HTTP handlers and the client;
* :mod:`repro.serve.registry` — a :class:`ModelRegistry` that loads
  versioned bundles into immutable, shareable read-only
  :class:`LoadedModel` state, with hot-reload on file change and an LRU
  capacity cap;
* :mod:`repro.serve.batching` — a :class:`MicroBatcher` that coalesces
  concurrent inference requests into one vectorized fold-in pass
  (per-request results stay bit-identical to solo runs under fixed
  per-request seeds);
* :mod:`repro.serve.http` — a dependency-free JSON-over-HTTP server
  (stdlib ``ThreadingHTTPServer``) exposing ``/healthz``, ``/metrics``,
  ``/v1/models``, ``/v1/infer``, ``/v1/segment``, and ``/v1/topics``;
* :mod:`repro.serve.fleet` — a :class:`ServeFleet` supervisor running N
  worker processes behind one ``SO_REUSEPORT`` address, sharing model
  memory through read-only mmaps of the same bundles;
* :mod:`repro.serve.client` — a thin stdlib client for those endpoints.

Start one from the shell with ``python -m repro serve --model model.npz``
(add ``--workers N`` for a fleet; see ``docs/serving.md`` for the full
endpoint reference).
"""

from repro.serve.api import SchemaError
from repro.serve.batching import MicroBatcher
from repro.serve.client import ServeClient, ServeError
from repro.serve.config import ServeConfig
from repro.serve.fleet import ServeFleet
from repro.serve.http import ENDPOINTS, ReproServer
from repro.serve.registry import LoadedModel, ModelRegistry

__all__ = [
    "ENDPOINTS",
    "LoadedModel",
    "MicroBatcher",
    "ModelRegistry",
    "ReproServer",
    "SchemaError",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeFleet",
]
