"""Dependency-free JSON-over-HTTP model server (stdlib ``http.server``).

:class:`ReproServer` is a ``ThreadingHTTPServer`` — one OS thread per
connection, no third-party dependencies — that serves the artifact bundles
of a :class:`~repro.serve.registry.ModelRegistry` through six endpoints:

==================  ======  =====================================================
``/healthz``        GET     liveness + registered model names + uptime
``/metrics``        GET     Prometheus text (counters + latency quantiles)
``/v1/models``      GET     registered bundles with manifest metadata
``/v1/infer``       POST    topic mixtures for unseen documents (micro-batched)
``/v1/segment``     POST    frozen-table phrase segmentation of documents
``/v1/topics``      GET     per-topic unigram/phrase tables of a model
==================  ======  =====================================================

Inference requests funnel through the
:class:`~repro.serve.batching.MicroBatcher`, so concurrent clients are
coalesced into one vectorized fold-in per batching window while each
request keeps its seed-deterministic result.  Request and response bodies
are JSON; errors come back as ``{"error": ...}`` with a 4xx/5xx status.
See ``docs/serving.md`` for the full request/response schemas.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.io.artifacts import ArtifactError
from repro.serve.batching import MicroBatcher
from repro.serve.registry import LoadedModel, ModelRegistry, UnknownModelError
from repro.utils.timing import MetricsRegistry

ENDPOINTS = ("/healthz", "/metrics", "/v1/models", "/v1/infer",
             "/v1/segment", "/v1/topics")

DEFAULT_ITERATIONS = 50
DEFAULT_SEED = 7
MAX_BODY_BYTES = 8 * 1024 * 1024


class RequestError(Exception):
    """A client error carrying the HTTP status to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ReproServer(ThreadingHTTPServer):
    """The batched-inference model server.

    Parameters
    ----------
    registry:
        Registry of bundles to serve (shared, hot-reloadable).
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read the actual
        one from ``server_port`` — handy in tests and benchmarks).
    max_batch_size, batch_delay:
        Micro-batching window of the inference scheduler: a batch closes
        at ``max_batch_size`` pending requests or after ``batch_delay``
        seconds, whichever comes first.
    default_iterations:
        Fold-in sweeps when a request does not specify ``iterations``.
    metrics:
        Optional shared metrics registry (defaults to a fresh one); the
        server, batcher, and registry all record into it and ``/metrics``
        renders it.
    """

    daemon_threads = True

    def __init__(self, registry: ModelRegistry, host: str = "127.0.0.1",
                 port: int = 8765, max_batch_size: int = 32,
                 batch_delay: float = 0.005,
                 default_iterations: int = DEFAULT_ITERATIONS,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry
        self.metrics = metrics or registry.metrics
        # One shared stats path: the registry's load/reload/eviction
        # counters must land in the registry /metrics renders.
        registry.metrics = self.metrics
        self.default_iterations = default_iterations
        self.batcher = MicroBatcher(registry, max_batch_size=max_batch_size,
                                    max_delay=batch_delay,
                                    metrics=self.metrics)
        self.started_at = time.time()
        super().__init__((host, port), _Handler)
        self.batcher.start()

    @property
    def url(self) -> str:
        """The server's base URL (with the actually bound port)."""
        host = self.server_address[0]
        return f"http://{host}:{self.server_port}"

    def start_background(self) -> threading.Thread:
        """Run ``serve_forever`` in a daemon thread and return it."""
        thread = threading.Thread(target=self.serve_forever,
                                  name="repro-serve-http", daemon=True)
        thread.start()
        return thread

    def stop(self) -> None:
        """Stop accepting requests and shut the scheduler down cleanly.

        Safe to call whether ``serve_forever`` runs in this thread (after
        a ``KeyboardInterrupt``) or in a background thread.
        """
        self.shutdown()
        self.close()

    def close(self) -> None:
        """Release resources without touching the serve loop (use after
        ``serve_forever`` already returned in this thread)."""
        self.batcher.stop()
        self.server_close()


class _Handler(BaseHTTPRequestHandler):
    """Routes the six JSON endpoints; one instance per request."""

    server: ReproServer  # narrowed from BaseHTTPRequestHandler
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Silence per-request stderr logging; ``/metrics`` observes instead."""

    def _send_payload(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Any) -> None:
        body = (json.dumps(payload) + "\n").encode("utf-8")
        self._send_payload(status, body, "application/json")

    def _read_json_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise RequestError(400, "request body required")
        if length > MAX_BODY_BYTES:
            # The oversized body is never drained; drop the connection so a
            # keep-alive client cannot desynchronise its next request.
            self.close_connection = True
            raise RequestError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RequestError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise RequestError(400, "JSON body must be an object")
        return payload

    def _dispatch(self, method: str) -> None:
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        # Unknown paths share one latency bucket: per-route metrics must not
        # let arbitrary client URLs grow /metrics without bound.
        known_route = any(route == known for _, known in _ROUTES)
        bucket = route if known_route else "/unmatched"
        metrics = self.server.metrics
        metrics.increment("http_requests_total")
        start = time.perf_counter()
        try:
            handler = _ROUTES.get((method, route))
            if handler is None:
                if known_route:
                    raise RequestError(405, f"{method} not allowed on {route}")
                raise RequestError(404, f"no such endpoint: {route}")
            handler(self, parse_qs(parsed.query))
        except RequestError as exc:
            metrics.increment("http_errors_total")
            self._send_json(exc.status, {"error": str(exc)})
        except UnknownModelError as exc:
            metrics.increment("http_errors_total")
            self._send_json(404, {"error": str(exc.args[0])})
        except ArtifactError as exc:
            metrics.increment("http_errors_total")
            self._send_json(500, {"error": f"artifact error: {exc}"})
        except BrokenPipeError:
            # Client went away mid-response; nothing left to answer.
            metrics.increment("http_errors_total")
        except Exception as exc:  # keep the connection thread alive
            metrics.increment("http_errors_total")
            self._send_json(500, {"error": f"internal error: {exc}"})
        finally:
            metrics.observe(f"http{bucket.replace('/', '_')}_seconds",
                            time.perf_counter() - start)

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        """Serve the GET endpoints."""
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler naming)
        """Serve the POST endpoints."""
        self._dispatch("POST")

    # -- shared request helpers --------------------------------------------------------
    def _resolve_model_name(self, requested: Optional[str]) -> str:
        if requested:
            if not isinstance(requested, str):
                raise RequestError(400, "'model' must be a string")
            return requested
        default = self.server.registry.default_name()
        if default is None:
            raise RequestError(
                400, "request must name a 'model' (several are registered: "
                     f"{self.server.registry.names()})")
        return default

    def _require_documents(self, payload: Dict[str, Any]) -> List[str]:
        documents = payload.get("documents")
        if not isinstance(documents, list) or not documents \
                or not all(isinstance(doc, str) for doc in documents):
            raise RequestError(
                400, "'documents' must be a non-empty list of strings")
        return documents

    def _load_model_bundle(self, name: str) -> LoadedModel:
        loaded = self.server.registry.get(name)
        if loaded.kind != "model":
            raise RequestError(
                400, f"model {name!r} is a {loaded.kind!r} bundle; this "
                     f"endpoint needs a fitted model (run `repro fit`)")
        return loaded

    @staticmethod
    def _int_field(payload: Dict[str, Any], name: str, default: int,
                   minimum: int, maximum: int) -> int:
        value = payload.get(name, default)
        if not isinstance(value, int) or isinstance(value, bool) \
                or not minimum <= value <= maximum:
            raise RequestError(
                400, f"{name!r} must be an integer in [{minimum}, {maximum}]")
        return value

    # -- endpoints ---------------------------------------------------------------------
    def _handle_healthz(self, query: Dict[str, List[str]]) -> None:
        self._send_json(200, {
            "status": "ok",
            "models": self.server.registry.names(),
            "loaded": self.server.registry.loaded_names(),
            "uptime_seconds": time.time() - self.server.started_at,
        })

    def _handle_metrics(self, query: Dict[str, List[str]]) -> None:
        text = self.server.metrics.render_prometheus()
        self._send_payload(200, text.encode("utf-8"),
                           "text/plain; version=0.0.4")

    def _handle_models(self, query: Dict[str, List[str]]) -> None:
        self._send_json(200, {"models": self.server.registry.describe_all()})

    def _handle_infer(self, query: Dict[str, List[str]]) -> None:
        payload = self._read_json_body()
        documents = self._require_documents(payload)
        name = self._resolve_model_name(payload.get("model"))
        seed = self._int_field(payload, "seed", DEFAULT_SEED, 0, 2**63 - 1)
        iterations = self._int_field(payload, "iterations",
                                     self.server.default_iterations, 1, 10_000)
        top = self._int_field(payload, "top", 3, 1, 1_000)
        try:
            result = self.server.batcher.submit(name, documents, seed,
                                                iterations)
        except ValueError as exc:  # e.g. segmentation bundle
            raise RequestError(400, str(exc)) from exc
        self._send_json(200, {
            "model": name,
            "n_topics": result.n_topics,
            "iterations": iterations,
            "seed": seed,
            "documents": [
                {
                    "theta": [float(p) for p in doc.theta],
                    "top_topics": [[k, float(p)] for k, p in doc.top_topics(top)],
                    "n_phrases": len(doc.phrases),
                    "n_unknown_tokens": doc.n_unknown_tokens,
                }
                for doc in result.documents
            ],
        })

    def _handle_segment(self, query: Dict[str, List[str]]) -> None:
        payload = self._read_json_body()
        documents = self._require_documents(payload)
        name = self._resolve_model_name(payload.get("model"))
        loaded = self.server.registry.get(name)
        # Both bundle kinds carry a segmentation-capable cached inferencer.
        phrase_docs, unknown_counts = loaded.inferencer.segment_texts(documents)
        vocabulary = loaded.bundle.vocabulary
        self._send_json(200, {
            "model": name,
            "documents": [
                {
                    "phrases": [vocabulary.decode(phrase) for phrase in phrases],
                    "surface_phrases": [vocabulary.unstem_phrase(phrase)
                                        for phrase in phrases],
                    "n_unknown_tokens": unknown,
                }
                for phrases, unknown in zip(phrase_docs, unknown_counts)
            ],
        })

    def _handle_topics(self, query: Dict[str, List[str]]) -> None:
        name = self._resolve_model_name((query.get("model") or [None])[0])
        try:
            n = int((query.get("n") or ["10"])[0])
        except ValueError as exc:
            raise RequestError(400, "'n' must be an integer") from exc
        if not 1 <= n <= 1_000:
            raise RequestError(400, "'n' must be in [1, 1000]")
        loaded = self._load_model_bundle(name)
        visualization = loaded.bundle.visualization(n_unigrams=n, n_phrases=n)
        self._send_json(200, {
            "model": name,
            "n_topics": visualization.n_topics,
            "topics": [
                {
                    "topic": k,
                    "unigrams": visualization.top_unigrams[k][:n],
                    "phrases": visualization.top_phrases[k][:n],
                }
                for k in range(visualization.n_topics)
            ],
        })


_ROUTES: Dict[Tuple[str, str], Any] = {
    ("GET", "/healthz"): _Handler._handle_healthz,
    ("GET", "/metrics"): _Handler._handle_metrics,
    ("GET", "/v1/models"): _Handler._handle_models,
    ("POST", "/v1/infer"): _Handler._handle_infer,
    ("POST", "/v1/segment"): _Handler._handle_segment,
    ("GET", "/v1/topics"): _Handler._handle_topics,
}
