"""Dependency-free JSON-over-HTTP model server (stdlib ``http.server``).

:class:`ReproServer` is a ``ThreadingHTTPServer`` — one OS thread per
connection, no third-party dependencies — that serves the artifact bundles
of a :class:`~repro.serve.registry.ModelRegistry` through nine endpoints:

========================  ======  ===============================================
``/healthz``              GET     liveness + registered model names + uptime
``/metrics``              GET     Prometheus text (counters + latency quantiles)
``/v1/models``            GET     registered bundles with manifest metadata
``/v1/infer``             POST    topic mixtures for unseen documents (batched)
``/v1/segment``           POST    frozen-table phrase segmentation of documents
``/v1/topics``            GET     per-topic unigram/phrase tables of a model
``/v1/log/manifest``      GET     the published document log's manifest bytes
``/v1/log/shard/<name>``  GET     shard byte ranges with SHA-256 headers
``/debug/profile``        GET     collapsed-stack CPU profile over ``?seconds=N``
========================  ======  ===============================================

Inference requests funnel through the
:class:`~repro.serve.batching.MicroBatcher`, so concurrent clients are
coalesced into one vectorized fold-in per batching window while each
request keeps its seed-deterministic result.  Request and response bodies
are JSON, validated and serialized through the typed schemas of
:mod:`repro.serve.api`; errors come back as ``{"error": ...}`` with a
4xx/5xx status.  See ``docs/serving.md`` for the full schemas.

A server is configured by one frozen
:class:`~repro.serve.config.ServeConfig` (the legacy per-kwarg
constructor keeps working with a :class:`DeprecationWarning`).  As a
fleet member (:mod:`repro.serve.fleet`), each worker process constructs
its server with ``reuse_port=True`` — every worker binds the *same*
address with ``SO_REUSEPORT`` and the kernel spreads incoming connections
across them — and a ``worker_id`` that is stamped into ``/healthz`` and
``/v1/models`` replies so observers can tell the workers apart.
"""

from __future__ import annotations

import hashlib
import json
import re
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.io.artifacts import ArtifactError
from repro.obs import build_info as obs_build_info
from repro.obs.history import HistoryRecorder, history_dir
from repro.obs.logging import log_event
from repro.obs.profile import capture_profile
from repro.obs.render import render_fleet
from repro.obs.shards import ShardWriter, collect_shards, shard_path
from repro.obs.slo import SLOVerdict, evaluate_slos, render_slo_gauges
from repro.obs.tracing import RequestTrace, new_request_id, sanitize_request_id
from repro.serve import api
from repro.serve.batching import MicroBatcher
from repro.serve.config import (
    DEFAULT_ITERATIONS,
    DEFAULT_SEED,
    ServeConfig,
    config_from_legacy_kwargs,
)
from repro.serve.registry import LoadedModel, ModelRegistry, UnknownModelError
from repro.utils.timing import MetricsRegistry

__all__ = ["DEFAULT_ITERATIONS", "DEFAULT_SEED", "ENDPOINTS",
           "MAX_BODY_BYTES", "ReproServer", "RequestError"]

ENDPOINTS = ("/healthz", "/metrics", "/v1/models", "/v1/infer",
             "/v1/segment", "/v1/topics", "/v1/log/manifest",
             "/v1/log/shard/<name>", "/debug/profile")

MAX_BODY_BYTES = 8 * 1024 * 1024

#: Ceiling on one ``/debug/profile`` capture, so a client cannot park a
#: handler thread indefinitely.
MAX_PROFILE_SECONDS = 30.0

#: Shard names a follower may request — manifest stems only, no separators
#: or dots, so the route can never escape the log's shard directory.
_SHARD_NAME_RE = re.compile(r"^[A-Za-z0-9_-]+$")

#: The collapsed route prefix for ranged shard fetches.
_LOG_SHARD_PREFIX = "/v1/log/shard/"


class RequestError(Exception):
    """A client error carrying the HTTP status to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ReproServer(ThreadingHTTPServer):
    """The batched-inference model server.

    Parameters
    ----------
    registry:
        Registry of bundles to serve (shared, hot-reloadable).
    config:
        The :class:`~repro.serve.config.ServeConfig` to run with
        (defaults to ``ServeConfig()``).  ``port=0`` picks an ephemeral
        port — read the actual one from ``server_port``.
    worker_id:
        This server's identity inside a fleet (``0`` for a standalone
        server); reported in ``/healthz`` and ``/v1/models`` replies.
    metrics:
        Optional shared metrics registry (defaults to the registry's);
        the server, batcher, and registry all record into it and
        ``/metrics`` renders it.
    reuse_port:
        Bind with ``SO_REUSEPORT`` so several worker processes can listen
        on one address, kernel-balanced (used by
        :class:`~repro.serve.fleet.ServeFleet`).
    record_history:
        Whether this server runs the metrics-history recorder thread
        (:class:`~repro.obs.history.HistoryRecorder`).  History has
        exactly one writer per metrics directory, so the default is
        "record iff standalone with a metrics_dir"; fleet workers pass
        ``False`` (the fleet parent records instead).
    **legacy:
        The pre-``ServeConfig`` keyword arguments (``host``, ``port``,
        ``max_batch_size``, ``batch_delay``, ``default_iterations``)
        still work — folded into a config with a
        :class:`DeprecationWarning`.
    """

    daemon_threads = True
    # The stdlib default backlog (5) drops SYNs under bursts of fresh
    # connections — each costing the client a full TCP retransmission
    # timeout.  High-concurrency replays open a connection per request,
    # so listen deep enough that the accept loop is the only queue.
    request_queue_size = 128

    def __init__(self, registry: ModelRegistry,
                 config: Optional[ServeConfig] = None, *,
                 worker_id: int = 0,
                 metrics: Optional[MetricsRegistry] = None,
                 reuse_port: bool = False,
                 record_history: Optional[bool] = None,
                 **legacy: Any) -> None:
        config = config_from_legacy_kwargs(config, legacy, "ReproServer")
        self.config = config
        self.worker_id = worker_id
        self.registry = registry
        self.metrics = metrics or registry.metrics
        # One shared stats path: the registry's load/reload/eviction
        # counters must land in the registry /metrics renders.
        registry.metrics = self.metrics
        # The metric shard this process appends to.  With a metrics_dir
        # (fleet mode) it is a file other workers' scrapes can read; a
        # standalone server keeps an anonymous in-memory shard so the one
        # /metrics rendering path — per-worker_id series plus fleet totals
        # — serves the 1-worker and N-worker cases identically.
        if config.metrics_dir is not None:
            self.shard = ShardWriter(
                shard_path(config.metrics_dir, str(worker_id)))
        else:
            self.shard = ShardWriter()
        self.metrics.attach_shard(self.shard)
        # Pre-declare the request/error families at zero (standard
        # exposition practice): a healthy server would otherwise never
        # create http_errors_total, leaving the error-ratio SLO with no
        # numerator series — stuck at no_data instead of reporting 0.
        for family in ("http_requests_total", "http_errors_total"):
            self.metrics.increment(family, 0)
        self.shard.flush()
        self.build_info = obs_build_info()
        # Metrics history: one writer per metrics directory.  A standalone
        # server with a metrics_dir records its own frames; fleet workers
        # leave recording to the fleet parent (record_history=False).
        if record_history is None:
            record_history = config.metrics_dir is not None \
                and config.workers == 1
        self.history: Optional[HistoryRecorder] = None
        if record_history and config.metrics_dir is not None:
            self.history = HistoryRecorder(
                config.metrics_dir, config.history_interval_seconds,
                inline=[(str(worker_id), self.shard)])
            self.history.start()
        self.log_root = Path(config.log_root) if config.log_root else None
        self.default_iterations = config.default_iterations
        self.batcher = MicroBatcher.from_config(registry, config,
                                                metrics=self.metrics)
        self.started_at = time.time()
        super().__init__((config.host, config.port), _Handler,
                         bind_and_activate=False)
        if reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):
                raise OSError("SO_REUSEPORT is not supported on this platform")
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        try:
            self.server_bind()
            self.server_activate()
        except BaseException:
            self.server_close()
            raise
        self.batcher.start()

    def log_progress(self) -> Optional[Dict[str, Any]]:
        """Summarise the published log (``None`` when none is configured).

        Reads only the manifest, never shard bodies, so ``/v1/models``
        stays cheap; an unreadable manifest reports zero progress rather
        than failing the whole reply.
        """
        if self.log_root is None:
            return None
        try:
            manifest = json.loads(
                (self.log_root / "manifest.json").read_text(encoding="utf-8"))
            shards = manifest.get("shards", [])
            n_documents = int(manifest.get("n_documents", 0))
        except (OSError, json.JSONDecodeError, ValueError):
            shards, n_documents = [], 0
        return {"n_documents": n_documents, "n_shards": len(shards)}

    @property
    def url(self) -> str:
        """The server's base URL (with the actually bound port)."""
        host = self.server_address[0]
        return f"http://{host}:{self.server_port}"

    def start_background(self) -> threading.Thread:
        """Run ``serve_forever`` in a daemon thread and return it."""
        thread = threading.Thread(target=self.serve_forever,
                                  name="repro-serve-http", daemon=True)
        thread.start()
        return thread

    def stop(self) -> None:
        """Stop accepting requests and shut the scheduler down cleanly.

        Safe to call whether ``serve_forever`` runs in this thread (after
        a ``KeyboardInterrupt``) or in a background thread.
        """
        self.shutdown()
        self.close()

    def close(self) -> None:
        """Release resources without touching the serve loop (use after
        ``serve_forever`` already returned in this thread)."""
        self.batcher.stop()
        self.server_close()
        if self.history is not None:
            self.history.stop()
        # Flush but keep a file-backed shard: if this worker is part of a
        # fleet, its totals stay scrapeable until the monitor reaps them.
        self.shard.flush()

    def slo_verdicts(self) -> Optional[List[SLOVerdict]]:
        """Evaluate the declared SLOs over recorded history.

        Any fleet member can answer: workers never *write* history, but
        they all read the shared ``<metrics_dir>/history/`` ring the
        parent records.  Returns ``None`` when no history exists yet (no
        metrics directory, or the recorder has not committed a frame).
        """
        if self.config.metrics_dir is None:
            return None
        directory = history_dir(self.config.metrics_dir)
        if not directory.is_dir():
            return None
        return evaluate_slos(directory)


class _Handler(BaseHTTPRequestHandler):
    """Routes the JSON and log-shipping endpoints; one instance per request."""

    server: ReproServer  # narrowed from BaseHTTPRequestHandler
    protocol_version = "HTTP/1.1"
    # Keep-alive clients otherwise hit the Nagle/delayed-ACK interaction:
    # the response lands in two small segments and the second waits ~40ms
    # for the peer's delayed ACK, dwarfing the batching window.
    disable_nagle_algorithm = True

    # -- plumbing ----------------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Silence per-request stderr logging; ``/metrics`` observes instead."""

    #: The request's trace; set by ``_dispatch`` before any handler runs.
    trace: Optional[RequestTrace] = None
    #: Shard name extracted from a ``/v1/log/shard/<name>`` path.
    log_shard_name: Optional[str] = None

    def _send_payload(self, status: int, body: bytes, content_type: str,
                      extra_headers: Optional[Dict[str, str]] = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self.trace is not None:
            self.send_header("X-Request-Id", self.trace.request_id)
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Any) -> None:
        body = (json.dumps(payload) + "\n").encode("utf-8")
        self._send_payload(status, body, "application/json")

    def _read_json_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise RequestError(400, "request body required")
        if length > MAX_BODY_BYTES:
            # The oversized body is never drained; drop the connection so a
            # keep-alive client cannot desynchronise its next request.
            self.close_connection = True
            raise RequestError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RequestError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise RequestError(400, "JSON body must be an object")
        return payload

    def _dispatch(self, method: str) -> None:
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        # Shard fetches carry the shard name in the path; collapse them to
        # one route so metrics stay bounded and _ROUTES stays exact-match.
        self.log_shard_name = None
        if route.startswith(_LOG_SHARD_PREFIX):
            self.log_shard_name = route[len(_LOG_SHARD_PREFIX):]
            route = _LOG_SHARD_PREFIX.rstrip("/")
        # Unknown paths share one latency bucket: per-route metrics must not
        # let arbitrary client URLs grow /metrics without bound.
        known_route = any(route == known for _, known in _ROUTES)
        bucket = route if known_route else "/unmatched"
        metrics = self.server.metrics
        metrics.increment("http_requests_total")
        # The request id: echo a well-formed client X-Request-Id, mint one
        # otherwise.  The trace travels with the request through the
        # batcher and comes back in the X-Request-Id response header.
        self.trace = RequestTrace(
            request_id=(sanitize_request_id(self.headers.get("X-Request-Id"))
                        or new_request_id()),
            route=bucket)
        start = time.perf_counter()
        try:
            handler = _ROUTES.get((method, route))
            if handler is None:
                if known_route:
                    raise RequestError(405, f"{method} not allowed on {route}")
                raise RequestError(404, f"no such endpoint: {route}")
            handler(self, parse_qs(parsed.query))
        except RequestError as exc:
            metrics.increment("http_errors_total")
            self._send_json(exc.status, {"error": str(exc)})
        except api.SchemaError as exc:
            metrics.increment("http_errors_total")
            self._send_json(exc.status, {"error": str(exc)})
        except UnknownModelError as exc:
            metrics.increment("http_errors_total")
            self._send_json(404, {"error": str(exc.args[0])})
        except ArtifactError as exc:
            metrics.increment("http_errors_total")
            self._send_json(500, {"error": f"artifact error: {exc}"})
        except BrokenPipeError:
            # Client went away mid-response; nothing left to answer.
            metrics.increment("http_errors_total")
        except Exception as exc:  # keep the connection thread alive
            metrics.increment("http_errors_total")
            self._send_json(500, {"error": f"internal error: {exc}"})
        finally:
            elapsed = time.perf_counter() - start
            metrics.observe(f"http{bucket.replace('/', '_')}_seconds",
                            elapsed)
            threshold = self.server.config.slow_request_seconds
            if threshold is not None and elapsed >= threshold:
                metrics.increment("slow_requests_total")
                log_event("slow_request",
                          worker_id=self.server.worker_id,
                          method=method,
                          threshold_seconds=threshold,
                          **self.trace.as_dict())

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        """Serve the GET endpoints."""
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler naming)
        """Serve the POST endpoints."""
        self._dispatch("POST")

    # -- shared request helpers --------------------------------------------------------
    def _resolve_model_name(self, requested: Optional[str]) -> str:
        if requested:
            return requested
        default = self.server.registry.default_name()
        if default is None:
            raise RequestError(
                400, "request must name a 'model' (several are registered: "
                     f"{self.server.registry.names()})")
        return default

    def _load_model_bundle(self, name: str) -> LoadedModel:
        loaded = self.server.registry.get(name)
        if loaded.kind != "model":
            raise RequestError(
                400, f"model {name!r} is a {loaded.kind!r} bundle; this "
                     f"endpoint needs a fitted model (run `repro fit`)")
        return loaded

    # -- endpoints ---------------------------------------------------------------------
    def _handle_healthz(self, query: Dict[str, List[str]]) -> None:
        # SLO verdicts are degradation *reasons*, not liveness: the status
        # stays "ok" (and the HTTP status 200) even mid-breach, so load
        # balancers keep routing while rollout gates and operators see why
        # the fleet is degraded.
        verdicts = self.server.slo_verdicts()
        reply = api.HealthResponse(
            status="ok",
            models=tuple(self.server.registry.names()),
            loaded=tuple(self.server.registry.loaded_names()),
            uptime_seconds=time.time() - self.server.started_at,
            worker_id=self.server.worker_id,
            slo=None if verdicts is None
            else tuple(verdict.as_dict() for verdict in verdicts))
        self._send_json(200, reply.to_payload())

    def _handle_metrics(self, query: Dict[str, List[str]]) -> None:
        # Fleet-wide scrape: whichever worker answers reads every live
        # shard in the shared metrics directory (plus its own in-memory
        # shard, which is freshest) and renders per-worker_id series plus
        # fleet totals.  Standalone servers have no directory — the render
        # then covers just this process, with identical label structure.
        sample = collect_shards(
            self.server.config.metrics_dir,
            inline=[(str(self.server.worker_id), self.server.shard)])
        text = render_fleet(sample, build_info=self.server.build_info)
        verdicts = self.server.slo_verdicts()
        if verdicts:
            text += render_slo_gauges(verdicts)
        self._send_payload(200, text.encode("utf-8"),
                           "text/plain; version=0.0.4")

    def _handle_debug_profile(self, query: Dict[str, List[str]]) -> None:
        try:
            seconds = float((query.get("seconds") or ["1"])[0])
        except ValueError as exc:
            raise RequestError(400, "'seconds' must be a number") from exc
        if not 0 < seconds <= MAX_PROFILE_SECONDS:
            raise RequestError(
                400, f"'seconds' must be in (0, {MAX_PROFILE_SECONDS:g}]")
        # The handler thread sleeps while the sampler thread watches every
        # other thread work; concurrent requests keep being served.
        collapsed = capture_profile(seconds)
        self._send_payload(200, collapsed.encode("utf-8"),
                           "text/plain; charset=utf-8")

    def _handle_models(self, query: Dict[str, List[str]]) -> None:
        reply = api.ModelsResponse(
            models=tuple(self.server.registry.describe_all()),
            worker_id=self.server.worker_id,
            log=self.server.log_progress())
        self._send_json(200, reply.to_payload())

    # -- log shipping ------------------------------------------------------------------
    def _log_root(self) -> Path:
        root = self.server.log_root
        if root is None:
            raise RequestError(
                404, "this server does not publish a document log")
        return root

    def _handle_log_manifest(self, query: Dict[str, List[str]]) -> None:
        manifest = self._log_root() / "manifest.json"
        try:
            body = manifest.read_bytes()
        except OSError as exc:
            raise RequestError(404, "log manifest not found") from exc
        # The manifest is served verbatim — byte-identity of a caught-up
        # replica is defined against exactly these bytes.
        self._send_payload(
            200, body, "application/json",
            extra_headers={
                "X-Content-SHA256": hashlib.sha256(body).hexdigest()})

    def _handle_log_shard(self, query: Dict[str, List[str]]) -> None:
        root = self._log_root()
        name = self.log_shard_name or ""
        if not _SHARD_NAME_RE.match(name):
            raise RequestError(400, f"invalid shard name {name!r}")
        path = root / "shards" / f"{name}.jsonl"
        try:
            size = path.stat().st_size
        except OSError as exc:
            raise RequestError(404, f"no such shard: {name}") from exc
        if "digest" in query:
            # Cheap integrity probe: full-file SHA-256 without the body, so
            # a follower can pin byte-identity after a chunked fetch.
            digest = hashlib.sha256(path.read_bytes()).hexdigest()
            self._send_json(200, {"name": name, "size": size,
                                  "sha256": digest})
            return
        try:
            offset = int((query.get("offset") or ["0"])[0])
            length = int((query.get("length") or [str(size)])[0])
        except ValueError as exc:
            raise RequestError(
                400, "'offset' and 'length' must be integers") from exc
        if offset < 0 or length < 0:
            raise RequestError(400, "'offset' and 'length' must be >= 0")
        if offset > size:
            raise RequestError(
                416, f"offset {offset} beyond shard size {size}")
        with open(path, "rb") as handle:
            handle.seek(offset)
            body = handle.read(length)
        self._send_payload(
            200, body, "application/octet-stream",
            extra_headers={
                "X-Content-SHA256": hashlib.sha256(body).hexdigest(),
                "X-Content-Offset": str(offset),
                "X-Shard-Size": str(size)})

    def _handle_infer(self, query: Dict[str, List[str]]) -> None:
        request = api.InferRequest.from_payload(
            self._read_json_body(),
            default_iterations=self.server.config.default_iterations)
        name = self._resolve_model_name(request.model)
        try:
            result = self.server.batcher.submit(name, list(request.documents),
                                                request.seed,
                                                request.iterations,
                                                trace=self.trace)
        except ValueError as exc:  # e.g. segmentation bundle
            raise RequestError(400, str(exc)) from exc
        reply = api.InferResponse.from_result(
            name, result, request,
            request_id=self.trace.request_id if self.trace else None)
        self._send_json(200, reply.to_payload())

    def _handle_segment(self, query: Dict[str, List[str]]) -> None:
        request = api.SegmentRequest.from_payload(self._read_json_body())
        name = self._resolve_model_name(request.model)
        loaded = self.server.registry.get(name)
        # Both bundle kinds carry a segmentation-capable cached inferencer.
        phrase_docs, unknown_counts = loaded.inferencer.segment_texts(
            list(request.documents))
        vocabulary = loaded.bundle.vocabulary
        reply = api.SegmentResponse(
            model=name,
            documents=tuple(
                api.SegmentedDocument(
                    phrases=tuple(vocabulary.decode(phrase)
                                  for phrase in phrases),
                    surface_phrases=tuple(vocabulary.unstem_phrase(phrase)
                                          for phrase in phrases),
                    n_unknown_tokens=unknown)
                for phrases, unknown in zip(phrase_docs, unknown_counts)))
        self._send_json(200, reply.to_payload())

    def _handle_topics(self, query: Dict[str, List[str]]) -> None:
        name = self._resolve_model_name((query.get("model") or [None])[0])
        try:
            n = int((query.get("n") or ["10"])[0])
        except ValueError as exc:
            raise RequestError(400, "'n' must be an integer") from exc
        if not 1 <= n <= 1_000:
            raise RequestError(400, "'n' must be in [1, 1000]")
        loaded = self._load_model_bundle(name)
        visualization = loaded.bundle.visualization(n_unigrams=n, n_phrases=n)
        reply = api.TopicsResponse(
            model=name, n_topics=visualization.n_topics,
            topics=tuple(
                api.TopicEntry(topic=k,
                               unigrams=tuple(visualization.top_unigrams[k][:n]),
                               phrases=tuple(visualization.top_phrases[k][:n]))
                for k in range(visualization.n_topics)))
        self._send_json(200, reply.to_payload())


_ROUTES: Dict[Tuple[str, str], Any] = {
    ("GET", "/healthz"): _Handler._handle_healthz,
    ("GET", "/metrics"): _Handler._handle_metrics,
    ("GET", "/v1/models"): _Handler._handle_models,
    ("POST", "/v1/infer"): _Handler._handle_infer,
    ("POST", "/v1/segment"): _Handler._handle_segment,
    ("GET", "/v1/topics"): _Handler._handle_topics,
    ("GET", "/v1/log/manifest"): _Handler._handle_log_manifest,
    ("GET", "/v1/log/shard"): _Handler._handle_log_shard,
    ("GET", "/debug/profile"): _Handler._handle_debug_profile,
}
