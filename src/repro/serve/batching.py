"""Micro-batching inference scheduler: coalesce requests, keep determinism.

Concurrent ``/v1/infer`` requests arriving within a short window are
coalesced into **one** vectorized fold-in pass
(:meth:`~repro.core.infer.TopicInferencer.infer_texts_grouped`) instead of
running one sampler per request.  Batching is purely a throughput
optimisation: every request keeps its own seed and random stream inside
the batch, so its topic mixtures are bit-identical to a solo
:class:`~repro.core.infer.TopicInferencer` run with that seed — the
property the serving test suite pins.

The scheduler is a single daemon worker thread over a condition-guarded
queue.  A batch closes when ``max_batch_size`` requests are pending or
``max_delay`` seconds have passed since the oldest pending request; it is
then partitioned by ``(model, n_iterations)`` — only requests that agree
on those can share one sampler configuration — and each partition runs as
one grouped fold-in.

Segmentation piggybacks on the same coalescing: ``infer_texts_grouped``
segments every request of a partition in **one** vectorized pass of the
frozen phrase table (the batched numpy engine in
:mod:`repro.core.fast_construction`) before the shared fold-in, so the
pre-processing half of the serving hot path is batched exactly like the
sampling half.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.infer import InferenceConfig, InferenceResult
from repro.obs.tracing import RequestTrace, span_metric
from repro.serve.config import ServeConfig
from repro.serve.registry import ModelRegistry
from repro.utils.timing import MetricsRegistry, Stopwatch


@dataclass
class _Pending:
    """One queued inference request awaiting its batch."""

    model: str
    texts: Sequence[str]
    seed: int
    n_iterations: int
    future: "Future[InferenceResult]" = field(default_factory=Future)
    trace: Optional[RequestTrace] = None
    enqueued_at: float = field(default_factory=time.perf_counter)


class MicroBatcher:
    """Coalesces concurrent inference requests into vectorized batches.

    Parameters
    ----------
    registry:
        The :class:`~repro.serve.registry.ModelRegistry` models are pulled
        from (per batch, so hot-reloads apply between batches).
    max_batch_size:
        Close a batch as soon as this many requests are pending.
    max_delay:
        Seconds to keep a batch open after its first request, waiting for
        company (the micro-batching window).
    metrics:
        Optional shared metrics registry; the batcher records
        ``infer_requests_total``, ``infer_documents_total``,
        ``infer_batches_total`` counters and ``infer_batch_seconds`` /
        ``infer_batch_size`` latencies into it.
    """

    def __init__(self, registry: ModelRegistry, max_batch_size: int = 32,
                 max_delay: float = 0.005,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        self.registry = registry
        self.max_batch_size = max_batch_size
        self.max_delay = max_delay
        self.metrics = metrics or MetricsRegistry()
        self._queue: List[_Pending] = []
        self._condition = threading.Condition()
        self._stopped = False
        self._worker: Optional[threading.Thread] = None

    @classmethod
    def from_config(cls, registry: ModelRegistry, config: "ServeConfig",
                    metrics: Optional[MetricsRegistry] = None) \
            -> "MicroBatcher":
        """Build a batcher from a :class:`~repro.serve.config.ServeConfig`.

        The canonical construction path: every worker of a fleet calls
        this with the *same* config, so all batching windows agree.
        """
        return cls(registry, max_batch_size=config.max_batch_size,
                   max_delay=config.batch_delay, metrics=metrics)

    # -- lifecycle ---------------------------------------------------------------------
    def start(self) -> None:
        """Start the worker thread (idempotent)."""
        with self._condition:
            if self._worker is not None and self._worker.is_alive():
                return
            self._stopped = False
            self._worker = threading.Thread(target=self._run,
                                            name="repro-serve-batcher",
                                            daemon=True)
            self._worker.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the worker; pending requests fail with ``RuntimeError``."""
        with self._condition:
            self._stopped = True
            pending, self._queue = self._queue, []
            self._condition.notify_all()
        for request in pending:
            request.future.set_exception(
                RuntimeError("inference scheduler stopped"))
        worker = self._worker
        if worker is not None and worker.is_alive():
            worker.join(timeout)

    # -- submission --------------------------------------------------------------------
    def submit(self, model: str, texts: Sequence[str], seed: int,
               n_iterations: int,
               timeout: Optional[float] = None,
               trace: Optional[RequestTrace] = None) -> InferenceResult:
        """Enqueue one request and block until its batch completes.

        Returns the request's own :class:`~repro.core.infer.InferenceResult`
        — bit-identical to a solo ``infer_texts`` run with ``seed`` —
        regardless of which other requests shared the batch.

        When a :class:`~repro.obs.tracing.RequestTrace` is passed, the
        batch records its span timings (queue wait, batch assembly, model
        load, segmentation, fold-in) into it — and into the shared metrics
        registry's ``span_*_seconds`` histograms either way.

        Raises whatever the batch execution raised for this request (e.g.
        :class:`~repro.serve.registry.UnknownModelError`), or
        ``RuntimeError`` if the scheduler is stopped.
        """
        request = _Pending(model=model, texts=list(texts), seed=seed,
                           n_iterations=n_iterations, trace=trace)
        with self._condition:
            if self._stopped or self._worker is None:
                raise RuntimeError("inference scheduler is not running")
            self._queue.append(request)
            self._condition.notify_all()
        self.metrics.increment("infer_requests_total")
        return request.future.result(timeout=timeout)

    # -- worker ------------------------------------------------------------------------
    def _collect_batch(self) -> List[_Pending]:
        """Block until a batch is ready; empty means the batcher stopped."""
        with self._condition:
            while not self._queue and not self._stopped:
                self._condition.wait()
            if self._stopped:
                return []
            deadline = time.monotonic() + self.max_delay
            while (len(self._queue) < self.max_batch_size
                   and not self._stopped):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._condition.wait(timeout=remaining)
            batch = self._queue[:self.max_batch_size]
            del self._queue[:self.max_batch_size]
            return batch

    def _run(self) -> None:
        """Worker loop: collect → partition → execute until stopped."""
        while True:
            batch = self._collect_batch()
            if not batch:
                return
            self._execute(batch)

    def _record_span(self, requests: List[_Pending], span: str,
                     seconds: float) -> None:
        """Observe one span histogram and mirror it into request traces."""
        self.metrics.observe(span_metric(span), seconds)
        for request in requests:
            if request.trace is not None:
                request.trace.record(span, seconds)

    def _execute(self, batch: List[_Pending]) -> None:
        """Run one collected batch, partitioned by (model, iterations)."""
        execution_start = time.perf_counter()
        for request in batch:
            wait = execution_start - request.enqueued_at
            self.metrics.observe(span_metric("queue_wait"), wait)
            if request.trace is not None:
                request.trace.record("queue_wait", wait)
        partitions: Dict[Tuple[str, int], List[_Pending]] = {}
        for request in batch:
            partitions.setdefault((request.model, request.n_iterations),
                                  []).append(request)
        self._record_span(batch, "batch_assembly",
                          time.perf_counter() - execution_start)
        for (model_name, n_iterations), requests in partitions.items():
            self.metrics.increment("infer_batches_total")
            self.metrics.observe("infer_batch_size", len(requests))
            try:
                with self.metrics.timer("infer_batch_seconds"):
                    load_start = time.perf_counter()
                    loaded = self.registry.get(model_name)
                    self._record_span(requests, "model_load",
                                      time.perf_counter() - load_start)
                    if loaded.kind != "model":
                        raise ValueError(
                            f"model {model_name!r} is a {loaded.kind!r} "
                            f"bundle and cannot serve inference")
                    watch = Stopwatch()
                    results = loaded.inferencer.infer_texts_grouped(
                        [request.texts for request in requests],
                        [request.seed for request in requests],
                        InferenceConfig(n_iterations=n_iterations,
                                        engine="batch"),
                        watch=watch)
                    for span in ("segmentation", "fold_in"):
                        self._record_span(requests, span,
                                          watch.timings.get(span, 0.0))
            except Exception as exc:  # delivered per request, worker survives
                for request in requests:
                    if not request.future.cancelled():
                        request.future.set_exception(exc)
                continue
            self.metrics.increment(
                "infer_documents_total",
                sum(len(request.texts) for request in requests))
            for request, result in zip(requests, results):
                if not request.future.cancelled():
                    request.future.set_result(result)
