"""Frequent contiguous phrase mining (paper Algorithm 1).

The task: collect aggregate counts for all contiguous word sequences in a
corpus whose frequency meets a minimum support ε.  Two pruning properties
make this efficient:

1. **Downward closure** — if a phrase is not frequent no super-phrase is.
   Realised as *position-based Apriori pruning*: for every document we keep a
   set of *active indices*, the positions at which a frequent phrase of the
   current length starts.  At iteration n only candidates whose length-(n−1)
   prefix (at position i) and suffix (at position i+1) are both frequent are
   counted.
2. **Data antimonotonicity** — a document with no active indices left can
   never contribute a longer frequent phrase and is dropped from
   consideration, giving early termination.

Counting is done per *chunk* (text between phrase-invariant punctuation), so
candidate phrases never straddle punctuation and the candidate space per
document stays effectively constant-size, which is the basis of the paper's
linear-time argument (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.text.corpus import Corpus
from repro.text.flat import FlatChunks
from repro.utils.counter import HashCounter, Phrase

#: Engine names accepted by :class:`PhraseMiningConfig` (and by the
#: segmentation layer, which shares the same engine architecture).
MINING_ENGINES = ("auto", "numpy", "reference")


def resolve_mining_engine(engine: str) -> str:
    """Map a mining engine request onto a concrete engine name.

    ``"auto"`` resolves to ``"numpy"``, the vectorized flat-buffer miner —
    bit-identical to the reference loop (asserted by the equivalence tests)
    and much faster at corpus scale.

    Raises
    ------
    ValueError
        If ``engine`` is not one of :data:`MINING_ENGINES`.
    """
    if engine not in MINING_ENGINES:
        raise ValueError(f"unknown mining engine {engine!r}; "
                         f"expected one of {MINING_ENGINES}")
    return "numpy" if engine == "auto" else engine


def mining_token_count(corpus: Corpus) -> int:
    """Token count of ``corpus`` as seen by the phrase miners.

    Both mining engines work over the non-empty phrase-invariant chunks;
    this helper counts exactly those tokens, and is what
    :attr:`FrequentPhraseMiningResult.total_tokens` reports.  Documents that
    are punctuation-heavy (or stop-word-heavy) before preprocessing
    contribute far fewer chunked tokens than raw tokens, which is why
    support scaling must use this count rather than a raw size.
    """
    return sum(len(chunk)
               for document in corpus
               for chunk in document.iter_chunks()
               if chunk)


@dataclass
class PhraseMiningConfig:
    """Configuration for frequent phrase mining.

    Parameters
    ----------
    min_support:
        Minimum number of occurrences ε a phrase needs to be kept.  The paper
        suggests growing it linearly with corpus size; see
        :meth:`PhraseMiningConfig.scaled_to_corpus`.
    max_phrase_length:
        Optional hard cap on phrase length (``None`` lets the antimonotone
        pruning terminate naturally).
    engine:
        Mining implementation: ``"reference"`` (the readable per-position
        loop over :class:`~repro.utils.counter.HashCounter`), ``"numpy"``
        (vectorized n-gram aggregation over the flat chunk buffer), or
        ``"auto"`` (→ ``"numpy"``).  All engines produce bit-identical
        results.
    """

    min_support: int = 10
    max_phrase_length: Optional[int] = None
    engine: str = "auto"

    @classmethod
    def scaled_to_tokens(cls, n_tokens: int,
                         support_per_million_tokens: float = 300.0,
                         minimum: int = 3,
                         max_phrase_length: Optional[int] = None,
                         engine: str = "auto") -> "PhraseMiningConfig":
        """Build a config whose minimum support scales with a token count.

        The single place the support-scaling formula lives:
        ``min_support = max(minimum, round(support_per_million_tokens *
        n_tokens / 1e6))``.  ``n_tokens`` must be the *chunked* token count
        mining actually sees (:func:`mining_token_count`); incremental
        pipelines that track that count as a running sum
        (:mod:`repro.stream.counters`) call this directly so a streamed
        corpus resolves the exact same threshold as an offline run over the
        equivalent snapshot.
        """
        support = max(minimum, int(round(support_per_million_tokens * n_tokens / 1e6)))
        return cls(min_support=support, max_phrase_length=max_phrase_length,
                   engine=engine)

    @classmethod
    def scaled_to_corpus(cls, corpus: Corpus, support_per_million_tokens: float = 300.0,
                         minimum: int = 3,
                         max_phrase_length: Optional[int] = None,
                         engine: str = "auto") -> "PhraseMiningConfig":
        """Build a config whose minimum support grows linearly with corpus size.

        ``min_support = max(minimum, support_per_million_tokens * N / 1e6)``
        following the paper's guidance that support should scale with the
        number of tokens ``N``.  ``N`` here is :func:`mining_token_count` —
        the chunked token count mining actually sees (and reports as
        :attr:`FrequentPhraseMiningResult.total_tokens`) — not a raw token
        count, which over-counts on punctuation- and stop-word-heavy text
        and would inflate the support threshold.
        """
        return cls.scaled_to_tokens(
            mining_token_count(corpus),
            support_per_million_tokens=support_per_million_tokens,
            minimum=minimum, max_phrase_length=max_phrase_length, engine=engine)


@dataclass
class FrequentPhraseMiningResult:
    """Output of the miner: frequent phrases, their counts, and statistics.

    Attributes
    ----------
    counter:
        :class:`~repro.utils.counter.HashCounter` mapping each frequent phrase
        (tuple of word ids) to its corpus frequency ``C(P)``.  Length-1
        "phrases" (single words) are included because the significance score
        needs unigram counts.
    total_tokens:
        Corpus token count ``L`` used as the Bernoulli-trial count in the
        significance null model.
    min_support:
        The support threshold that was applied.
    iterations:
        Longest phrase length examined by the sliding window.
    """

    counter: HashCounter
    total_tokens: int
    min_support: int
    iterations: int = 0

    def frequency(self, phrase: Sequence[int]) -> int:
        """Return the mined frequency of ``phrase`` (0 when not frequent)."""
        return self.counter.get(phrase)

    def frequent_phrases(self, min_length: int = 2) -> Dict[Phrase, int]:
        """Return phrases of at least ``min_length`` words with their counts."""
        return {p: c for p, c in self.counter.items() if len(p) >= min_length}

    def num_frequent_phrases(self, min_length: int = 2) -> int:
        """Number of frequent phrases of at least ``min_length`` words."""
        return len(self.frequent_phrases(min_length))


class FrequentPhraseMiner:
    """Mines frequent contiguous phrases from a corpus (paper Algorithm 1)."""

    def __init__(self, config: Optional[PhraseMiningConfig] = None) -> None:
        self.config = config or PhraseMiningConfig()
        if self.config.min_support < 1:
            raise ValueError("min_support must be at least 1")
        self.engine = resolve_mining_engine(self.config.engine)

    def mine(self, corpus: Corpus) -> FrequentPhraseMiningResult:
        """Run frequent phrase mining over ``corpus``.

        Documents are processed chunk by chunk; a phrase never spans a chunk
        boundary.  Returns a :class:`FrequentPhraseMiningResult` whose counter
        contains every contiguous phrase (length ≥ 1) with frequency at least
        ``min_support``.  The configured engine only changes how the counts
        are computed — the result is bit-identical either way.
        """
        if self.engine == "numpy":
            return self._mine_numpy(corpus)
        return self._mine_reference(corpus)

    def _mine_numpy(self, corpus: Corpus) -> FrequentPhraseMiningResult:
        """Vectorized Algorithm 1 over the flat chunk buffer (the fast path)."""
        from repro.core.fast_mining import mine_flat_chunks

        flat = FlatChunks.from_corpus(corpus)
        counter, iterations = mine_flat_chunks(
            flat, self.config.min_support, self.config.max_phrase_length)
        return FrequentPhraseMiningResult(counter=counter,
                                          total_tokens=flat.total_tokens,
                                          min_support=self.config.min_support,
                                          iterations=iterations)

    def _mine_reference(self, corpus: Corpus) -> FrequentPhraseMiningResult:
        """Readable per-position Algorithm 1, the executable specification."""
        min_support = self.config.min_support
        max_length = self.config.max_phrase_length

        counter = HashCounter()
        total_tokens = 0

        # Work at chunk granularity: each entry is the token-id list of one
        # chunk.  Chunk identity is all the counting needs; segmentation later
        # re-associates counts with documents.
        chunks: List[List[int]] = []
        for document in corpus:
            for chunk in document.iter_chunks():
                if chunk:
                    chunks.append(list(chunk))
                    total_tokens += len(chunk)

        # -- length-1 pass (Algorithm 1, lines 1-3) --------------------------------
        for chunk in chunks:
            for word in chunk:
                counter.increment((word,))

        # A_d,1: every position is an active index (line 2).
        active: List[List[int]] = [list(range(len(chunk))) for chunk in chunks]
        live_chunks: List[int] = [i for i, chunk in enumerate(chunks) if len(chunk) > 1]

        # -- increasing-size sliding window (Algorithm 1, lines 4-21) ---------------
        n = 2
        iterations = 1
        while live_chunks and (max_length is None or n <= max_length):
            iterations = n
            next_live: List[int] = []
            level_counts = HashCounter()
            for chunk_id in live_chunks:
                chunk = chunks[chunk_id]
                previous = active[chunk_id]
                # Line 7: keep indices whose length-(n-1) phrase is frequent.
                surviving = [
                    i for i in previous
                    if counter.get(tuple(chunk[i:i + n - 1])) >= min_support
                ]
                # Line 8: drop the largest index — the length-n phrase
                # starting there would run past the end of the frequent
                # region covered by the remaining indices.
                if surviving:
                    surviving = surviving[:-1]
                # Also guard against candidates overrunning the chunk.
                surviving = [i for i in surviving if i + n <= len(chunk)]
                if not surviving:
                    # Data antimonotonicity (lines 9-10): this chunk can never
                    # contain a frequent phrase of length > n-1.
                    active[chunk_id] = []
                    continue
                active[chunk_id] = surviving
                next_live.append(chunk_id)
                surviving_set = set(surviving)
                # Lines 12-15: count a length-n candidate at i only when the
                # suffix starting at i+1 is also a frequent (n-1)-phrase.
                for i in surviving:
                    suffix_start = i + 1
                    suffix = tuple(chunk[suffix_start:suffix_start + n - 1])
                    suffix_active = (suffix_start in surviving_set
                                     or counter.get(suffix) >= min_support)
                    if suffix_active:
                        candidate = tuple(chunk[i:i + n])
                        level_counts.increment(candidate)

            # Merge this level's frequent candidates into the global counter.
            # Infrequent candidates are discarded; the Apriori check at the
            # next level treats them as count 0, which is equivalent to the
            # paper's final filtering (line 22) applied per level.
            for phrase, count in level_counts.items():
                if count >= min_support:
                    counter[phrase] = count

            live_chunks = next_live
            n += 1

        # Final filter (line 22): only phrases meeting the support survive,
        # including unigrams.
        counter.prune_below(min_support)
        return FrequentPhraseMiningResult(counter=counter,
                                          total_tokens=total_tokens,
                                          min_support=min_support,
                                          iterations=iterations)
