"""The end-to-end ToPMine pipeline (paper Section 3).

:class:`ToPMine` chains the full framework:

1. (optionally) preprocess raw text into a :class:`~repro.text.corpus.Corpus`
   (tokenise, split on phrase-invariant punctuation, remove stop words,
   Porter-stem),
2. mine frequent contiguous phrases (Algorithm 1),
3. segment every document into a bag of phrases via bottom-up construction
   guided by the significance score (Algorithm 2),
4. run PhraseLDA over the segmented corpus (Section 5),
5. rank phrases per topic by topical frequency (Eq. 8) and build the
   visualisation.

Timings of the two framework halves (phrase mining vs. topic modeling) are
recorded, matching the decomposition reported in Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.frequent_phrases import (
    FrequentPhraseMiner,
    FrequentPhraseMiningResult,
    PhraseMiningConfig,
)
from repro.core.phrase_construction import PhraseConstructionConfig
from repro.core.phrase_lda import PhraseLDA, PhraseLDAConfig, PhraseLDAState
from repro.core.segmentation import CorpusSegmenter, SegmentedCorpus
from repro.core.visualization import TopicVisualization, TopicVisualizer
from repro.text.corpus import Corpus
from repro.text.preprocess import PreprocessConfig, Preprocessor
from repro.utils.timing import Stopwatch


@dataclass
class ToPMineConfig:
    """Configuration for the full ToPMine pipeline.

    Parameters
    ----------
    n_topics:
        Number of topics ``K`` for PhraseLDA.
    min_support:
        Minimum support ε for frequent phrase mining; when ``None`` it is
        scaled linearly with corpus size (see
        :meth:`PhraseMiningConfig.scaled_to_corpus`).
    significance_threshold:
        α, the merge-significance threshold of the phrase constructor.
    max_phrase_length:
        Optional cap on mined/constructed phrase length.
    n_iterations:
        Gibbs iterations for PhraseLDA.
    alpha, beta:
        Dirichlet priors for PhraseLDA (``alpha=None`` → 50/K).
    optimize_hyperparameters:
        Enable Minka fixed-point hyper-parameter optimisation.
    preprocess:
        Preprocessing options applied when raw texts are supplied.
    seed:
        Random seed threaded through PhraseLDA.
    mining_engine:
        Engine for the phrase-mining front end (Algorithm 1 **and**
        Algorithm 2): ``"auto"``, ``"numpy"``, or ``"reference"``.  All
        engines are bit-identical; ``"auto"`` picks the vectorized path.
    n_jobs:
        Worker processes for corpus segmentation (documents are sharded
        and merged back in order — results are identical to ``1``).
    """

    n_topics: int = 10
    min_support: Optional[int] = 10
    significance_threshold: float = 5.0
    max_phrase_length: Optional[int] = None
    n_iterations: int = 100
    alpha: Optional[float] = None
    beta: float = 0.01
    optimize_hyperparameters: bool = False
    preprocess: PreprocessConfig = field(default_factory=PreprocessConfig)
    seed: Optional[int] = None
    mining_engine: str = "auto"
    n_jobs: int = 1

    def mining_config(self, corpus: Corpus) -> PhraseMiningConfig:
        """Resolve the phrase-mining configuration for ``corpus``."""
        if self.min_support is not None:
            return PhraseMiningConfig(min_support=self.min_support,
                                      max_phrase_length=self.max_phrase_length,
                                      engine=self.mining_engine)
        return PhraseMiningConfig.scaled_to_corpus(
            corpus, max_phrase_length=self.max_phrase_length,
            engine=self.mining_engine)

    def construction_config(self) -> PhraseConstructionConfig:
        """Resolve the phrase-construction configuration."""
        return PhraseConstructionConfig(
            significance_threshold=self.significance_threshold,
            max_phrase_words=self.max_phrase_length,
            engine=self.mining_engine,
            n_jobs=self.n_jobs)

    def phrase_lda_config(self) -> PhraseLDAConfig:
        """Resolve the PhraseLDA configuration."""
        return PhraseLDAConfig(n_topics=self.n_topics,
                               alpha=self.alpha,
                               beta=self.beta,
                               n_iterations=self.n_iterations,
                               optimize_hyperparameters=self.optimize_hyperparameters,
                               seed=self.seed)


@dataclass
class ToPMineResult:
    """Everything produced by one ToPMine run.

    Attributes
    ----------
    corpus:
        The (preprocessed) corpus the pipeline ran on.
    mining_result:
        Frequent phrases and their counts.
    segmented_corpus:
        The bag-of-phrases representation.
    topic_model:
        The fitted :class:`~repro.core.phrase_lda.PhraseLDAState`.
    visualization:
        Per-topic ranked unigrams and phrases.
    timings:
        Stage name → seconds, with stages ``"phrase_mining"`` (Algorithm 1 +
        segmentation) and ``"topic_modeling"`` (PhraseLDA), matching the
        decomposition in Figure 8.
    """

    corpus: Corpus
    mining_result: FrequentPhraseMiningResult
    segmented_corpus: SegmentedCorpus
    topic_model: PhraseLDAState
    visualization: TopicVisualization
    timings: Dict[str, float] = field(default_factory=dict)

    def top_phrases(self, topic: int, n: int = 10) -> List[str]:
        """Convenience accessor for a topic's top phrases."""
        return self.visualization.top_phrases[topic][:n]

    def top_unigrams(self, topic: int, n: int = 10) -> List[str]:
        """Convenience accessor for a topic's top unigrams."""
        return self.visualization.top_unigrams[topic][:n]

    def render_topics(self, n_rows: int = 10, title: Optional[str] = None) -> str:
        """Render the topic table (paper Tables 1, 4, 5, 6 layout)."""
        return self.visualization.render(n_rows=n_rows, title=title)


class ToPMine:
    """Public entry point for the ToPMine framework.

    Example
    -------
    >>> texts = ["frequent pattern mining algorithms"] * 30
    >>> topmine = ToPMine(ToPMineConfig(n_topics=2, min_support=5,
    ...                                 n_iterations=20, seed=7))
    >>> result = topmine.fit(texts)
    >>> result.topic_model.n_topics
    2
    """

    def __init__(self, config: Optional[ToPMineConfig] = None) -> None:
        self.config = config or ToPMineConfig()

    # -- pipeline stages -----------------------------------------------------------
    def preprocess(self, texts: Sequence[str], name: str = "corpus") -> Corpus:
        """Preprocess raw ``texts`` into a corpus (stage 0).

        Parameters
        ----------
        texts:
            Raw document strings.
        name:
            Dataset name carried on the corpus (shows up in benchmark and
            bundle metadata).

        Returns
        -------
        Corpus
            Tokenised, chunked, stop-word-filtered, stemmed documents over
            a fresh vocabulary.
        """
        preprocessor = Preprocessor(self.config.preprocess)
        return preprocessor.build_corpus(texts, name=name)

    def mine_phrases(self, corpus: Corpus) -> FrequentPhraseMiningResult:
        """Run frequent phrase mining (Algorithm 1).

        Parameters
        ----------
        corpus:
            The (preprocessed) corpus to mine.

        Returns
        -------
        FrequentPhraseMiningResult
            Counts of every contiguous phrase meeting the minimum support.
        """
        miner = FrequentPhraseMiner(self.config.mining_config(corpus))
        return miner.mine(corpus)

    def segment(self, corpus: Corpus,
                mining_result: FrequentPhraseMiningResult) -> SegmentedCorpus:
        """Segment the corpus into a bag of phrases (Algorithm 2).

        Parameters
        ----------
        corpus:
            The corpus to partition.
        mining_result:
            Aggregate phrase counts driving the significance score.

        Returns
        -------
        SegmentedCorpus
            One phrase partition per document.
        """
        segmenter = CorpusSegmenter(mining_result, self.config.construction_config())
        return segmenter.segment(corpus)

    def model_topics(self, segmented_corpus: SegmentedCorpus) -> PhraseLDAState:
        """Fit PhraseLDA over the segmented corpus (Section 5).

        Parameters
        ----------
        segmented_corpus:
            The bag-of-phrases representation from :meth:`segment`.

        Returns
        -------
        PhraseLDAState
            Final count matrices, hyper-parameters, and clique assignments.
        """
        model = PhraseLDA(self.config.phrase_lda_config())
        return model.fit(segmented_corpus)

    # -- end-to-end ------------------------------------------------------------------
    def fit(self, documents: Union[Corpus, Sequence[str]],
            name: str = "corpus") -> ToPMineResult:
        """Run the full pipeline on raw texts or a preprocessed corpus.

        Parameters
        ----------
        documents:
            Either raw document strings (preprocessed first) or an existing
            :class:`~repro.text.corpus.Corpus`.
        name:
            Dataset name used when preprocessing raw texts.

        Returns
        -------
        ToPMineResult
            Corpus, mining result, segmentation, fitted topic model,
            visualisation, and the Figure-8 stage timings.
        """
        watch = Stopwatch()
        if isinstance(documents, Corpus):
            corpus = documents
        else:
            with watch.measure("preprocessing"):
                corpus = self.preprocess(documents, name=name)

        with watch.measure("phrase_mining"):
            mining_result = self.mine_phrases(corpus)
            segmented_corpus = self.segment(corpus, mining_result)

        with watch.measure("topic_modeling"):
            topic_model = self.model_topics(segmented_corpus)

        visualizer = TopicVisualizer(segmented_corpus, topic_model)
        visualization = visualizer.build()
        return ToPMineResult(corpus=corpus,
                             mining_result=mining_result,
                             segmented_corpus=segmented_corpus,
                             topic_model=topic_model,
                             visualization=visualization,
                             timings=watch.as_dict())
