"""The paper's primary contribution: the ToPMine framework.

The pipeline (paper Section 3) has two stages:

1. **Phrase mining and document segmentation**

   * :mod:`repro.core.frequent_phrases` — frequent contiguous phrase mining
     (paper Algorithm 1) with position-based Apriori pruning and
     data-antimonotonicity.
   * :mod:`repro.core.significance` — the collocation significance score
     (paper Eq. 1) used to rank candidate merges.
   * :mod:`repro.core.phrase_construction` — bottom-up agglomerative phrase
     construction (paper Algorithm 2).
   * :mod:`repro.core.segmentation` — corpus-level segmentation producing the
     'bag-of-phrases' representation.

2. **Phrase-constrained topic modeling**

   * :mod:`repro.core.phrase_lda` — PhraseLDA collapsed Gibbs sampling
     (paper Section 5, Eq. 7).
   * :mod:`repro.core.visualization` — topical-frequency phrase ranking
     (paper Eq. 8) and topic visualisation tables.

:mod:`repro.core.topmine` ties both stages into the public
:class:`~repro.core.topmine.ToPMine` API.
"""

from repro.core.frequent_phrases import (
    FrequentPhraseMiner,
    FrequentPhraseMiningResult,
    PhraseMiningConfig,
)
from repro.core.phrase_construction import (
    MergeTraceEntry,
    PhraseConstructionConfig,
    PhraseConstructor,
)
from repro.core.phrase_lda import PhraseLDA, PhraseLDAConfig, ReferencePhraseLDA
from repro.core.segmentation import CorpusSegmenter, SegmentedCorpus, SegmentedDocument
from repro.core.significance import SignificanceScorer
from repro.core.topmine import ToPMine, ToPMineConfig, ToPMineResult
from repro.core.visualization import TopicVisualizer, TopicVisualization

__all__ = [
    "FrequentPhraseMiner",
    "FrequentPhraseMiningResult",
    "PhraseMiningConfig",
    "MergeTraceEntry",
    "PhraseConstructionConfig",
    "PhraseConstructor",
    "PhraseLDA",
    "PhraseLDAConfig",
    "ReferencePhraseLDA",
    "CorpusSegmenter",
    "SegmentedCorpus",
    "SegmentedDocument",
    "SignificanceScorer",
    "ToPMine",
    "ToPMineConfig",
    "ToPMineResult",
    "TopicVisualizer",
    "TopicVisualization",
]
