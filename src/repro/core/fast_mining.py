"""Vectorized frequent phrase mining (the ``"numpy"`` mining engine).

This module re-implements paper Algorithm 1 over the flat-buffer corpus
encoding (:class:`~repro.text.flat.FlatChunks`).  The reference engine in
:mod:`repro.core.frequent_phrases` walks every chunk position with Python
loops and counts candidates by hashing token tuples into a
:class:`~repro.utils.counter.HashCounter`; here each *level* of the
increasing-size sliding window is a handful of NumPy array passes:

* every position carries the dense id of the frequent ``(n-1)``-gram
  starting there (or ``-1``), so the Apriori prefix/suffix checks are
  boolean gathers instead of tuple slicing;
* a candidate ``n``-gram is identified by the integer key
  ``prefix_gram_id * V + last_token`` — two frequent ``n``-grams share a key
  iff they are the same token string — so per-level counting is one
  ``np.unique(keys, return_counts=True)`` sort-aggregate, replacing the
  ``HashCounter`` increment loop;
* the paper's position pruning (drop the largest surviving index per chunk,
  data antimonotonicity) becomes segment-boundary masking over the sorted
  active-position array.

The result is **bit-identical** to the reference engine: the same phrases,
the same counts, the same ``iterations`` value — asserted by
``tests/test_mining_equivalence.py``.  The reference loop remains the
executable specification; this engine is the fast path ``"auto"`` selects.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.text.flat import FlatChunks
from repro.utils.counter import HashCounter


def mine_flat_chunks(flat: FlatChunks, min_support: int,
                     max_length: Optional[int] = None,
                     ) -> Tuple[HashCounter, int]:
    """Run vectorized Algorithm 1 over a flat chunk buffer.

    Parameters
    ----------
    flat:
        Flat-buffer encoding of the corpus chunks (empty chunks already
        dropped).
    min_support:
        Minimum occurrences ε a phrase needs to be kept.
    max_length:
        Optional hard cap on phrase length.

    Returns
    -------
    (counter, iterations)
        ``counter`` maps every frequent phrase (length ≥ 1) to its count —
        identical to the reference miner's output — and ``iterations`` is
        the longest phrase length the sliding window examined.
    """
    tokens = flat.tokens.astype(np.int64, copy=False)
    n_pos = len(tokens)
    if n_pos == 0:
        # The reference loop reports iterations=1 for an empty corpus (the
        # length-1 pass ran, over nothing); match it exactly.
        return HashCounter(), 1

    counter = HashCounter()

    # -- length-1 pass (Algorithm 1, lines 1-3) ---------------------------------
    vocab_bound = int(tokens.max()) + 1
    unigram_counts = np.bincount(tokens, minlength=vocab_bound)
    frequent_words = np.flatnonzero(unigram_counts >= min_support)
    counter.set_many(((word,) for word in frequent_words.tolist()),
                     unigram_counts[frequent_words].tolist())

    # gram_id[p]: dense id of the frequent (n-1)-gram starting at p, or -1.
    # Level 1: the (frequent) unigram at p.
    word_to_id = np.full(vocab_bound, -1, dtype=np.int64)
    word_to_id[frequent_words] = np.arange(len(frequent_words))
    gram_id = word_to_id[tokens]

    chunk_end = flat.chunk_end_per_position()
    chunk_index = flat.chunk_index_per_position()
    positions = np.arange(n_pos, dtype=np.int64)

    # A_d,1 (line 2): every position of every multi-token chunk is active.
    # Single-token chunks are excluded exactly like the reference's
    # ``len(chunk) > 1`` live filter — their lone index would be dropped as
    # the largest surviving index anyway.
    active = np.flatnonzero(np.repeat(flat.chunk_lengths >= 2,
                                      flat.chunk_lengths))

    # -- increasing-size sliding window (Algorithm 1, lines 4-21) ---------------
    n = 2
    iterations = 1
    while active.size and (max_length is None or n <= max_length):
        iterations = n
        # Line 7: keep active indices whose (n-1)-gram is frequent.
        surviving = active[gram_id[active] >= 0]
        if surviving.size:
            # Line 8: drop each chunk's largest surviving index.  The
            # surviving array is position-sorted, so chunk segments are
            # contiguous and the per-chunk maximum is the segment's last
            # element.
            chunk_of = chunk_index[surviving]
            is_chunk_last = np.empty(surviving.size, dtype=bool)
            is_chunk_last[-1] = True
            np.not_equal(chunk_of[:-1], chunk_of[1:], out=is_chunk_last[:-1])
            surviving = surviving[~is_chunk_last]
            # Guard against candidates overrunning the chunk.
            surviving = surviving[surviving + n <= chunk_end[surviving]]

        if surviving.size:
            # Lines 12-15: count a length-n candidate at p only when the
            # suffix starting at p + 1 is also a frequent (n-1)-phrase.
            # (The reference also accepts suffixes that are active
            # survivors, but survivors are by construction positions whose
            # (n-1)-gram is frequent, so the counter check subsumes it.)
            countable = surviving[gram_id[surviving + 1] >= 0]
        else:
            countable = surviving

        # Aggregate this level's candidates by integer key: two candidates
        # share ``(prefix_gram_id, last_token)`` iff they are the same token
        # string (each frequent (n-1)-gram id names one string).
        keys = gram_id[countable] * vocab_bound + tokens[countable + n - 1]
        unique_keys, first_index, counts = np.unique(
            keys, return_index=True, return_counts=True)
        keep = counts >= min_support
        level_keys = unique_keys[keep]
        level_counts = counts[keep]
        # Reconstruct each frequent key's token string from any occurrence.
        counter.set_many(
            (tuple(tokens[pos:pos + n].tolist())
             for pos in countable[first_index[keep]].tolist()),
            level_counts.tolist())

        # Re-key every position for the next level: the n-gram at p is
        # frequent iff its (n-1)-prefix was frequent, it fits in the chunk,
        # and its key is one of this level's frequent keys.
        next_gram_id = np.full(n_pos, -1, dtype=np.int64)
        if level_keys.size:
            fits = np.flatnonzero((gram_id >= 0) & (positions + n <= chunk_end))
            fit_keys = gram_id[fits] * vocab_bound + tokens[fits + n - 1]
            slot = np.searchsorted(level_keys, fit_keys)
            slot = np.minimum(slot, len(level_keys) - 1)
            hit = level_keys[slot] == fit_keys
            next_gram_id[fits[hit]] = slot[hit]
        gram_id = next_gram_id

        # Data antimonotonicity (lines 9-10): chunks with no survivors are
        # gone from the active set and never revisited.
        active = surviving
        n += 1

    return counter, iterations
