"""Fold-in inference: apply a trained ToPMine model to *unseen* documents.

Training (:class:`~repro.core.topmine.ToPMine`) produces two frozen
artifacts: the significant-phrase table that drives segmentation and the
PhraseLDA count matrices.  This module applies both to new text without
retraining:

1. preprocess each unseen document with the *training* configuration and
   encode it against the frozen vocabulary (unknown words are dropped, as in
   held-out perplexity evaluation);
2. segment the encoded chunks with the frozen phrase table — Algorithm 2
   with the training corpus' significance statistics;
3. Gibbs fold-in (:class:`~repro.topicmodel.gibbs.FoldInSampler`): resample
   only the new documents' clique assignments against the frozen topic-word
   counts and read off each document's topic mixture ``θ̂``.

Three interchangeable engines run the fold-in sweep: ``"batch"`` (the
cross-document slot-vectorized sampler, what ``"auto"`` resolves to — the
fast path on multi-document inputs), ``"numpy"`` (the per-clique flat
buffer sampler), and ``"reference"``, a readable nested loop kept as the
executable specification.  ``"c"`` is rejected explicitly — the compiled
training kernel mutates global counts and therefore does not apply to
fold-in.  All engines consume the random stream identically, so a fixed
seed yields identical clique assignments regardless of engine.

For the serving layer, :meth:`TopicInferencer.infer_texts_grouped` folds
several independent *requests* (each with its own seed) in one batched
pass whose per-request results are bit-identical to running each request
alone — the contract the micro-batching scheduler in
:mod:`repro.serve.batching` relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.segmentation import CorpusSegmenter, SegmentedDocument
from repro.text.corpus import Corpus
from repro.text.preprocess import PreprocessConfig, Preprocessor
from repro.text.vocabulary import Vocabulary
from repro.topicmodel.gibbs import (
    BatchFoldInSampler,
    FlatPhraseCorpus,
    FoldInSampler,
    validate_fold_in_input,
)
from repro.topicmodel.lda import TopicModelState
from repro.utils.rng import SeedLike, new_rng
from repro.utils.timing import Stopwatch

Phrase = Tuple[int, ...]

INFERENCE_ENGINES = ("auto", "batch", "numpy", "reference")


def resolve_inference_engine(engine: str) -> str:
    """Map an inference engine request onto a concrete engine name.

    Parameters
    ----------
    engine:
        One of ``"auto"``, ``"batch"``, ``"numpy"``, ``"reference"``.
        ``"auto"`` resolves to ``"batch"``, the cross-document vectorized
        fold-in — bit-identical to the others under a fixed seed, fastest
        on multi-document inputs.  (The compiled training kernel updates
        the global count matrices in place, which fold-in must *not* do,
        so ``"c"`` never applies here.)

    Returns
    -------
    str
        ``"batch"``, ``"numpy"`` or ``"reference"``.

    Raises
    ------
    ValueError
        If ``engine`` is not a known inference engine — including ``"c"``,
        which is rejected explicitly (rather than silently substituted)
        because the training kernel does not apply to fold-in.
    """
    if engine == "c":
        raise ValueError(
            "engine 'c' is not available for fold-in inference (the "
            "compiled kernel mutates the trained counts); use 'auto' or "
            "'numpy'")
    if engine not in INFERENCE_ENGINES:
        raise ValueError(
            f"unknown inference engine {engine!r}; expected one of {INFERENCE_ENGINES}")
    if engine == "auto":
        return "batch"
    return engine


@dataclass
class InferenceConfig:
    """Configuration of fold-in inference.

    Parameters
    ----------
    n_iterations:
        Gibbs fold-in sweeps over the unseen documents' cliques.
    seed:
        Random seed (int or :class:`numpy.random.Generator`).
    engine:
        Sweep implementation: ``"auto"`` (→ the cross-document ``"batch"``
        sampler), ``"batch"``, ``"numpy"``, or ``"reference"``.
    """

    n_iterations: int = 50
    seed: SeedLike = None
    engine: str = "auto"


@dataclass
class DocumentInference:
    """Per-document fold-in output.

    Attributes
    ----------
    theta:
        Length-``K`` posterior topic-mixture estimate ``θ̂_d``.
    phrases:
        The document's frozen-table segmentation (tuples of word ids).
    clique_topics:
        Final topic assignment of each phrase instance (aligned with
        ``phrases``).
    n_unknown_tokens:
        Tokens of the raw document that were dropped because their stem is
        not in the trained vocabulary (or fell below the training run's
        rare-word threshold, ``PreprocessConfig.min_word_frequency``).
    """

    theta: np.ndarray
    phrases: List[Phrase] = field(default_factory=list)
    clique_topics: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    n_unknown_tokens: int = 0

    def top_topics(self, n: int = 3) -> List[Tuple[int, float]]:
        """Return the ``n`` highest-probability ``(topic, probability)`` pairs."""
        order = np.argsort(-self.theta)[:n]
        return [(int(k), float(self.theta[k])) for k in order]


@dataclass
class InferenceResult:
    """Fold-in output for a batch of unseen documents.

    Attributes
    ----------
    theta:
        ``D × K`` matrix of document-topic mixtures (row ``d`` is document
        ``d``'s ``θ̂``).
    documents:
        Per-document details (segmentation, clique topics, unknown-token
        counts), aligned with the input order.
    """

    theta: np.ndarray
    documents: List[DocumentInference] = field(default_factory=list)

    @property
    def n_documents(self) -> int:
        """Number of folded-in documents."""
        return len(self.documents)

    @property
    def n_topics(self) -> int:
        """Number of topics ``K``."""
        return int(self.theta.shape[1]) if self.theta.ndim == 2 else 0


class TopicInferencer:
    """Applies a frozen phrase table and PhraseLDA model to unseen text.

    Parameters
    ----------
    state:
        Trained topic-model counts (a
        :class:`~repro.topicmodel.lda.TopicModelState` or subclass); only
        ``topic_word_counts``, ``topic_counts``, ``alpha`` and ``beta`` are
        read, never written.
    segmenter:
        A :class:`~repro.core.segmentation.CorpusSegmenter` built from the
        *training* mining result, so unseen text is segmented with the
        frozen significance statistics.
    vocabulary:
        The frozen training vocabulary used to encode raw text.
    preprocess:
        Preprocessing options; must match training for stems to line up.

    Examples
    --------
    Built most conveniently from a saved model bundle::

        bundle = load_model("model.npz")
        inferencer = bundle.inferencer()
        result = inferencer.infer_texts(["support vector machine training"])
        result.theta.shape      # (1, K)
    """

    def __init__(self, state: TopicModelState, segmenter: CorpusSegmenter,
                 vocabulary: Optional[Vocabulary] = None,
                 preprocess: Optional[PreprocessConfig] = None) -> None:
        self.state = state
        self.segmenter = segmenter
        self.vocabulary = vocabulary
        self.preprocess = preprocess or PreprocessConfig()
        self._preprocessor = Preprocessor(self.preprocess)

    # -- public API ------------------------------------------------------------------
    def infer_texts(self, texts: Sequence[str],
                    config: Optional[InferenceConfig] = None) -> InferenceResult:
        """Fold in raw document strings and return their topic mixtures.

        Parameters
        ----------
        texts:
            Unseen raw documents.  Each is preprocessed with the training
            configuration and encoded against the frozen vocabulary;
            out-of-vocabulary stems — and, when training used
            ``min_word_frequency > 1``, stems below that threshold — are
            dropped (and counted per document in
            :attr:`DocumentInference.n_unknown_tokens`).
        config:
            Fold-in options (iterations, seed, engine).

        Returns
        -------
        InferenceResult
            Topic mixtures plus per-document segmentations.

        Raises
        ------
        RuntimeError
            If the inferencer was built without a vocabulary (raw text then
            cannot be encoded — use :meth:`infer_segmented` instead).
        """
        segmented, unknown_counts = self._segment_texts(texts)
        return self._infer_segmented_documents(segmented, config, unknown_counts)

    def infer_texts_grouped(self, groups: Sequence[Sequence[str]],
                            seeds: Sequence[SeedLike],
                            config: Optional[InferenceConfig] = None,
                            watch: Optional[Stopwatch] = None,
                            ) -> List[InferenceResult]:
        """Fold in several independent *requests* in one batched pass.

        The multi-request entry point behind the serving layer's
        micro-batching scheduler: every group is an independent request with
        its own seed, and the whole batch runs as a single slot-vectorized
        fold-in (:class:`~repro.topicmodel.gibbs.BatchFoldInSampler`) with
        one random stream per group.  Results are **bit-identical** to
        calling :meth:`infer_texts` once per group with that group's seed —
        batching is purely a throughput optimisation, never a semantic one.

        Parameters
        ----------
        groups:
            One sequence of raw documents per request.
        seeds:
            One seed (or generator) per request, aligned with ``groups``;
            overrides ``config.seed``.
        config:
            Shared fold-in options.  ``config.engine`` must resolve to
            ``"batch"`` (the only multi-stream engine); iterations apply to
            every group.
        watch:
            Optional :class:`~repro.utils.timing.Stopwatch` that receives
            the batch's ``"segmentation"`` and ``"fold_in"`` stage times —
            the serving layer's span instrumentation hook (timing is free
            when no watch is passed).

        Returns
        -------
        list of InferenceResult
            One result per request, aligned with ``groups``.
        """
        config = config or InferenceConfig()
        engine = resolve_inference_engine(config.engine)
        if engine != "batch":
            raise ValueError(
                f"grouped inference requires the 'batch' engine (got "
                f"{config.engine!r}); it is the only engine that consumes "
                f"one random stream per request")
        if len(seeds) != len(groups):
            raise ValueError(f"got {len(groups)} groups but {len(seeds)} seeds")
        watch = watch if watch is not None else Stopwatch()
        # All requests share one vectorized segmentation pass; the per-group
        # ranges then carve the batch back apart.
        with watch.measure("segmentation"):
            segmented, unknown_counts = self._segment_texts(
                [text for texts in groups for text in texts])
        ranges: List[Tuple[int, int]] = []
        start = 0
        for texts in groups:
            ranges.append((start, start + len(texts)))
            start += len(texts)

        with watch.measure("fold_in"):
            phrase_docs = [[tuple(p) for p in doc.phrases]
                           for doc in segmented]
            flat = FlatPhraseCorpus(phrase_docs)
            state = self.state
            sampler = BatchFoldInSampler(flat, state.topic_word_counts,
                                         state.topic_counts, state.alpha,
                                         state.beta, group_doc_ranges=ranges)
            rngs = [new_rng(seed) for seed in seeds]
            sampler.initialize(rngs)
            for _ in range(config.n_iterations):
                sampler.sweep(rngs)
            theta = sampler.theta()
            assigns = [np.ascontiguousarray(sampler.assign[g0:g1])
                       for g0, g1 in flat.doc_ranges]

        results: List[InferenceResult] = []
        for start, end in ranges:
            documents = [
                DocumentInference(theta=theta[d], phrases=phrase_docs[d],
                                  clique_topics=assigns[d],
                                  n_unknown_tokens=unknown_counts[d])
                for d in range(start, end)
            ]
            results.append(InferenceResult(
                theta=np.ascontiguousarray(theta[start:end]),
                documents=documents))
        return results

    def segment_texts(self, texts: Sequence[str],
                      ) -> Tuple[List[List[Phrase]], List[int]]:
        """Segment raw unseen documents with the frozen phrase table only.

        The segmentation half of :meth:`infer_texts` without the Gibbs
        fold-in — what the serving layer's ``/v1/segment`` endpoint exposes.

        Returns
        -------
        (phrases, unknown_counts)
            ``phrases[d]`` is document ``d``'s list of phrases (tuples of
            word ids over the frozen vocabulary) and ``unknown_counts[d]``
            its number of dropped out-of-vocabulary tokens.
        """
        segmented, unknown_counts = self._segment_texts(texts)
        return ([[tuple(p) for p in doc.phrases] for doc in segmented],
                unknown_counts)

    def _segment_texts(self, texts: Sequence[str],
                       ) -> Tuple[List[SegmentedDocument], List[int]]:
        """Encode raw texts against the frozen vocabulary and segment them."""
        if self.vocabulary is None:
            raise RuntimeError(
                "cannot infer from raw text without a vocabulary; "
                "pass encoded documents to infer_segmented() instead")
        min_frequency = self.preprocess.min_word_frequency
        encoded: List[List[List[int]]] = []
        unknown_counts: List[int] = []
        for text in texts:
            chunks: List[List[int]] = []
            unknown = 0
            for chunk in self._preprocessor.process_text(text):
                stems = [stem for stem, _surface in chunk]
                ids = self.vocabulary.encode(stems, grow=False)
                if min_frequency > 1:
                    # Training dropped rare words from the documents (their
                    # ids stay in the vocabulary); mirror that here so
                    # unseen text is encoded exactly like training text.
                    ids = [w for w in ids
                           if self.vocabulary.frequency_of(w) >= min_frequency]
                unknown += len(stems) - len(ids)
                if ids:
                    chunks.append(ids)
            encoded.append(chunks)
            unknown_counts.append(unknown)
        # One batched pass: every document shares the segmenter's vectorized
        # seed scoring (and sharding, when configured).
        segmented = self.segmenter.segment_documents(encoded)
        return segmented, unknown_counts

    def infer_corpus(self, corpus: Corpus,
                     config: Optional[InferenceConfig] = None) -> InferenceResult:
        """Fold in an already-encoded corpus (tokens over the frozen vocabulary)."""
        segmented = self.segmenter.segment_documents(
            [doc.chunks for doc in corpus],
            doc_ids=[doc.doc_id for doc in corpus])
        return self._infer_segmented_documents(segmented, config)

    def infer_segmented(self, phrase_docs: Sequence[Sequence[Sequence[int]]],
                        config: Optional[InferenceConfig] = None) -> InferenceResult:
        """Fold in pre-segmented documents (each a sequence of phrases)."""
        segmented = [
            SegmentedDocument(phrases=[tuple(int(w) for w in p) for p in doc],
                              doc_id=d)
            for d, doc in enumerate(phrase_docs)
        ]
        return self._infer_segmented_documents(segmented, config)

    # -- engines ---------------------------------------------------------------------
    def _infer_segmented_documents(self, segmented: List[SegmentedDocument],
                                   config: Optional[InferenceConfig],
                                   unknown_counts: Optional[List[int]] = None,
                                   ) -> InferenceResult:
        """Run the configured fold-in engine over segmented documents."""
        config = config or InferenceConfig()
        engine = resolve_inference_engine(config.engine)
        phrase_docs = [[tuple(p) for p in doc.phrases] for doc in segmented]
        flat = FlatPhraseCorpus(phrase_docs)
        if engine == "reference":
            # The numpy/batch paths validate inside their samplers; validate
            # the reference path here with the same shared check.
            validate_fold_in_input(flat, self.state.alpha, self.state.beta,
                                   self.state.vocabulary_size)
            theta, assigns = self._fold_in_reference(phrase_docs, config)
        elif engine == "batch":
            theta, assigns = self._fold_in_batch(flat, config)
        else:
            theta, assigns = self._fold_in_numpy(flat, config)
        if unknown_counts is None:
            unknown_counts = [0] * len(segmented)
        documents = [
            DocumentInference(theta=theta[d], phrases=phrase_docs[d],
                              clique_topics=assigns[d],
                              n_unknown_tokens=unknown_counts[d])
            for d in range(len(segmented))
        ]
        return InferenceResult(theta=theta, documents=documents)

    def _fold_in_numpy(self, flat: FlatPhraseCorpus,
                       config: InferenceConfig,
                       ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Vectorized fold-in over the flat buffers (the fast path)."""
        state = self.state
        rng = new_rng(config.seed)
        sampler = FoldInSampler(flat, state.topic_word_counts,
                                state.topic_counts, state.alpha, state.beta)
        sampler.initialize(rng)
        for _ in range(config.n_iterations):
            sampler.sweep(rng)
        assigns = [np.ascontiguousarray(sampler.assign[g0:g1])
                   for g0, g1 in flat.doc_ranges]
        return sampler.theta(), assigns

    def _fold_in_batch(self, flat: FlatPhraseCorpus,
                       config: InferenceConfig,
                       ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Slot-vectorized fold-in across documents (``"auto"``'s choice).

        A single group covering every document, driven by one generator —
        the same random stream as :meth:`_fold_in_numpy`, so the engines
        stay bit-identical while the batch sampler removes the per-clique
        Python loop on multi-document inputs.
        """
        state = self.state
        rng = new_rng(config.seed)
        sampler = BatchFoldInSampler(flat, state.topic_word_counts,
                                     state.topic_counts, state.alpha,
                                     state.beta)
        sampler.initialize([rng])
        for _ in range(config.n_iterations):
            sampler.sweep([rng])
        assigns = [np.ascontiguousarray(sampler.assign[g0:g1])
                   for g0, g1 in flat.doc_ranges]
        return sampler.theta(), assigns

    def _fold_in_reference(self, phrase_docs: List[List[Phrase]],
                           config: InferenceConfig,
                           ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Readable nested-loop fold-in, the executable specification.

        Consumes the random stream exactly like :meth:`_fold_in_numpy` (one
        ``integers`` draw per document, one uniform per non-empty clique per
        sweep), so both engines agree under a fixed seed.
        """
        state = self.state
        rng = new_rng(config.seed)
        n_topics = state.n_topics
        alpha = np.asarray(state.alpha, dtype=np.float64)
        beta = float(state.beta)
        beta_sum = beta * state.vocabulary_size
        wfac = state.topic_word_counts + beta
        tfac = state.topic_counts + beta_sum

        assigns: List[np.ndarray] = []
        locals_: List[np.ndarray] = []
        for phrases in phrase_docs:
            doc_assign = rng.integers(0, n_topics, size=len(phrases))
            local = np.zeros(n_topics, dtype=np.int64)
            for phrase, k in zip(phrases, doc_assign):
                local[k] += len(phrase)
            assigns.append(doc_assign)
            locals_.append(local)

        for _ in range(config.n_iterations):
            for phrases, doc_assign, local in zip(phrase_docs, assigns, locals_):
                for g, phrase in enumerate(phrases):
                    size = len(phrase)
                    if size == 0:
                        continue
                    k_old = doc_assign[g]
                    local[k_old] -= size
                    weights = np.ones(n_topics, dtype=float)
                    for j, w in enumerate(phrase):
                        weights *= (alpha + local + j)
                        weights *= wfac[w]
                        weights /= (tfac + j)
                    cumulative = np.cumsum(weights)
                    u = rng.random()
                    total = cumulative[-1]
                    if total > 0.0:
                        k_new = int(np.searchsorted(cumulative, u * total))
                    else:
                        # Underflowed posterior (see FoldInSampler.sweep):
                        # uniform fallback from the same consumed uniform.
                        k_new = min(int(u * n_topics), n_topics - 1)
                    doc_assign[g] = k_new
                    local[k_new] += size

        theta = np.empty((len(phrase_docs), n_topics))
        for d, local in enumerate(locals_):
            row = local + alpha
            theta[d] = row / row.sum()
        return theta, [np.asarray(a, dtype=np.int64) for a in assigns]
