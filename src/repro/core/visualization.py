"""Topic visualisation: topical frequency ranking and table rendering.

Paper Section 5.4 visualises a topic by listing (a) the most probable
unigrams under the inferred ``φ_k`` and (b) the most frequent phrases by
*topical frequency* (Eq. 8)::

    TF(phr, k) = Σ_{d,g} I(PI_{d,g} = phr, C_{d,g} = k)

i.e. the number of phrase instances equal to ``phr`` whose clique was
assigned to topic ``k`` in the final Gibbs iteration.  Unstemming is applied
as a post-processing step so phrases read naturally (Section 7.1/7.4).

The rendering mirrors the layout of Tables 1, 4, 5 and 6: one column per
topic, unigrams on top, phrases below.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.phrase_lda import PhraseLDAState
from repro.core.segmentation import SegmentedCorpus
from repro.text.vocabulary import Vocabulary
from repro.topicmodel.lda import TopicModelState
from repro.utils.tables import render_table, render_topic_columns

Phrase = Tuple[int, ...]


@dataclass
class TopicVisualization:
    """Ranked unigrams and phrases for every topic.

    Attributes
    ----------
    top_unigrams:
        ``top_unigrams[k]`` is the ranked list of unigram strings for topic k.
    top_phrases:
        ``top_phrases[k]`` is the ranked list of phrase strings (multi-word,
        by topical frequency) for topic k.
    phrase_frequencies:
        ``phrase_frequencies[k]`` maps phrase string → topical frequency.
    """

    top_unigrams: List[List[str]] = field(default_factory=list)
    top_phrases: List[List[str]] = field(default_factory=list)
    phrase_frequencies: List[Dict[str, int]] = field(default_factory=list)

    @property
    def n_topics(self) -> int:
        """Number of topics."""
        return len(self.top_unigrams)

    def topic_summary(self, topic: int, n: int = 10) -> Dict[str, List[str]]:
        """Return the top-``n`` unigrams and phrases of one topic."""
        return {
            "unigrams": self.top_unigrams[topic][:n],
            "phrases": self.top_phrases[topic][:n],
        }

    def render(self, n_rows: int = 10, title: Optional[str] = None) -> str:
        """Render the visualisation as a paper-style table (Tables 1, 4-6)."""
        blocks: List[str] = []
        unigram_table = render_topic_columns(
            [lst[:n_rows] for lst in self.top_unigrams],
            title=(title + " — 1-grams") if title else "1-grams")
        phrase_table = render_topic_columns(
            [lst[:n_rows] for lst in self.top_phrases],
            title=(title + " — n-grams") if title else "n-grams")
        blocks.append(unigram_table)
        blocks.append("")
        blocks.append(phrase_table)
        return "\n".join(blocks)


class TopicVisualizer:
    """Builds :class:`TopicVisualization` objects from a fitted PhraseLDA state."""

    def __init__(self, segmented_corpus: SegmentedCorpus, state: PhraseLDAState,
                 unstem: bool = True) -> None:
        self.segmented_corpus = segmented_corpus
        self.state = state
        self.unstem = unstem

    # -- topical frequency (Eq. 8) -----------------------------------------------------
    def topical_frequencies(self, min_phrase_length: int = 2) -> List[Dict[Phrase, int]]:
        """Return per-topic counts of phrase instances assigned to the topic.

        Only phrases of at least ``min_phrase_length`` words are counted by
        default, matching the paper's n-gram lists; pass 1 to include
        single-word phrases.
        """
        n_topics = self.state.n_topics
        frequencies: List[Dict[Phrase, int]] = [{} for _ in range(n_topics)]
        for doc, cliques in zip(self.segmented_corpus, self.state.clique_assignments):
            for phrase, topic in zip(doc.phrases, cliques):
                if len(phrase) < min_phrase_length:
                    continue
                bucket = frequencies[int(topic)]
                bucket[phrase] = bucket.get(phrase, 0) + 1
        return frequencies

    def top_phrases(self, n: int = 10, min_phrase_length: int = 2) -> List[List[Phrase]]:
        """Return, per topic, the ``n`` phrases with highest topical frequency."""
        ranked: List[List[Phrase]] = []
        for topic_counts in self.topical_frequencies(min_phrase_length):
            order = sorted(topic_counts.items(), key=lambda item: (-item[1], item[0]))
            ranked.append([phrase for phrase, _count in order[:n]])
        return ranked

    def top_unigrams(self, n: int = 10) -> List[List[int]]:
        """Return, per topic, the ``n`` most probable word ids under ``φ̂_k``."""
        return top_unigram_ids(self.state, n)

    # -- rendering ----------------------------------------------------------------------
    def build(self, n_unigrams: int = 10, n_phrases: int = 10,
              min_phrase_length: int = 2) -> TopicVisualization:
        """Assemble the full visualisation with decoded, unstemmed strings."""
        return build_visualization(
            self.state, self.topical_frequencies(min_phrase_length),
            self.segmented_corpus.vocabulary,
            n_unigrams=n_unigrams, n_phrases=n_phrases,
            min_phrase_length=min_phrase_length, unstem=self.unstem)


def top_unigram_ids(state: TopicModelState, n: int) -> List[List[int]]:
    """Per topic, the ids of the ``n`` most probable words under ``φ̂_k``.

    The single ranking used by both the corpus-backed
    :class:`TopicVisualizer` and the bundle-backed
    :func:`build_visualization` path, so the two can never diverge.
    """
    phi = state.phi()
    return [list(np.argsort(-phi[k])[:n]) for k in range(state.n_topics)]


def build_visualization(state: TopicModelState,
                        topical_frequencies: Sequence[Dict[Phrase, int]],
                        vocabulary: Optional[Vocabulary],
                        n_unigrams: int = 10, n_phrases: int = 10,
                        min_phrase_length: int = 2,
                        unstem: bool = True) -> TopicVisualization:
    """Build a :class:`TopicVisualization` from state plus topical frequencies.

    This is the corpus-free assembly path: given a fitted model's counts and
    the (precomputed) Eq. 8 topical-frequency tables, it decodes and ranks
    without touching the segmented corpus — which is what lets a saved model
    bundle reproduce the training run's topic tables exactly after reload.

    Parameters
    ----------
    state:
        Fitted topic-model counts (``φ̂`` is derived from
        ``topic_word_counts``).
    topical_frequencies:
        Per-topic mapping of phrase (tuple of word ids) to topical frequency,
        as produced by :meth:`TopicVisualizer.topical_frequencies`.
    vocabulary:
        Vocabulary for decoding word ids; ``None`` renders raw ids.
    n_unigrams, n_phrases:
        List lengths per topic.
    min_phrase_length:
        Minimum phrase length (in words) for the n-gram lists.
    unstem:
        Decode through the most frequent surface form (Section 7.1).

    Returns
    -------
    TopicVisualization
        Ranked, decoded unigram and phrase lists per topic.
    """
    visualization = TopicVisualization()

    def decode_word(word_id: int) -> str:
        if vocabulary is None:
            return str(word_id)
        if unstem:
            return vocabulary.unstem_id(word_id)
        return vocabulary.word_of(word_id)

    def decode_phrase(phrase: Phrase) -> str:
        if vocabulary is None:
            return " ".join(str(w) for w in phrase)
        if unstem:
            return vocabulary.unstem_phrase(phrase)
        return " ".join(vocabulary.word_of(w) for w in phrase)

    unigram_ids = top_unigram_ids(state, n_unigrams)
    for k in range(state.n_topics):
        visualization.top_unigrams.append([decode_word(w) for w in unigram_ids[k]])
        kept = {phrase: count for phrase, count in topical_frequencies[k].items()
                if len(phrase) >= min_phrase_length}
        order = sorted(kept.items(), key=lambda item: (-item[1], item[0]))
        visualization.top_phrases.append(
            [decode_phrase(phrase) for phrase, _ in order[:n_phrases]])
        visualization.phrase_frequencies.append(
            {decode_phrase(phrase): count for phrase, count in order})
    return visualization


def render_runtime_table(rows: Sequence[Tuple[str, Dict[str, float]]],
                         dataset_names: Sequence[str],
                         title: str = "Runtime (seconds)") -> str:
    """Render a method × dataset runtime table in the layout of paper Table 3.

    Parameters
    ----------
    rows:
        Sequence of ``(method_name, {dataset_name: seconds})``.
    dataset_names:
        Column order.
    """
    headers = ["Method"] + list(dataset_names)
    table_rows = []
    for method, timings in rows:
        table_rows.append([method] + [
            f"{timings[name]:.2f}" if name in timings else "NA"
            for name in dataset_names
        ])
    return render_table(headers, table_rows, title=title)
