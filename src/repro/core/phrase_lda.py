"""PhraseLDA: phrase-constrained topic modeling (paper Section 5).

PhraseLDA keeps LDA's generative story but adds, for every mined phrase, a
clique potential over the latent topic assignments of the phrase's tokens
(paper Eq. 4).  With the hard potential of Eq. 6 — one when all tokens in the
clique share a topic, zero otherwise — each clique has only ``K`` reachable
states and collapsed Gibbs sampling can sample a whole clique at once from
the posterior of Eq. 7::

    p(C_{d,g} = k | W, Z_{¬C}) ∝ Π_{j=1}^{W_{d,g}}
        (α_k + N_{d,k}^{¬C} + j − 1) ·
        (β_{w_j} + N_{w_j,k}^{¬C}) / (Σ_x β_x + N_k^{¬C} + j − 1)

When every phrase has a single token this reduces to the standard LDA
conditional, so LDA is run here as the special case of an all-singleton
segmentation (exactly as the paper does for its timing experiments).

Two interchangeable sampling engines implement the sweep (plus a readable
reference):

* ``engine="c"`` — the compiled flat-buffer kernel
  (:mod:`repro.topicmodel.ckernel`), bit-exact with the reference;
* ``engine="numpy"`` — the vectorized flat-buffer sampler
  (:class:`repro.topicmodel.gibbs.VectorizedGibbsSampler`);
* ``engine="reference"`` — the original nested-loop sampler, kept as the
  executable specification (also available as :class:`ReferencePhraseLDA`).

All engines consume the random stream identically, so a fixed seed yields
identical ``clique_assignments`` regardless of engine — the equivalence the
test suite and ``python -m repro.bench`` both rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.segmentation import SegmentedCorpus, SegmentedDocument  # noqa: F401  (re-export)
from repro.topicmodel.gibbs import (
    FlatPhraseCorpus,
    make_sampler,
    random_initialization,
    resolve_engine,
    run_fit_loop,
)
from repro.topicmodel.hyperopt import optimize_asymmetric_alpha, optimize_symmetric_beta
from repro.topicmodel.lda import TopicModelState, _sample_index
from repro.utils.rng import SeedLike, new_rng

Phrase = Tuple[int, ...]
PhraseDocuments = Sequence[Sequence[Sequence[int]]]


@dataclass
class PhraseLDAConfig:
    """Configuration for PhraseLDA collapsed Gibbs sampling.

    Parameters
    ----------
    n_topics:
        Number of topics ``K``.
    alpha:
        Symmetric document-topic prior; defaults to ``50 / K``.
    beta:
        Symmetric topic-word prior.
    n_iterations:
        Number of Gibbs sweeps over all cliques.
    optimize_hyperparameters:
        Apply Minka's fixed-point updates (paper Section 5.3) every
        ``hyper_optimize_interval`` iterations after ``burn_in``.
    hyper_optimize_interval, burn_in:
        Scheduling of the hyper-parameter updates.
    seed:
        Random seed.
    engine:
        Sweep implementation: ``"auto"`` (compiled kernel when available,
        NumPy otherwise), ``"c"``, ``"numpy"``, or ``"reference"``.
    """

    n_topics: int = 10
    alpha: Optional[float] = None
    beta: float = 0.01
    n_iterations: int = 100
    optimize_hyperparameters: bool = False
    hyper_optimize_interval: int = 25
    burn_in: int = 10
    seed: SeedLike = None
    engine: str = "auto"

    def resolved_alpha(self) -> float:
        """Return the symmetric α value, defaulting to ``50 / K``."""
        if self.alpha is not None:
            return float(self.alpha)
        return 50.0 / self.n_topics


@dataclass
class PhraseLDAState(TopicModelState):
    """Topic-model state plus per-clique (phrase-instance) topic assignments.

    ``clique_assignments[d][g]`` is the topic shared by every token of the
    ``g``-th phrase of document ``d`` — the quantity the topical-frequency
    ranking (Eq. 8) is computed from.
    """

    clique_assignments: List[np.ndarray] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.clique_assignments is None:
            self.clique_assignments = []


IterationCallback = Callable[[int, PhraseLDAState], None]


class PhraseLDA:
    """Collapsed Gibbs sampler for PhraseLDA over a segmented corpus.

    Example
    -------
    >>> docs = [[(0, 1), (2,)], [(2, 3), (1,)]]
    >>> model = PhraseLDA(PhraseLDAConfig(n_topics=2, n_iterations=10, seed=0))
    >>> state = model.fit(docs, vocabulary_size=4)
    >>> state.phi().shape
    (2, 4)
    """

    def __init__(self, config: Optional[PhraseLDAConfig] = None) -> None:
        self.config = config or PhraseLDAConfig()
        self.state: Optional[PhraseLDAState] = None

    # -- public API ------------------------------------------------------------------
    def fit(self, documents: Union[SegmentedCorpus, PhraseDocuments],
            vocabulary_size: Optional[int] = None,
            callback: Optional[IterationCallback] = None) -> PhraseLDAState:
        """Run the Gibbs sampler and return the final :class:`PhraseLDAState`.

        Parameters
        ----------
        documents:
            A :class:`~repro.core.segmentation.SegmentedCorpus` or a sequence
            of documents, each a sequence of phrases (sequences of word ids).
        vocabulary_size:
            Required when passing raw phrase documents; inferred from a
            segmented corpus's vocabulary.
        callback:
            Invoked as ``callback(iteration, state)`` after every sweep.

        Returns
        -------
        PhraseLDAState
            Final count matrices, hyper-parameters, per-token and per-clique
            topic assignments (also stored on :attr:`state`).
        """
        phrase_docs, vocabulary_size = _extract_phrase_documents(documents, vocabulary_size)
        engine = resolve_engine(self.config.engine)
        if engine == "reference":
            state = self._fit_reference(phrase_docs, vocabulary_size, callback)
        else:
            state = self._fit_flat(engine, phrase_docs, vocabulary_size, callback)
        self._refresh_token_assignments(phrase_docs, state)
        self.state = state
        return state

    # -- flat-buffer engines ------------------------------------------------------
    def _fit_flat(self, engine: str, phrase_docs: List[List[Phrase]],
                  vocabulary_size: int,
                  callback: Optional[IterationCallback]) -> PhraseLDAState:
        """Fit via a flat-buffer sampler (``engine`` is ``"c"`` or ``"numpy"``)."""
        config = self.config
        rng = new_rng(config.seed)
        n_topics = config.n_topics
        alpha = np.full(n_topics, config.resolved_alpha(), dtype=float)
        beta = float(config.beta)

        flat = FlatPhraseCorpus(phrase_docs)
        topic_word, doc_topic, topic_totals, assign = random_initialization(
            flat, n_topics, vocabulary_size, rng)
        # Per-document assignment arrays are views into the flat buffer, so
        # the state is always current without copying.
        clique_assignments = [assign[g0:g1] for g0, g1 in flat.doc_ranges]
        # Initial per-token expansion, so callbacks observe the same (stale,
        # init-time) token assignments the reference fit exposes; refreshed
        # from the final clique topics after the loop by fit().
        token_topics = np.repeat(assign, flat.clique_sizes())
        token_assignments = [
            np.ascontiguousarray(token_topics[flat.offsets[g0]:flat.offsets[g1]])
            for g0, g1 in flat.doc_ranges]
        state = PhraseLDAState(topic_word_counts=topic_word,
                               doc_topic_counts=doc_topic,
                               topic_counts=topic_totals,
                               alpha=alpha, beta=beta,
                               assignments=token_assignments,
                               clique_assignments=clique_assignments)
        sampler = make_sampler(engine, flat, topic_word, doc_topic,
                               topic_totals, assign, alpha, beta)
        run_fit_loop(sampler, state, config, rng, callback)
        return state

    # -- reference implementation --------------------------------------------------
    def _fit_reference(self, phrase_docs: List[List[Phrase]], vocabulary_size: int,
                       callback: Optional[IterationCallback]) -> PhraseLDAState:
        """The original readable nested-loop fit, kept as the executable
        specification the fast engines are tested against."""
        config = self.config
        rng = new_rng(config.seed)
        n_topics = config.n_topics

        alpha = np.full(n_topics, config.resolved_alpha(), dtype=float)
        beta = float(config.beta)

        n_docs = len(phrase_docs)
        topic_word = np.zeros((vocabulary_size, n_topics), dtype=np.int64)
        doc_topic = np.zeros((n_docs, n_topics), dtype=np.int64)
        topic_totals = np.zeros(n_topics, dtype=np.int64)
        clique_assignments: List[np.ndarray] = []
        token_assignments: List[np.ndarray] = []

        # -- random initialisation: one topic per clique -----------------------------
        for d, phrases in enumerate(phrase_docs):
            doc_cliques = rng.integers(0, n_topics, size=len(phrases))
            clique_assignments.append(doc_cliques)
            flat_assign: List[int] = []
            for phrase, k in zip(phrases, doc_cliques):
                for w in phrase:
                    topic_word[w, k] += 1
                    doc_topic[d, k] += 1
                    topic_totals[k] += 1
                    flat_assign.append(int(k))
            token_assignments.append(np.asarray(flat_assign, dtype=np.int64))

        state = PhraseLDAState(topic_word_counts=topic_word,
                               doc_topic_counts=doc_topic,
                               topic_counts=topic_totals,
                               alpha=alpha, beta=beta,
                               assignments=token_assignments,
                               clique_assignments=clique_assignments)

        for iteration in range(config.n_iterations):
            self._sweep(phrase_docs, state, rng)
            if (config.optimize_hyperparameters
                    and iteration >= config.burn_in
                    and (iteration + 1) % config.hyper_optimize_interval == 0):
                state.alpha = optimize_asymmetric_alpha(state.doc_topic_counts, state.alpha)
                state.beta = optimize_symmetric_beta(state.topic_word_counts, state.beta)
            if callback is not None:
                callback(iteration, state)
        return state

    # -- internals ---------------------------------------------------------------------
    def _sweep(self, phrase_docs: List[List[Phrase]], state: PhraseLDAState,
               rng: np.random.Generator) -> None:
        """One reference Gibbs sweep: resample every clique's topic (Eq. 7)."""
        topic_word = state.topic_word_counts
        doc_topic = state.doc_topic_counts
        topic_totals = state.topic_counts
        alpha = state.alpha
        beta = state.beta
        beta_sum = beta * state.vocabulary_size

        for d, phrases in enumerate(phrase_docs):
            doc_counts = doc_topic[d]
            doc_cliques = state.clique_assignments[d]
            for g, phrase in enumerate(phrases):
                size = len(phrase)
                if size == 0:
                    continue
                k_old = doc_cliques[g]
                # Remove the whole clique from the counts (Z without C_{d,g}).
                for w in phrase:
                    topic_word[w, k_old] -= 1
                doc_counts[k_old] -= size
                topic_totals[k_old] -= size

                # Eq. 7: product over the clique's tokens.
                weights = np.ones(state.n_topics, dtype=float)
                for j, w in enumerate(phrase):
                    weights *= (alpha + doc_counts + j)
                    weights *= (beta + topic_word[w])
                    weights /= (beta_sum + topic_totals + j)

                k_new = _sample_index(rng, weights)
                doc_cliques[g] = k_new
                for w in phrase:
                    topic_word[w, k_new] += 1
                doc_counts[k_new] += size
                topic_totals[k_new] += size

    def _refresh_token_assignments(self, phrase_docs: List[List[Phrase]],
                                   state: PhraseLDAState) -> None:
        """Expand clique topics into per-token assignments (for evaluation)."""
        token_assignments: List[np.ndarray] = []
        for phrases, cliques in zip(phrase_docs, state.clique_assignments):
            flat: List[int] = []
            for phrase, k in zip(phrases, cliques):
                flat.extend([int(k)] * len(phrase))
            token_assignments.append(np.asarray(flat, dtype=np.int64))
        state.assignments = token_assignments


class ReferencePhraseLDA(PhraseLDA):
    """PhraseLDA pinned to the readable nested-loop reference sampler."""

    def __init__(self, config: Optional[PhraseLDAConfig] = None) -> None:
        config = replace(config, engine="reference") if config else \
            PhraseLDAConfig(engine="reference")
        super().__init__(config)


def _extract_phrase_documents(documents: Union[SegmentedCorpus, PhraseDocuments],
                              vocabulary_size: Optional[int]) -> tuple[List[List[Phrase]], int]:
    """Normalise input into a list of phrase-tuple documents plus vocab size.

    A :class:`SegmentedCorpus` keeps every phrase — including empty ones —
    so ``clique_assignments[d]`` stays index-aligned with ``doc.phrases``
    (the visualizer depends on that); empty phrases get an (unsampled)
    assignment slot in every engine.  Raw phrase documents drop empty
    phrases instead.
    """
    if isinstance(documents, SegmentedCorpus):
        phrase_docs = [[tuple(p) for p in doc.phrases] for doc in documents]
        if documents.vocabulary is not None:
            return phrase_docs, len(documents.vocabulary)
        return phrase_docs, _infer_vocabulary_size(phrase_docs)
    phrase_docs = [[tuple(int(w) for w in phrase) for phrase in doc if len(phrase) > 0]
                   for doc in documents]
    if vocabulary_size is None:
        vocabulary_size = _infer_vocabulary_size(phrase_docs)
    return phrase_docs, vocabulary_size


def _infer_vocabulary_size(phrase_docs: List[List[Phrase]]) -> int:
    """Largest word id in the documents, plus one."""
    max_id = -1
    for doc in phrase_docs:
        for phrase in doc:
            if phrase:
                max_id = max(max_id, max(phrase))
    return max_id + 1


def unigram_segmentation(documents: Sequence[Sequence[int]]) -> List[List[Phrase]]:
    """Convert bag-of-words documents into the all-singleton segmentation.

    Fitting :class:`PhraseLDA` on this segmentation is exactly collapsed-Gibbs
    LDA — the paper uses the same implementation for both models in its
    runtime comparison.
    """
    return [[(int(w),) for w in doc] for doc in documents]
