"""Batched, id-based phrase construction (the ``"numpy"`` segmentation engine).

Algorithm 2 (bottom-up agglomerative merging) is greedy *per chunk*, but
chunks are mutually independent — the merge order that matters is only the
order within one chunk.  This engine exploits that: instead of running one
heap per chunk like the reference
:class:`~repro.core.phrase_construction.PhraseConstructor`, it advances
**every chunk's next merge simultaneously**, one vectorized round at a time,
over the flat chunk buffer (:class:`~repro.text.flat.FlatChunks`):

1. **Seed pass** — one vectorized scoring of every adjacent token pair of
   every chunk, using the precomputed bigram arrays of
   :class:`~repro.core.significance.IndexedSignificanceScorer`.  Chunks whose
   best seed pair is below the threshold α can never merge anything (the
   reference pops that same best pair first and terminates), so they emit
   all-singleton partitions without entering the cascade.
2. **Merge cascade** — each round pops every active chunk's best pair with
   one ``lexsort`` (priority ``(significance, insertion sequence)``, exactly
   the reference heap's ordering), applies all merges as array scatters, and
   re-scores the merged spans' neighbour pairs with one sorted-key lookup
   into the precomputed pair table.  A chunk leaves the cascade when its best
   remaining pair falls below α — the reference's termination — or when its
   pairs run out.
3. **Emission** — surviving spans are read off the linked-list arrays in
   position order.

Scores are computed once, into arrays, by the indexed scorer — Algorithm 2
stops re-hashing token tuples entirely.  Partitions are **bit-identical** to
the reference constructor (same scores, same per-chunk pop order, same
tie-breaking, same ``max_phrase_words`` skip semantics), asserted by
``tests/test_mining_equivalence.py`` over datasets, thresholds, and caps.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.frequent_phrases import FrequentPhraseMiningResult
from repro.core.phrase_construction import PhraseConstructionConfig
from repro.core.significance import IndexedSignificanceScorer
from repro.text.flat import FlatChunks

Phrase = Tuple[int, ...]


class FastSegmentationEngine:
    """Vectorized batch driver for Algorithm 2 over many chunks at once.

    Parameters
    ----------
    mining_result:
        Aggregate frequent-phrase counts driving the significance score.
    config:
        Threshold α and other construction options.  The engine requires a
        finite threshold (the segmenter falls back to the reference
        constructor otherwise).
    """

    def __init__(self, mining_result: FrequentPhraseMiningResult,
                 config: Optional[PhraseConstructionConfig] = None) -> None:
        self.config = config or PhraseConstructionConfig()
        if not math.isfinite(self.config.significance_threshold):
            raise ValueError(
                "the numpy segmentation engine requires a finite "
                "significance threshold; use the reference engine")
        self.scorer = IndexedSignificanceScorer.from_mining_result(mining_result)

    # -- public API -------------------------------------------------------------------
    def segment_documents(self, documents: Sequence[Sequence[Sequence[int]]],
                          ) -> List[List[Phrase]]:
        """Partition every chunk of every document, in one batched pass.

        Parameters
        ----------
        documents:
            One sequence of token-id chunks per document.

        Returns
        -------
        list of list of tuple
            Per-document phrase lists (chunks concatenated in order),
            aligned with ``documents``.
        """
        flat = FlatChunks.from_documents(documents)
        tokens = flat.tokens.astype(np.int64, copy=False)
        token_list = tokens.tolist()
        offsets = flat.offsets.tolist()
        chunk_docs = flat.doc_ids.tolist()
        threshold = self.config.significance_threshold
        max_words = self.config.max_phrase_words

        results: List[List[Phrase]] = [[] for _ in range(flat.n_documents)]
        if not flat.n_chunks:
            return results

        # -- seed pass ---------------------------------------------------------------
        chunk_end = flat.chunk_end_per_position()
        positions = np.arange(len(tokens), dtype=np.int64)
        has_pair = positions + 1 < chunk_end
        seed_sig = np.full(len(tokens), float("-inf"))
        pair_positions = np.flatnonzero(has_pair)
        if pair_positions.size:
            seed_sig[pair_positions] = self.scorer.adjacent_pair_significance(
                tokens, pair_positions)

        needs_cascade = np.zeros(flat.n_chunks, dtype=bool)
        chunk_index = None
        # A cap below two words blocks every merge outright.
        if max_words is None or max_words >= 2:
            significant = pair_positions[
                seed_sig[pair_positions] >= threshold]
            if significant.size:
                chunk_index = flat.chunk_index_per_position()
                needs_cascade[chunk_index[significant]] = True

        if needs_cascade.any():
            length, nxt = self._run_cascade(flat, tokens, seed_sig,
                                            needs_cascade, chunk_end,
                                            chunk_index)
            length_list = length.tolist()
            nxt_list = nxt.tolist()
        else:
            length_list = nxt_list = None

        # -- emission ----------------------------------------------------------------
        needs_list = needs_cascade.tolist()
        singletons = [(w,) for w in token_list]
        for chunk_id in range(flat.n_chunks):
            start, end = offsets[chunk_id], offsets[chunk_id + 1]
            doc_phrases = results[chunk_docs[chunk_id]]
            if not needs_list[chunk_id]:
                doc_phrases.extend(singletons[start:end])
                continue
            head = start
            while head >= 0:
                span = length_list[head]
                doc_phrases.append(singletons[head] if span == 1 else
                                   tuple(token_list[head:head + span]))
                head = nxt_list[head]
        return results

    # -- internals --------------------------------------------------------------------
    def _run_cascade(self, flat: FlatChunks, tokens: np.ndarray,
                     seed_sig: np.ndarray, needs_cascade: np.ndarray,
                     chunk_end: np.ndarray, chunk_index: np.ndarray,
                     ) -> Tuple[np.ndarray, np.ndarray]:
        """Advance every flagged chunk's greedy merging, one round at a time.

        ``chunk_end`` and ``chunk_index`` are the caller's per-position
        arrays (already built for the seed pass — they are O(total tokens)
        to produce and are not recomputed here).

        Returns ``(length, nxt)`` arrays over token positions describing the
        surviving spans: a span headed at position ``p`` covers
        ``tokens[p:p + length[p]]`` and is followed by the span at
        ``nxt[p]`` (``-1`` ends the chunk).  Only entries of flagged chunks
        are meaningful.

        The per-chunk merge order is identical to the reference heap's: each
        round pops the chunk's live pair maximising ``(significance, -seq)``,
        seeds carry ``seq`` equal to their position order, and every
        re-score consumes the chunk's next ``seq`` values in the reference's
        push order (left-neighbour pair first, own pair second).
        """
        n_pos = len(tokens)
        threshold = self.config.significance_threshold
        max_words = self.config.max_phrase_words
        scorer = self.scorer

        chunk_start = np.repeat(flat.offsets[:-1], flat.chunk_lengths)
        positions = np.arange(n_pos, dtype=np.int64)
        in_cascade = needs_cascade[chunk_index]

        # Span state: linked list over head positions.
        length = np.ones(n_pos, dtype=np.int64)
        nxt = np.where(positions + 1 < chunk_end, positions + 1, -1)
        prv = np.where(positions > chunk_start, positions - 1, -1)
        phrase_id = scorer.word_ids(tokens)

        # Pair state, keyed by the pair's left head position.  Only pairs at
        # or above the threshold are tracked as live: a sub-α pair can never
        # pop (its chunk terminates first), so dropping it up front changes
        # nothing about the pop order — when a chunk's live pairs run out,
        # the reference's next pop is its sub-α maximum, i.e. termination.
        pair_sig = np.where(in_cascade, seed_sig, float("-inf"))
        pair_live = in_cascade & (pair_sig >= threshold)
        pair_seq = positions - chunk_start
        pair_merged = np.full(n_pos, -1, dtype=np.int64)
        live_seed = np.flatnonzero(pair_live)
        if live_seed.size:
            _, merged = scorer.pair_lookup(phrase_id[live_seed],
                                           phrase_id[live_seed + 1])
            pair_merged[live_seed] = merged
        # The reference seeds one heap entry per adjacent pair, so each
        # chunk's sequence counter starts past its seed pairs.
        next_seq = np.maximum(flat.chunk_lengths - 1, 0)

        while True:
            heads = np.flatnonzero(pair_live)
            if not heads.size:
                break
            # Heads are position-sorted, so each chunk's live pairs form one
            # contiguous segment.  Per-chunk pop = the segment entry with
            # the highest significance, earliest sequence number — the
            # reference heap's exact priority — via segmented reductions.
            chunks_of = chunk_index[heads]
            first = np.empty(heads.size, dtype=bool)
            first[0] = True
            np.not_equal(chunks_of[1:], chunks_of[:-1], out=first[1:])
            starts = np.flatnonzero(first)
            sizes = np.diff(np.append(starts, heads.size))

            head_sig = pair_sig[heads]
            segment_max = np.maximum.reduceat(head_sig, starts)
            is_max = head_sig == np.repeat(segment_max, sizes)
            head_seq = np.where(is_max, pair_seq[heads], np.iinfo(np.int64).max)
            segment_first_seq = np.minimum.reduceat(head_seq, starts)
            pops = heads[head_seq == np.repeat(segment_first_seq, sizes)]

            rights = nxt[pops]
            merged_length = length[pops] + length[rights]
            if max_words is not None:
                # Cap-blocked pops are removed permanently (the span can
                # only grow), without consuming sequence numbers — exactly
                # the reference's skip path.
                capped = merged_length > max_words
                pair_live[pops[capped]] = False
                pops = pops[~capped]
                rights = rights[~capped]
                merged_length = merged_length[~capped]
            if not pops.size:
                continue

            # Apply every chunk's merge (at most one pop per chunk, so the
            # scatters never collide).
            phrase_id[pops] = pair_merged[pops]
            length[pops] = merged_length
            followers = nxt[rights]
            nxt[pops] = followers
            linked = followers >= 0
            prv[followers[linked]] = pops[linked]
            pair_live[pops] = False
            pair_live[rights] = False

            # Re-score the merged spans' neighbour pairs, consuming each
            # chunk's sequence numbers in the reference's push order.
            anchors_prev = prv[pops]
            has_prev = anchors_prev >= 0
            has_self = linked
            base = next_seq[chunk_index[pops]]
            next_seq[chunk_index[pops]] = (base + has_prev.astype(np.int64)
                                           + has_self.astype(np.int64))

            left_heads = anchors_prev[has_prev]
            if left_heads.size:
                sig, merged = scorer.pair_lookup(phrase_id[left_heads],
                                                 phrase_id[pops[has_prev]])
                pair_sig[left_heads] = sig
                pair_merged[left_heads] = merged
                pair_seq[left_heads] = base[has_prev]
                pair_live[left_heads] = sig >= threshold
            self_heads = pops[has_self]
            if self_heads.size:
                sig, merged = scorer.pair_lookup(phrase_id[self_heads],
                                                 phrase_id[followers[has_self]])
                pair_sig[self_heads] = sig
                pair_merged[self_heads] = merged
                pair_seq[self_heads] = (base + has_prev.astype(np.int64))[has_self]
                pair_live[self_heads] = sig >= threshold

        return length, nxt
