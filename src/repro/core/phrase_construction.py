"""Bottom-up agglomerative phrase construction (paper Algorithm 2).

Given one document chunk (an ordered token sequence that never crosses
phrase-invariant punctuation) and the aggregate frequent-phrase counts, the
algorithm:

1. places every *adjacent pair* of current phrase instances into a max-heap,
   keyed by the significance (Eq. 1) of merging them;
2. repeatedly pops the most significant pair; if its significance is at least
   the threshold α the pair is merged into a single phrase instance and the
   significances of the new instance with its left and right neighbours are
   recomputed and pushed;
3. terminates when the best remaining pair falls below α (or when the whole
   chunk has collapsed into one phrase).

The surviving phrase instances partition the chunk — this is the document's
'bag of phrases'.  Because only merges of *frequent* phrases can be
significant, the partition implicitly filters the quadratic space of
candidate phrases down to at most a linear number of high-quality ones.

The merge history (a dendrogram, Figure 1 in the paper) is recorded so that
examples and tests can visualise and verify the construction order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.significance import SignificanceScorer
from repro.utils.heap import AddressableMaxHeap


@dataclass
class PhraseConstructionConfig:
    """Configuration for bottom-up phrase construction.

    Parameters
    ----------
    significance_threshold:
        α — the minimum significance a merge needs to be applied.  The paper
        uses a fixed threshold (α = 5 in Figure 1's illustration).
    max_phrase_words:
        Optional cap on the number of words in a constructed phrase; ``None``
        leaves termination entirely to the threshold.
    engine:
        Segmentation implementation used by
        :class:`~repro.core.segmentation.CorpusSegmenter`: ``"reference"``
        (this module's readable constructor), ``"numpy"`` (the batched
        id-indexed engine), or ``"auto"``.  Partitions are bit-identical
        across engines.
    n_jobs:
        Worker processes for corpus-scale segmentation; documents are
        sharded contiguously and merged back in order, so any value
        produces the same partitions as ``1``.
    """

    significance_threshold: float = 5.0
    max_phrase_words: Optional[int] = None
    engine: str = "auto"
    n_jobs: int = 1


@dataclass
class MergeTraceEntry:
    """One step of the agglomerative merge history (a dendrogram level).

    Attributes
    ----------
    left, right:
        The word-id tuples of the two phrase instances that were merged.
    significance:
        The significance score of the merge.
    merged:
        The resulting phrase.
    iteration:
        1-based merge index within the chunk.
    """

    left: Tuple[int, ...]
    right: Tuple[int, ...]
    significance: float
    merged: Tuple[int, ...]
    iteration: int


@dataclass
class ConstructionResult:
    """Partition of a chunk into phrases plus the merge trace."""

    phrases: List[Tuple[int, ...]]
    trace: List[MergeTraceEntry] = field(default_factory=list)

    @property
    def num_phrases(self) -> int:
        """Number of phrases in the partition."""
        return len(self.phrases)

    def flat_tokens(self) -> List[int]:
        """Concatenation of all phrases — must equal the original chunk."""
        flat: List[int] = []
        for phrase in self.phrases:
            flat.extend(phrase)
        return flat


class _Node:
    """Doubly-linked-list node holding one live phrase instance."""

    __slots__ = ("phrase", "prev", "next", "alive", "node_id")

    def __init__(self, phrase: Tuple[int, ...], node_id: int) -> None:
        self.phrase = phrase
        self.prev: Optional["_Node"] = None
        self.next: Optional["_Node"] = None
        self.alive = True
        self.node_id = node_id


class PhraseConstructor:
    """Builds the 'bag of phrases' for document chunks (paper Algorithm 2)."""

    def __init__(self, scorer: SignificanceScorer,
                 config: Optional[PhraseConstructionConfig] = None) -> None:
        self.scorer = scorer
        self.config = config or PhraseConstructionConfig()

    # -- public API -------------------------------------------------------------------
    def construct(self, chunk: Sequence[int], keep_trace: bool = False) -> ConstructionResult:
        """Partition ``chunk`` (a token-id sequence) into phrases.

        Parameters
        ----------
        chunk:
            Ordered word ids of one phrase-invariant chunk.
        keep_trace:
            Record the merge dendrogram (Figure 1); off by default to avoid
            overhead in large runs.
        """
        tokens = [int(w) for w in chunk]
        if len(tokens) <= 1:
            return ConstructionResult(phrases=[tuple(tokens)] if tokens else [])

        threshold = self.config.significance_threshold
        max_words = self.config.max_phrase_words

        # Build the linked list of singleton phrase instances.
        nodes = [_Node((w,), i) for i, w in enumerate(tokens)]
        for left, right in zip(nodes, nodes[1:]):
            left.next = right
            right.prev = left

        # Seed the heap with every adjacent pair (Algorithm 2, lines 1-2).
        heap = AddressableMaxHeap()
        for node in nodes[:-1]:
            self._push_pair(heap, node)

        trace: List[MergeTraceEntry] = []
        iteration = 0

        # Greedy merging (Algorithm 2, lines 3-12).
        while len(heap) > 0:
            best = heap.pop_max()
            if best is None:
                break
            left_node: _Node = best.payload
            right_node = left_node.next
            # Stale entries whose endpoints were merged away are skipped.
            if not left_node.alive or right_node is None or not right_node.alive:
                continue
            if best.priority < threshold:
                # The most significant remaining merge is below α: terminate.
                break
            merged_phrase = left_node.phrase + right_node.phrase
            if max_words is not None and len(merged_phrase) > max_words:
                # Skip this merge permanently: phrase instances only ever
                # grow, so this pair can never come back under the cap.  No
                # re-seeding is needed — each endpoint's *other*-neighbour
                # pair is keyed by its own left node and stays live in the
                # heap (entries only leave the heap when popped, and every
                # neighbouring merge re-pushes the pairs it perturbs), so
                # merging continues around the blocked pair.  The capped-run
                # regression tests pin this partition behaviour against a
                # recompute-everything oracle.
                continue

            iteration += 1
            if keep_trace:
                trace.append(MergeTraceEntry(left=left_node.phrase,
                                             right=right_node.phrase,
                                             significance=best.priority,
                                             merged=merged_phrase,
                                             iteration=iteration))

            # Merge right_node into left_node (Algorithm 2, lines 6-8).
            left_node.phrase = merged_phrase
            left_node.next = right_node.next
            if right_node.next is not None:
                right_node.next.prev = left_node
            right_node.alive = False
            heap.remove(right_node.node_id)

            # Update the significance of the new instance with its neighbours.
            if left_node.prev is not None:
                self._push_pair(heap, left_node.prev)
            if left_node.next is not None:
                self._push_pair(heap, left_node)

        # Collect the surviving partition in order.
        phrases: List[Tuple[int, ...]] = []
        node: Optional[_Node] = nodes[0]
        # nodes[0] always survives (merges fold right neighbours into the left).
        while node is not None:
            phrases.append(node.phrase)
            node = node.next
        return ConstructionResult(phrases=phrases, trace=trace)

    # -- internals ---------------------------------------------------------------------
    def _push_pair(self, heap: AddressableMaxHeap, left_node: _Node) -> None:
        """(Re)score the pair (left_node, left_node.next) and push it."""
        right_node = left_node.next
        if right_node is None or not left_node.alive or not right_node.alive:
            return
        significance = self.scorer.significance(left_node.phrase, right_node.phrase)
        heap.push(left_node.node_id, significance, payload=left_node)
