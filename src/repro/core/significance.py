"""Collocation significance score (paper Section 4.2.1, Eq. 1).

The null hypothesis h0 is that the corpus is a sequence of ``L`` independent
Bernoulli trials, so the count of a phrase ``P`` is approximately
``Normal(L·p(P), L·p(P))`` with ``p(P) = f(P)/L``.  For a candidate merge of
two adjacent phrases ``P1`` and ``P2`` the expected frequency under
independence is::

    μ0(f(P1 ⊕ P2)) = L · p(P1) · p(P2)

and the significance of the merge is the number of standard deviations the
observed frequency sits above that expectation, with the variance estimated
by the sample count (Eq. 1)::

    sig(P1, P2) ≈ (f(P1 ⊕ P2) − μ0) / sqrt(f(P1 ⊕ P2))

Treating each already-merged phrase as a single constituent is what defeats
the "free-rider" problem: a long phrase is only merged further when the merge
of its two *sub-phrases* is itself significant, instead of comparing against
every constituent unigram independently.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.frequent_phrases import FrequentPhraseMiningResult
from repro.utils.counter import HashCounter


class SignificanceScorer:
    """Computes merge significance from mined phrase frequencies.

    Parameters
    ----------
    counter:
        Frequency counter over frequent phrases (tuples of word ids), as
        produced by :class:`~repro.core.frequent_phrases.FrequentPhraseMiner`.
    total_tokens:
        Corpus token count ``L`` (the number of Bernoulli trials).
    """

    def __init__(self, counter: HashCounter, total_tokens: int) -> None:
        if total_tokens <= 0:
            raise ValueError("total_tokens must be positive")
        self._counter = counter
        self._total_tokens = float(total_tokens)

    @classmethod
    def from_mining_result(cls, result: FrequentPhraseMiningResult) -> "SignificanceScorer":
        """Build a scorer directly from a mining result."""
        return cls(result.counter, result.total_tokens)

    # -- basic quantities ----------------------------------------------------------
    @property
    def total_tokens(self) -> float:
        """The number of Bernoulli trials ``L``."""
        return self._total_tokens

    def frequency(self, phrase: Sequence[int]) -> int:
        """Observed corpus frequency ``f(P)`` (0 for non-frequent phrases)."""
        return self._counter.get(tuple(phrase))

    def probability(self, phrase: Sequence[int]) -> float:
        """Empirical Bernoulli success probability ``p(P) = f(P)/L``."""
        return self.frequency(phrase) / self._total_tokens

    def expected_merged_frequency(self, left: Sequence[int], right: Sequence[int]) -> float:
        """Expected frequency ``μ0 = L·p(P1)·p(P2)`` under independence."""
        return self._total_tokens * self.probability(left) * self.probability(right)

    # -- the significance score -------------------------------------------------------
    def significance(self, left: Sequence[int], right: Sequence[int]) -> float:
        """Significance (Eq. 1) of merging adjacent phrases ``left ⊕ right``.

        Returns ``-inf`` when the concatenated phrase was never counted
        (frequency 0): such a merge can never be selected.
        """
        merged = tuple(left) + tuple(right)
        observed = self.frequency(merged)
        if observed <= 0:
            return float("-inf")
        expected = self.expected_merged_frequency(left, right)
        return (observed - expected) / math.sqrt(observed)

    def merged_phrase(self, left: Sequence[int], right: Sequence[int]) -> tuple[int, ...]:
        """Return the concatenation ``P1 ⊕ P2`` as a tuple of word ids."""
        return tuple(left) + tuple(right)
