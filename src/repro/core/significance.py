"""Collocation significance score (paper Section 4.2.1, Eq. 1).

The null hypothesis h0 is that the corpus is a sequence of ``L`` independent
Bernoulli trials, so the count of a phrase ``P`` is approximately
``Normal(L·p(P), L·p(P))`` with ``p(P) = f(P)/L``.  For a candidate merge of
two adjacent phrases ``P1`` and ``P2`` the expected frequency under
independence is::

    μ0(f(P1 ⊕ P2)) = L · p(P1) · p(P2)

and the significance of the merge is the number of standard deviations the
observed frequency sits above that expectation, with the variance estimated
by the sample count (Eq. 1)::

    sig(P1, P2) ≈ (f(P1 ⊕ P2) − μ0) / sqrt(f(P1 ⊕ P2))

Treating each already-merged phrase as a single constituent is what defeats
the "free-rider" problem: a long phrase is only merged further when the merge
of its two *sub-phrases* is itself significant, instead of comparing against
every constituent unigram independently.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.frequent_phrases import FrequentPhraseMiningResult
from repro.utils.counter import HashCounter, Phrase


class SignificanceScorer:
    """Computes merge significance from mined phrase frequencies.

    Parameters
    ----------
    counter:
        Frequency counter over frequent phrases (tuples of word ids), as
        produced by :class:`~repro.core.frequent_phrases.FrequentPhraseMiner`.
    total_tokens:
        Corpus token count ``L`` (the number of Bernoulli trials).
    """

    def __init__(self, counter: HashCounter, total_tokens: int) -> None:
        if total_tokens <= 0:
            raise ValueError("total_tokens must be positive")
        self._counter = counter
        self._total_tokens = float(total_tokens)

    @classmethod
    def from_mining_result(cls, result: FrequentPhraseMiningResult) -> "SignificanceScorer":
        """Build a scorer directly from a mining result."""
        return cls(result.counter, result.total_tokens)

    # -- basic quantities ----------------------------------------------------------
    @property
    def total_tokens(self) -> float:
        """The number of Bernoulli trials ``L``."""
        return self._total_tokens

    def frequency(self, phrase: Sequence[int]) -> int:
        """Observed corpus frequency ``f(P)`` (0 for non-frequent phrases)."""
        return self._counter.get(tuple(phrase))

    def probability(self, phrase: Sequence[int]) -> float:
        """Empirical Bernoulli success probability ``p(P) = f(P)/L``."""
        return self.frequency(phrase) / self._total_tokens

    def expected_merged_frequency(self, left: Sequence[int], right: Sequence[int]) -> float:
        """Expected frequency ``μ0 = L·p(P1)·p(P2)`` under independence."""
        return self._total_tokens * self.probability(left) * self.probability(right)

    # -- the significance score -------------------------------------------------------
    def significance(self, left: Sequence[int], right: Sequence[int]) -> float:
        """Significance (Eq. 1) of merging adjacent phrases ``left ⊕ right``.

        Returns ``-inf`` when the concatenated phrase was never counted
        (frequency 0): such a merge can never be selected.
        """
        merged = tuple(left) + tuple(right)
        observed = self.frequency(merged)
        if observed <= 0:
            return float("-inf")
        expected = self.expected_merged_frequency(left, right)
        return (observed - expected) / math.sqrt(observed)

    def merged_phrase(self, left: Sequence[int], right: Sequence[int]) -> tuple[int, ...]:
        """Return the concatenation ``P1 ⊕ P2`` as a tuple of word ids."""
        return tuple(left) + tuple(right)


class IndexedSignificanceScorer:
    """Array-indexed significance lookups over the frequent-phrase table.

    The reference :class:`SignificanceScorer` re-hashes word-id tuples on
    every query — three tuple constructions plus three dictionary probes per
    candidate merge, repeated each time Algorithm 2 re-scores a pair.  This
    scorer pays that cost **once**: every frequent phrase gets a dense
    integer id, counts and Bernoulli probabilities live in NumPy arrays
    indexed by id, and every *legal* merge — a split of a frequent phrase
    into two frequent constituents — is precomputed into a table mapping the
    constituent id pair to ``(significance, merged_id)``.

    During construction a merge query is then a single dictionary probe on
    an ``(int, int)`` key; merges absent from the table have a merged
    frequency of zero (phrase frequency is downward closed, so a frequent
    concatenation implies frequent constituents) and score ``-inf``, exactly
    like the reference.  All stored significances are computed with the
    same floating-point expression and operation order as
    :meth:`SignificanceScorer.significance`, so scores — and therefore
    construction decisions — are bit-identical.

    Parameters
    ----------
    counter:
        Frequent-phrase counter from Algorithm 1 (the public result type).
    total_tokens:
        Corpus token count ``L`` of the significance null model.
    """

    def __init__(self, counter: HashCounter, total_tokens: int) -> None:
        if total_tokens <= 0:
            raise ValueError("total_tokens must be positive")
        self.total_tokens = float(total_tokens)
        phrases: List[Phrase] = list(counter)
        self.phrases = phrases
        self.id_of: Dict[Phrase, int] = {p: i for i, p in enumerate(phrases)}
        counts = np.array([counter.get(p) for p in phrases], dtype=np.float64)
        self.counts = counts
        # p(P) = f(P) / L, the same division the reference performs lazily.
        probabilities = counts / self.total_tokens
        self.probabilities = probabilities

        total = self.total_tokens
        pair_table: Dict[Tuple[int, int], Tuple[float, int]] = {}
        for merged_id, phrase in enumerate(phrases):
            if len(phrase) < 2:
                continue
            observed = counts[merged_id]
            root = math.sqrt(observed)
            for split in range(1, len(phrase)):
                left_id = self.id_of.get(phrase[:split])
                right_id = self.id_of.get(phrase[split:])
                if left_id is None or right_id is None:
                    continue
                expected = (total * probabilities[left_id]
                            * probabilities[right_id])
                pair_table[(left_id, right_id)] = (
                    (observed - expected) / root, merged_id)
        self.pair_table = pair_table

        # Token-indexed unigram ids, and sorted bigram key/significance
        # arrays: the batch segmenter's one-pass seed scoring.
        self.vocab_bound = 1 + max(
            (w for p in phrases for w in p), default=-1)
        word_id = np.full(self.vocab_bound + 1, -1, dtype=np.int64)
        for phrase, phrase_id in self.id_of.items():
            if len(phrase) == 1:
                word_id[phrase[0]] = phrase_id
        self.word_id = word_id

        # Sorted pair-key arrays: the vectorized view of ``pair_table``,
        # keyed by ``left_id * n_phrases + right_id`` for searchsorted
        # gathers.
        n_phrases = max(len(phrases), 1)
        self.n_phrases = n_phrases
        keys = np.array([left * n_phrases + right
                         for left, right in pair_table], dtype=np.int64)
        order = np.argsort(keys, kind="stable")
        self.pair_keys = keys[order]
        values = list(pair_table.values())
        self.pair_key_sigs = np.array(
            [values[i][0] for i in order.tolist()], dtype=np.float64)
        self.pair_key_merged = np.array(
            [values[i][1] for i in order.tolist()], dtype=np.int64)

    @classmethod
    def from_mining_result(cls, result: FrequentPhraseMiningResult,
                           ) -> "IndexedSignificanceScorer":
        """Build an indexed scorer directly from a mining result."""
        return cls(result.counter, result.total_tokens)

    # -- queries ----------------------------------------------------------------------
    def pair_score(self, left_id: int, right_id: int) -> Tuple[float, int]:
        """Score merging the phrases with ids ``left_id`` and ``right_id``.

        Returns ``(significance, merged_id)``; ``(-inf, -1)`` when either
        constituent is not a frequent phrase (id ``-1``) or the
        concatenation was never counted.
        """
        if left_id < 0 or right_id < 0:
            return (float("-inf"), -1)
        return self.pair_table.get((left_id, right_id), (float("-inf"), -1))

    def word_ids(self, tokens: np.ndarray) -> np.ndarray:
        """Map a token-id array to frequent-unigram phrase ids (``-1`` = rare)."""
        clipped = np.minimum(tokens, self.vocab_bound)
        return self.word_id[clipped]

    def pair_lookup(self, left_ids: np.ndarray, right_ids: np.ndarray,
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`pair_score` over phrase-id arrays.

        Parameters
        ----------
        left_ids, right_ids:
            Aligned ``int64`` arrays of phrase ids (``-1`` marks a
            non-frequent constituent).

        Returns
        -------
        (significances, merged_ids)
            Float64 significances (``-inf`` for impossible merges) and the
            merged phrases' ids (``-1`` where impossible) — the same values
            :meth:`pair_score` returns entry by entry.
        """
        sigs = np.full(len(left_ids), float("-inf"))
        merged = np.full(len(left_ids), -1, dtype=np.int64)
        if not len(left_ids) or not len(self.pair_keys):
            return sigs, merged
        legal = np.flatnonzero((left_ids >= 0) & (right_ids >= 0))
        keys = left_ids[legal] * self.n_phrases + right_ids[legal]
        slot = np.searchsorted(self.pair_keys, keys)
        slot = np.minimum(slot, len(self.pair_keys) - 1)
        match = self.pair_keys[slot] == keys
        hit = legal[match]
        slot = slot[match]
        sigs[hit] = self.pair_key_sigs[slot]
        merged[hit] = self.pair_key_merged[slot]
        return sigs, merged

    def adjacent_pair_significance(self, tokens: np.ndarray,
                                   valid: np.ndarray) -> np.ndarray:
        """Significance of merging ``tokens[p]`` with ``tokens[p + 1]``.

        Parameters
        ----------
        tokens:
            Flat ``int64`` token array.
        valid:
            Positions ``p`` such that ``p + 1`` is in the same chunk.

        Returns
        -------
        numpy.ndarray
            One float64 per entry of ``valid``: the seed-pair significance,
            ``-inf`` where the bigram is not frequent — bit-identical to
            scoring the singleton pair with the reference scorer.
        """
        sigs, _ = self.pair_lookup(self.word_ids(tokens[valid]),
                                   self.word_ids(tokens[valid + 1]))
        return sigs
