"""Corpus segmentation: from mined phrase counts to a 'bag of phrases'.

This module glues Algorithm 1 and Algorithm 2 together at corpus scale.  For
every document it runs the bottom-up phrase construction over each
phrase-invariant chunk and concatenates the resulting partitions, yielding a
:class:`SegmentedDocument` whose phrase instances cover the document's tokens
exactly (the partition property from the problem definition, Section 2).

The :class:`SegmentedCorpus` is the input to PhraseLDA: each phrase becomes a
clique whose tokens must share a topic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.frequent_phrases import FrequentPhraseMiningResult
from repro.core.phrase_construction import (
    PhraseConstructionConfig,
    PhraseConstructor,
)
from repro.core.significance import SignificanceScorer
from repro.text.corpus import Corpus
from repro.text.vocabulary import Vocabulary

Phrase = Tuple[int, ...]


@dataclass
class SegmentedDocument:
    """A document partitioned into phrase instances.

    Attributes
    ----------
    phrases:
        Ordered phrase instances; concatenating them restores the document's
        (chunked) token sequence.
    doc_id:
        Document index within the corpus.
    """

    phrases: List[Phrase]
    doc_id: int = 0

    @property
    def num_phrases(self) -> int:
        """Number of phrases ``G_d`` in the partition."""
        return len(self.phrases)

    @property
    def num_tokens(self) -> int:
        """Number of tokens ``N_d`` covered by the partition."""
        return sum(len(p) for p in self.phrases)

    @property
    def num_multiword_phrases(self) -> int:
        """Number of phrases with two or more words."""
        return sum(1 for p in self.phrases if len(p) >= 2)

    def flat_tokens(self) -> List[int]:
        """Concatenation of all phrase instances."""
        flat: List[int] = []
        for phrase in self.phrases:
            flat.extend(phrase)
        return flat


@dataclass
class SegmentedCorpus:
    """A corpus in 'bag-of-phrases' representation.

    Attributes
    ----------
    documents:
        One :class:`SegmentedDocument` per original document (same order).
    vocabulary:
        The shared word vocabulary (for decoding phrases back to text).
    name:
        Dataset name carried over from the source corpus.
    """

    documents: List[SegmentedDocument] = field(default_factory=list)
    vocabulary: Optional[Vocabulary] = None
    name: str = "corpus"

    def __len__(self) -> int:
        return len(self.documents)

    def __iter__(self) -> Iterator[SegmentedDocument]:
        return iter(self.documents)

    def __getitem__(self, index: int) -> SegmentedDocument:
        return self.documents[index]

    @property
    def num_tokens(self) -> int:
        """Total token count across all documents."""
        return sum(doc.num_tokens for doc in self.documents)

    @property
    def num_phrases(self) -> int:
        """Total number of phrase instances across all documents."""
        return sum(doc.num_phrases for doc in self.documents)

    def phrase_instance_counts(self, min_length: int = 1) -> Dict[Phrase, int]:
        """Count how often each distinct phrase appears as a partition element."""
        counts: Dict[Phrase, int] = {}
        for doc in self.documents:
            for phrase in doc.phrases:
                if len(phrase) >= min_length:
                    counts[phrase] = counts.get(phrase, 0) + 1
        return counts

    def decode_phrase(self, phrase: Phrase, unstem: bool = True) -> str:
        """Return the readable text of ``phrase`` using the vocabulary."""
        if self.vocabulary is None:
            return " ".join(str(w) for w in phrase)
        if unstem:
            return self.vocabulary.unstem_phrase(phrase)
        return " ".join(self.vocabulary.word_of(w) for w in phrase)


class CorpusSegmenter:
    """Segments every document of a corpus into phrases.

    Parameters
    ----------
    mining_result:
        Output of :class:`~repro.core.frequent_phrases.FrequentPhraseMiner`
        providing the aggregate counts for the significance score.
    construction_config:
        Threshold α and other phrase-construction options.
    """

    def __init__(self, mining_result: FrequentPhraseMiningResult,
                 construction_config: Optional[PhraseConstructionConfig] = None) -> None:
        self.mining_result = mining_result
        scorer = SignificanceScorer.from_mining_result(mining_result)
        self.constructor = PhraseConstructor(scorer, construction_config)

    def segment_document(self, chunks: Sequence[Sequence[int]], doc_id: int = 0) -> SegmentedDocument:
        """Partition one document (given as token-id chunks) into phrases."""
        phrases: List[Phrase] = []
        for chunk in chunks:
            if not chunk:
                continue
            result = self.constructor.construct(chunk)
            phrases.extend(result.phrases)
        return SegmentedDocument(phrases=phrases, doc_id=doc_id)

    def segment(self, corpus: Corpus) -> SegmentedCorpus:
        """Segment every document of ``corpus`` into a :class:`SegmentedCorpus`."""
        segmented = SegmentedCorpus(vocabulary=corpus.vocabulary, name=corpus.name)
        for doc in corpus:
            segmented.documents.append(
                self.segment_document(doc.chunks, doc_id=doc.doc_id))
        return segmented
