"""Corpus segmentation: from mined phrase counts to a 'bag of phrases'.

This module glues Algorithm 1 and Algorithm 2 together at corpus scale.  For
every document it runs the bottom-up phrase construction over each
phrase-invariant chunk and concatenates the resulting partitions, yielding a
:class:`SegmentedDocument` whose phrase instances cover the document's tokens
exactly (the partition property from the problem definition, Section 2).

The :class:`SegmentedCorpus` is the input to PhraseLDA: each phrase becomes a
clique whose tokens must share a topic.

Like the miner and the PhraseLDA samplers, the segmenter is engine-based:
``"reference"`` runs the readable per-chunk
:class:`~repro.core.phrase_construction.PhraseConstructor`, while
``"numpy"`` (what ``"auto"`` selects) runs the batched
:class:`~repro.core.fast_construction.FastSegmentationEngine` — bit-identical
partitions, an order of magnitude faster at corpus scale.  Independently of
the engine, :meth:`CorpusSegmenter.segment` can shard documents across
``n_jobs`` worker processes; shards are merged back in document order, so
the result is identical to a sequential run.
"""

from __future__ import annotations

import math
import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.frequent_phrases import FrequentPhraseMiningResult
from repro.core.phrase_construction import (
    PhraseConstructionConfig,
    PhraseConstructor,
)
from repro.core.significance import SignificanceScorer
from repro.text.corpus import Corpus
from repro.text.vocabulary import Vocabulary

Phrase = Tuple[int, ...]

#: Engine names accepted by the segmentation layer (mirrors the miner's).
SEGMENTATION_ENGINES = ("auto", "numpy", "reference")

#: Documents below this count are never sharded — worker startup would
#: dominate the segmentation itself.
MIN_DOCUMENTS_PER_SHARD = 16


def resolve_segmentation_engine(engine: str,
                                significance_threshold: float = 0.0) -> str:
    """Map a segmentation engine request onto a concrete engine name.

    ``"auto"`` resolves to ``"numpy"`` except for non-finite significance
    thresholds (a ``-inf`` threshold makes the reference loop merge
    zero-frequency pairs, which the indexed scorer deliberately cannot
    express), where the reference engine is selected instead.

    Raises
    ------
    ValueError
        If ``engine`` is not one of :data:`SEGMENTATION_ENGINES`, or
        ``"numpy"`` is requested explicitly with a non-finite threshold.
    """
    if engine not in SEGMENTATION_ENGINES:
        raise ValueError(f"unknown segmentation engine {engine!r}; "
                         f"expected one of {SEGMENTATION_ENGINES}")
    finite = math.isfinite(significance_threshold)
    if engine == "numpy" and not finite:
        raise ValueError("the numpy segmentation engine requires a finite "
                         "significance threshold; use 'reference'")
    if engine == "auto":
        return "numpy" if finite else "reference"
    return engine


@dataclass
class SegmentedDocument:
    """A document partitioned into phrase instances.

    Attributes
    ----------
    phrases:
        Ordered phrase instances; concatenating them restores the document's
        (chunked) token sequence.
    doc_id:
        Document index within the corpus.
    """

    phrases: List[Phrase]
    doc_id: int = 0

    @property
    def num_phrases(self) -> int:
        """Number of phrases ``G_d`` in the partition."""
        return len(self.phrases)

    @property
    def num_tokens(self) -> int:
        """Number of tokens ``N_d`` covered by the partition."""
        return sum(len(p) for p in self.phrases)

    @property
    def num_multiword_phrases(self) -> int:
        """Number of phrases with two or more words."""
        return sum(1 for p in self.phrases if len(p) >= 2)

    def flat_tokens(self) -> List[int]:
        """Concatenation of all phrase instances."""
        flat: List[int] = []
        for phrase in self.phrases:
            flat.extend(phrase)
        return flat


@dataclass
class SegmentedCorpus:
    """A corpus in 'bag-of-phrases' representation.

    Attributes
    ----------
    documents:
        One :class:`SegmentedDocument` per original document (same order).
    vocabulary:
        The shared word vocabulary (for decoding phrases back to text).
    name:
        Dataset name carried over from the source corpus.
    """

    documents: List[SegmentedDocument] = field(default_factory=list)
    vocabulary: Optional[Vocabulary] = None
    name: str = "corpus"

    def __len__(self) -> int:
        return len(self.documents)

    def __iter__(self) -> Iterator[SegmentedDocument]:
        return iter(self.documents)

    def __getitem__(self, index: int) -> SegmentedDocument:
        return self.documents[index]

    @property
    def num_tokens(self) -> int:
        """Total token count across all documents."""
        return sum(doc.num_tokens for doc in self.documents)

    @property
    def num_phrases(self) -> int:
        """Total number of phrase instances across all documents."""
        return sum(doc.num_phrases for doc in self.documents)

    def phrase_instance_counts(self, min_length: int = 1) -> Dict[Phrase, int]:
        """Count how often each distinct phrase appears as a partition element."""
        counts: Dict[Phrase, int] = {}
        for doc in self.documents:
            for phrase in doc.phrases:
                if len(phrase) >= min_length:
                    counts[phrase] = counts.get(phrase, 0) + 1
        return counts

    def decode_phrase(self, phrase: Phrase, unstem: bool = True) -> str:
        """Return the readable text of ``phrase`` using the vocabulary."""
        if self.vocabulary is None:
            return " ".join(str(w) for w in phrase)
        if unstem:
            return self.vocabulary.unstem_phrase(phrase)
        return " ".join(self.vocabulary.word_of(w) for w in phrase)


class CorpusSegmenter:
    """Segments every document of a corpus into phrases.

    Parameters
    ----------
    mining_result:
        Output of :class:`~repro.core.frequent_phrases.FrequentPhraseMiner`
        providing the aggregate counts for the significance score.
    construction_config:
        Threshold α, engine, and sharding (``n_jobs``) options.
    """

    def __init__(self, mining_result: FrequentPhraseMiningResult,
                 construction_config: Optional[PhraseConstructionConfig] = None) -> None:
        self.mining_result = mining_result
        self.config = construction_config or PhraseConstructionConfig()
        scorer = SignificanceScorer.from_mining_result(mining_result)
        self.constructor = PhraseConstructor(scorer, construction_config)
        self.engine = resolve_segmentation_engine(
            self.config.engine, self.config.significance_threshold)
        self._fast = None
        if self.engine == "numpy":
            from repro.core.fast_construction import FastSegmentationEngine

            self._fast = FastSegmentationEngine(mining_result, self.config)

    def segment_document(self, chunks: Sequence[Sequence[int]], doc_id: int = 0) -> SegmentedDocument:
        """Partition one document (given as token-id chunks) into phrases."""
        return SegmentedDocument(
            phrases=self._segment_phrase_lists([chunks])[0], doc_id=doc_id)

    def segment_documents(self, documents: Sequence[Sequence[Sequence[int]]],
                          doc_ids: Optional[Sequence[int]] = None,
                          n_jobs: Optional[int] = None,
                          ) -> List[SegmentedDocument]:
        """Partition a batch of documents (each a sequence of chunks).

        The batched entry point behind :meth:`segment` and the serving
        layer: with the numpy engine all documents share one vectorized
        seed-scoring pass (and one chunk memo cache), and with
        ``n_jobs > 1`` the batch is sharded across worker processes.  The
        per-document results are identical to calling
        :meth:`segment_document` in a loop, whatever the engine or job
        count.

        Parameters
        ----------
        documents:
            One sequence of token-id chunks per document.
        doc_ids:
            Optional document ids to stamp on the results (defaults to the
            batch positions).
        n_jobs:
            Worker processes; defaults to the construction config's value.

        Returns
        -------
        list of SegmentedDocument
            Aligned with ``documents``.
        """
        if doc_ids is None:
            doc_ids = range(len(documents))
        jobs = self.config.n_jobs if n_jobs is None else n_jobs
        if jobs > 1 and len(documents) >= jobs * MIN_DOCUMENTS_PER_SHARD:
            phrase_lists = self._segment_sharded(documents, jobs)
        else:
            phrase_lists = self._segment_phrase_lists(documents)
        return [SegmentedDocument(phrases=phrases, doc_id=doc_id)
                for phrases, doc_id in zip(phrase_lists, doc_ids)]

    def segment(self, corpus: Corpus) -> SegmentedCorpus:
        """Segment every document of ``corpus`` into a :class:`SegmentedCorpus`."""
        segmented = SegmentedCorpus(vocabulary=corpus.vocabulary, name=corpus.name)
        segmented.documents = self.segment_documents(
            [doc.chunks for doc in corpus],
            doc_ids=[doc.doc_id for doc in corpus])
        return segmented

    # -- internals --------------------------------------------------------------------
    def _segment_phrase_lists(self, documents: Sequence[Sequence[Sequence[int]]],
                              ) -> List[List[Phrase]]:
        """Sequential batch segmentation returning raw phrase lists."""
        if self._fast is not None:
            return self._fast.segment_documents(documents)
        results: List[List[Phrase]] = []
        for chunks in documents:
            phrases: List[Phrase] = []
            for chunk in chunks:
                if not len(chunk):
                    continue
                phrases.extend(self.constructor.construct(chunk).phrases)
            results.append(phrases)
        return results

    def _segment_sharded(self, documents: Sequence[Sequence[Sequence[int]]],
                         jobs: int) -> List[List[Phrase]]:
        """Shard ``documents`` across ``jobs`` worker processes.

        Each worker receives one contiguous slice; results are concatenated
        back in slice order, so the output is bit-identical to the
        sequential path (documents are independent — sharding only changes
        where the work runs).
        """
        bounds = [(len(documents) * shard) // jobs for shard in range(jobs + 1)]
        shards = [list(documents[a:b]) for a, b in zip(bounds, bounds[1:]) if b > a]
        with multiprocessing.Pool(processes=len(shards),
                                  initializer=_shard_initializer,
                                  initargs=(self.mining_result, self.config),
                                  ) as pool:
            shard_results = pool.map(_segment_shard, shards)
        merged: List[List[Phrase]] = []
        for result in shard_results:
            merged.extend(result)
        return merged


# -- multiprocessing glue -------------------------------------------------------------
_SHARD_SEGMENTER: Optional[CorpusSegmenter] = None


def _shard_initializer(mining_result: FrequentPhraseMiningResult,
                       config: PhraseConstructionConfig) -> None:
    """Build one single-process segmenter per worker (pickled state once)."""
    global _SHARD_SEGMENTER
    worker_config = PhraseConstructionConfig(
        significance_threshold=config.significance_threshold,
        max_phrase_words=config.max_phrase_words,
        engine=config.engine, n_jobs=1)
    _SHARD_SEGMENTER = CorpusSegmenter(mining_result, worker_config)


def _segment_shard(documents: List[List[List[int]]]) -> List[List[Phrase]]:
    """Segment one shard of documents inside a worker process."""
    assert _SHARD_SEGMENTER is not None
    return _SHARD_SEGMENTER._segment_phrase_lists(documents)
