"""Shared interface for topical-phrase methods.

Every method in the paper's comparison — ToPMine itself and the four
baselines — is exposed to the benchmark harness through the same minimal
interface: ``fit(corpus) -> MethodOutput``.  This keeps the experiment code
(Figures 3-5, Table 3) free of per-method special cases.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.eval.output import MethodOutput
from repro.text.corpus import Corpus


class TopicalPhraseMethod(abc.ABC):
    """Abstract base class for a topical phrase mining method."""

    #: Human-readable method name used in tables and figures.
    name: str = "method"

    @abc.abstractmethod
    def fit(self, corpus: Corpus) -> MethodOutput:
        """Fit the method on ``corpus`` and return its per-topic phrase lists."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
