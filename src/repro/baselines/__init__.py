"""Baseline topical-phrase methods compared against ToPMine in the paper.

Four directly comparable methods are evaluated (paper Sections 6-7):

* :mod:`repro.baselines.tng` — Topical N-Grams (Wang, McCallum, Wei 2007):
  a bigram-status latent variable plus word-specific bigram multinomials.
* :mod:`repro.baselines.pdlda` — PD-LDA (Lindsey, Headden, Stipicevic 2012):
  a phrase-discovering topic model with hierarchical Pitman–Yor back-off;
  implemented here with a simplified Chinese-restaurant approximation that
  preserves its cost profile (see DESIGN.md §3).
* :mod:`repro.baselines.kert` — KERT (Danilevsky et al. 2014): post-hoc
  unconstrained frequent pattern mining on each LDA topic plus heuristic
  ranking.
* :mod:`repro.baselines.turbo_topics` — Turbo Topics (Blei & Lafferty 2009):
  post-hoc back-off n-gram merging validated by permutation tests.

:mod:`repro.baselines.base` defines the shared method interface and
:mod:`repro.baselines.adapters` wraps ToPMine and plain LDA in it, so the
benchmark harness can iterate over all methods uniformly.
"""

from repro.baselines.base import TopicalPhraseMethod
from repro.baselines.adapters import LDAUnigramMethod, ToPMineMethod
from repro.baselines.kert import KERTConfig, KERTMethod
from repro.baselines.pdlda import PDLDAConfig, PDLDAMethod
from repro.baselines.tng import TNGConfig, TNGMethod
from repro.baselines.turbo_topics import TurboTopicsConfig, TurboTopicsMethod

__all__ = [
    "TopicalPhraseMethod",
    "LDAUnigramMethod",
    "ToPMineMethod",
    "KERTConfig",
    "KERTMethod",
    "PDLDAConfig",
    "PDLDAMethod",
    "TNGConfig",
    "TNGMethod",
    "TurboTopicsConfig",
    "TurboTopicsMethod",
]
