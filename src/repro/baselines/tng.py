"""Topical N-Grams (TNG) baseline — Wang, McCallum & Wei, ICDM 2007.

TNG extends LDA with, for every token position, a *bigram status* variable
``x_{d,i}`` indicating whether the token forms a bigram with its predecessor.
The generative story (in the variant commonly used for topical phrase
extraction, which shares the topic across the words of an n-gram):

* ``x_{d,i} ~ Bernoulli(π_{w_{d,i-1}})`` — a previous-word-specific switch,
* if ``x = 0`` the token is drawn from the topic's unigram multinomial
  ``φ_{z}``; if ``x = 1`` it is drawn from the previous word's topic-specific
  bigram multinomial ``σ_{z, w_{d,i-1}}`` and inherits the predecessor's
  topic.

Collapsed Gibbs sampling alternates over ``(z, x)`` per token.  N-gram
phrases are read off as maximal runs of tokens chained by ``x = 1`` and
ranked per topic by frequency.  The extra per-previous-word bigram tables are
what give TNG its large memory/runtime footprint relative to LDA (paper
Table 3).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.base import TopicalPhraseMethod
from repro.eval.output import MethodOutput
from repro.text.corpus import Corpus
from repro.topicmodel.lda import _sample_index
from repro.utils.rng import SeedLike, new_rng


@dataclass
class TNGConfig:
    """Configuration for the TNG baseline.

    Parameters
    ----------
    n_topics:
        Number of topics.
    alpha, beta:
        Dirichlet priors for document-topic and topic-unigram distributions.
    delta:
        Dirichlet prior for the topic/previous-word bigram distributions.
    gamma:
        Beta prior for the bigram-status switches.
    n_iterations:
        Gibbs sweeps.
    seed:
        Random seed.
    """

    n_topics: int = 10
    alpha: float = 1.0
    beta: float = 0.01
    delta: float = 0.01
    gamma: float = 0.1
    n_iterations: int = 100
    seed: SeedLike = None


class TNGMethod(TopicalPhraseMethod):
    """Topical N-Grams with collapsed Gibbs sampling."""

    name = "TNG"

    def __init__(self, config: Optional[TNGConfig] = None) -> None:
        self.config = config or TNGConfig()

    # -- fitting -----------------------------------------------------------------------
    def fit(self, corpus: Corpus) -> MethodOutput:
        """Fit the topical n-gram model and wrap the output."""
        config = self.config
        rng = new_rng(config.seed)
        n_topics = config.n_topics
        vocabulary_size = corpus.vocabulary_size

        docs = [np.asarray(doc.tokens, dtype=np.int64) for doc in corpus]

        # Count structures.
        doc_topic = np.zeros((len(docs), n_topics), dtype=np.int64)
        topic_word = np.zeros((n_topics, vocabulary_size), dtype=np.int64)
        topic_totals = np.zeros(n_topics, dtype=np.int64)
        # Bigram tables are sparse: (topic, prev_word) -> Counter of next words.
        bigram_counts: Dict[Tuple[int, int], Counter] = defaultdict(Counter)
        bigram_totals: Dict[Tuple[int, int], int] = defaultdict(int)
        # Bigram-status switch counts per previous word: [word, x]
        switch_counts = np.zeros((vocabulary_size, 2), dtype=np.int64)

        assignments: List[np.ndarray] = []
        statuses: List[np.ndarray] = []

        # -- initialisation ------------------------------------------------------------
        for d, doc in enumerate(docs):
            z = rng.integers(0, n_topics, size=len(doc))
            x = np.zeros(len(doc), dtype=np.int64)
            for i, w in enumerate(doc):
                if i > 0 and rng.random() < 0.1:
                    x[i] = 1
                    z[i] = z[i - 1]
                k = z[i]
                doc_topic[d, k] += 1
                if x[i] == 1:
                    prev = int(doc[i - 1])
                    bigram_counts[(k, prev)][int(w)] += 1
                    bigram_totals[(k, prev)] += 1
                else:
                    topic_word[k, w] += 1
                    topic_totals[k] += 1
                if i > 0:
                    switch_counts[int(doc[i - 1]), x[i]] += 1
            assignments.append(z)
            statuses.append(x)

        beta_sum = config.beta * vocabulary_size
        delta_sum = config.delta * vocabulary_size

        # -- Gibbs sweeps -----------------------------------------------------------------
        for _ in range(config.n_iterations):
            for d, doc in enumerate(docs):
                z = assignments[d]
                x = statuses[d]
                for i in range(len(doc)):
                    w = int(doc[i])
                    k_old = int(z[i])
                    x_old = int(x[i])
                    prev = int(doc[i - 1]) if i > 0 else -1

                    # -- remove token ------------------------------------------------------
                    doc_topic[d, k_old] -= 1
                    if x_old == 1:
                        bigram_counts[(k_old, prev)][w] -= 1
                        bigram_totals[(k_old, prev)] -= 1
                    else:
                        topic_word[k_old, w] -= 1
                        topic_totals[k_old] -= 1
                    if i > 0:
                        switch_counts[prev, x_old] -= 1

                    # -- sample (z, x) jointly ----------------------------------------------
                    # x = 0 branch: unigram emission for every topic.
                    unigram_weights = (
                        (config.alpha + doc_topic[d])
                        * (config.beta + topic_word[:, w])
                        / (beta_sum + topic_totals)
                    )
                    if i > 0:
                        p_x0 = (config.gamma + switch_counts[prev, 0])
                        p_x1 = (config.gamma + switch_counts[prev, 1])
                        unigram_weights = unigram_weights * p_x0
                        # x = 1 branch: bigram emission conditioned on prev word,
                        # topic forced to the predecessor's topic.
                        k_prev = int(z[i - 1])
                        table = bigram_counts[(k_prev, prev)]
                        bigram_prob = (
                            (config.delta + table[w])
                            / (delta_sum + bigram_totals[(k_prev, prev)])
                        )
                        bigram_weight = (
                            p_x1 * (config.alpha + doc_topic[d, k_prev]) * bigram_prob
                        )
                        weights = np.concatenate([unigram_weights, [bigram_weight]])
                    else:
                        weights = unigram_weights

                    choice = _sample_index(new_rng(rng), weights)
                    if i > 0 and choice == n_topics:
                        x_new = 1
                        k_new = int(z[i - 1])
                    else:
                        x_new = 0
                        k_new = int(choice)

                    # -- add token back ------------------------------------------------------
                    z[i] = k_new
                    x[i] = x_new
                    doc_topic[d, k_new] += 1
                    if x_new == 1:
                        bigram_counts[(k_new, prev)][w] += 1
                        bigram_totals[(k_new, prev)] += 1
                    else:
                        topic_word[k_new, w] += 1
                        topic_totals[k_new] += 1
                    if i > 0:
                        switch_counts[prev, x_new] += 1

        self._topic_word = topic_word
        self._assignments = assignments
        self._statuses = statuses
        return self._build_output(corpus, docs, assignments, statuses, topic_word)

    # -- phrase extraction ------------------------------------------------------------------
    def _build_output(self, corpus: Corpus, docs: List[np.ndarray],
                      assignments: List[np.ndarray], statuses: List[np.ndarray],
                      topic_word: np.ndarray) -> MethodOutput:
        n_topics = self.config.n_topics
        phrase_counts: List[Counter] = [Counter() for _ in range(n_topics)]
        for doc, z, x in zip(docs, assignments, statuses):
            i = 0
            while i < len(doc):
                j = i + 1
                while j < len(doc) and x[j] == 1:
                    j += 1
                if j - i >= 2:
                    phrase = tuple(int(w) for w in doc[i:j])
                    phrase_counts[int(z[i])][phrase] += 1
                i = j

        def decode(phrase: Tuple[int, ...]) -> str:
            return corpus.vocabulary.unstem_phrase(phrase)

        topics: List[List[str]] = []
        unigrams: List[List[str]] = []
        for k in range(n_topics):
            ranked_phrases = [decode(p) for p, _ in phrase_counts[k].most_common(30)]
            top_word_ids = np.argsort(-topic_word[k])[:15]
            ranked_unigrams = [corpus.vocabulary.unstem_id(int(w)) for w in top_word_ids]
            # Fall back to unigrams when too few n-grams were chained.
            if len(ranked_phrases) < 10:
                ranked_phrases = ranked_phrases + [
                    u for u in ranked_unigrams if u not in ranked_phrases]
            topics.append(ranked_phrases)
            unigrams.append(ranked_unigrams)
        return MethodOutput(method=self.name, topics=topics, unigrams=unigrams)
