"""Adapters exposing ToPMine and plain LDA through the baseline interface.

The benchmark harness iterates over a list of
:class:`~repro.baselines.base.TopicalPhraseMethod` objects; these adapters
let ToPMine itself (and the unigram-LDA reference used in Table 3) slot into
that list alongside the four baselines.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

import numpy as np

from repro.baselines.base import TopicalPhraseMethod
from repro.core.topmine import ToPMine, ToPMineConfig, ToPMineResult
from repro.eval.output import MethodOutput
from repro.text.corpus import Corpus
from repro.topicmodel.lda import LDAConfig, LatentDirichletAllocation


class ToPMineMethod(TopicalPhraseMethod):
    """ToPMine wrapped in the common method interface."""

    name = "ToPMine"

    def __init__(self, config: Optional[ToPMineConfig] = None) -> None:
        self.config = config or ToPMineConfig()
        self.last_result: Optional[ToPMineResult] = None

    def fit(self, corpus: Corpus) -> MethodOutput:
        """Run the full ToPMine pipeline and wrap it as a method output."""
        result = ToPMine(self.config).fit(corpus)
        self.last_result = result
        topics: List[List[str]] = []
        for k in range(self.config.n_topics):
            phrases = list(result.visualization.top_phrases[k])
            # Back-fill with top unigrams so every topic offers enough
            # candidates for the evaluation tasks, mirroring the paper's
            # visualisation of unigrams + phrases.
            for unigram in result.visualization.top_unigrams[k]:
                if unigram not in phrases:
                    phrases.append(unigram)
            topics.append(phrases)
        return MethodOutput(method=self.name,
                            topics=topics,
                            unigrams=result.visualization.top_unigrams,
                            metadata={"timings": result.timings})


class LDAUnigramMethod(TopicalPhraseMethod):
    """Plain unigram LDA: topics are ranked unigram lists (no phrases).

    Included because Table 3 reports LDA's runtime as the reference point all
    topical-phrase methods are compared against.
    """

    name = "LDA"

    def __init__(self, config: Optional[LDAConfig] = None) -> None:
        self.config = config or LDAConfig()

    def fit(self, corpus: Corpus) -> MethodOutput:
        """Fit bag-of-words LDA and wrap it as a (phrase-free) method output."""
        model = LatentDirichletAllocation(self.config)
        docs = [doc.tokens for doc in corpus]
        state = model.fit(docs, vocabulary_size=corpus.vocabulary_size)
        phi = state.phi()
        topics: List[List[str]] = []
        for k in range(self.config.n_topics):
            word_ids = np.argsort(-phi[k])[:15]
            topics.append([corpus.vocabulary.unstem_id(int(w)) for w in word_ids])
        return MethodOutput(method=self.name, topics=topics, unigrams=topics)
