"""PD-LDA baseline — Lindsey, Headden & Stipicevic, EMNLP-CoNLL 2012.

PD-LDA ("Phrase-Discovering LDA") models each topic's word sequences with a
hierarchical Pitman–Yor process: the distribution over the next word given
an (n−1)-word context backs off, Chinese-restaurant style, to progressively
shorter contexts and ultimately to a uniform base measure.  Tokens are
grouped into n-grams that all share one topic.

Our reimplementation keeps the essential structure while simplifying the
seating arrangement bookkeeping (one table per distinct (context, word) pair
— the "minimal path" approximation commonly used for hierarchical CRPs):

* per topic, per context (up to ``max_context`` previous words in the same
  phrase), a restaurant with customers = token occurrences and back-off to
  the one-shorter context;
* a per-token phrase-continuation indicator (as in TNG) decides whether the
  token extends the current phrase (inheriting its topic) or starts a new
  unigram draw.

This preserves what the paper's comparison actually measures: PD-LDA's
per-token cost is much larger than LDA's (every sample walks the back-off
chain for every topic), so its runtime blows up on anything beyond small
corpora — which is exactly the behaviour Table 3 reports.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.base import TopicalPhraseMethod
from repro.eval.output import MethodOutput
from repro.text.corpus import Corpus
from repro.topicmodel.lda import _sample_index
from repro.utils.rng import SeedLike, new_rng

Context = Tuple[int, ...]


@dataclass
class PDLDAConfig:
    """Configuration for the PD-LDA baseline.

    Parameters
    ----------
    n_topics:
        Number of topics.
    alpha:
        Document-topic Dirichlet prior.
    discount, concentration:
        Pitman–Yor discount ``d`` and concentration ``θ`` shared by every
        restaurant in the hierarchy.
    max_context:
        Maximum back-off context length (phrase order − 1).
    continue_prior:
        Beta prior pseudo-count for the phrase-continuation switch.
    n_iterations:
        Gibbs sweeps.
    seed:
        Random seed.
    """

    n_topics: int = 10
    alpha: float = 1.0
    discount: float = 0.5
    concentration: float = 1.0
    max_context: int = 2
    continue_prior: float = 0.1
    n_iterations: int = 50
    seed: SeedLike = None


class _PYPHierarchy:
    """Minimal-path hierarchical Pitman–Yor predictive model for one topic."""

    def __init__(self, vocabulary_size: int, discount: float, concentration: float,
                 max_context: int) -> None:
        self.vocabulary_size = vocabulary_size
        self.discount = discount
        self.concentration = concentration
        self.max_context = max_context
        # customers[context][word], tables[context][word]
        self.customers: Dict[Context, Counter] = defaultdict(Counter)
        self.tables: Dict[Context, Counter] = defaultdict(Counter)
        self.context_customers: Dict[Context, int] = defaultdict(int)
        self.context_tables: Dict[Context, int] = defaultdict(int)

    # -- predictive probability (recursive back-off) -----------------------------------
    def probability(self, context: Context, word: int) -> float:
        context = context[-self.max_context:] if context else ()
        return self._probability(context, word)

    def _probability(self, context: Context, word: int) -> float:
        if len(context) == 0:
            base = 1.0 / self.vocabulary_size
        else:
            base = self._probability(context[1:], word)
        c = self.customers[context][word]
        t = self.tables[context][word]
        total_c = self.context_customers[context]
        total_t = self.context_tables[context]
        numerator = max(c - self.discount * t, 0.0) + (
            self.concentration + self.discount * total_t) * base
        return numerator / (self.concentration + total_c)

    # -- seat / unseat ---------------------------------------------------------------------
    def add(self, context: Context, word: int) -> None:
        context = context[-self.max_context:] if context else ()
        self._add(context, word)

    def _add(self, context: Context, word: int) -> None:
        if self.customers[context][word] == 0:
            # Minimal path: first customer opens a table and sends one
            # customer to the parent.
            self.tables[context][word] += 1
            self.context_tables[context] += 1
            if len(context) > 0:
                self._add(context[1:], word)
        self.customers[context][word] += 1
        self.context_customers[context] += 1

    def remove(self, context: Context, word: int) -> None:
        context = context[-self.max_context:] if context else ()
        self._remove(context, word)

    def _remove(self, context: Context, word: int) -> None:
        self.customers[context][word] -= 1
        self.context_customers[context] -= 1
        if self.customers[context][word] == 0:
            self.tables[context][word] -= 1
            self.context_tables[context] -= 1
            if len(context) > 0:
                self._remove(context[1:], word)


class PDLDAMethod(TopicalPhraseMethod):
    """PD-LDA with simplified hierarchical Pitman–Yor back-off."""

    name = "PDLDA"

    def __init__(self, config: Optional[PDLDAConfig] = None) -> None:
        self.config = config or PDLDAConfig()

    def fit(self, corpus: Corpus) -> MethodOutput:
        """Fit PD-LDA by collapsed Gibbs over the Pitman-Yor hierarchy."""
        config = self.config
        rng = new_rng(config.seed)
        n_topics = config.n_topics
        vocabulary_size = corpus.vocabulary_size

        docs = [np.asarray(doc.tokens, dtype=np.int64) for doc in corpus]
        doc_topic = np.zeros((len(docs), n_topics), dtype=np.float64)
        hierarchies = [_PYPHierarchy(vocabulary_size, config.discount,
                                     config.concentration, config.max_context)
                       for _ in range(n_topics)]
        continue_counts = np.full(2, config.continue_prior, dtype=np.float64)

        assignments: List[np.ndarray] = []
        continuations: List[np.ndarray] = []
        # Seating record: the exact (topic, context) each token was added
        # with, so removal always mirrors the original addition even when the
        # continuation flags of neighbouring tokens have since changed.
        seats: List[List[Tuple[int, Context]]] = []

        # -- initialisation -----------------------------------------------------------------
        for d, doc in enumerate(docs):
            z = rng.integers(0, n_topics, size=len(doc))
            c = np.zeros(len(doc), dtype=np.int64)
            doc_seats: List[Tuple[int, Context]] = []
            for i, w in enumerate(doc):
                if i > 0 and rng.random() < 0.1:
                    c[i] = 1
                    z[i] = z[i - 1]
                context = self._context(doc, c, i)
                hierarchies[int(z[i])].add(context, int(w))
                doc_topic[d, int(z[i])] += 1
                doc_seats.append((int(z[i]), context))
                if i > 0:
                    continue_counts[c[i]] += 1
            assignments.append(z)
            continuations.append(c)
            seats.append(doc_seats)

        # -- Gibbs sweeps ---------------------------------------------------------------------
        for _ in range(config.n_iterations):
            for d, doc in enumerate(docs):
                z = assignments[d]
                c = continuations[d]
                doc_seats = seats[d]
                for i in range(len(doc)):
                    w = int(doc[i])
                    c_old = int(c[i])
                    k_old, context_old = doc_seats[i]
                    hierarchies[k_old].remove(context_old, w)
                    doc_topic[d, k_old] -= 1
                    if i > 0:
                        continue_counts[c_old] -= 1

                    # Candidate states: (c=0, any topic) plus (c=1, prev topic).
                    weights: List[float] = []
                    states: List[Tuple[int, int]] = []
                    for k in range(n_topics):
                        p = (config.alpha + doc_topic[d, k]) * \
                            hierarchies[k].probability((), w)
                        if i > 0:
                            p *= continue_counts[0]
                        weights.append(p)
                        states.append((0, k))
                    if i > 0:
                        k_prev = int(z[i - 1])
                        context = self._context_with(doc, c, i, continue_flag=1)
                        p = (config.alpha + doc_topic[d, k_prev]) * \
                            hierarchies[k_prev].probability(context, w) * continue_counts[1]
                        weights.append(p)
                        states.append((1, k_prev))

                    choice = _sample_index(rng, np.asarray(weights))
                    c_new, k_new = states[choice]

                    c[i] = c_new
                    z[i] = k_new
                    context_new = self._context(doc, c, i)
                    hierarchies[k_new].add(context_new, w)
                    doc_topic[d, k_new] += 1
                    doc_seats[i] = (k_new, context_new)
                    if i > 0:
                        continue_counts[c_new] += 1

        return self._build_output(corpus, docs, assignments, continuations)

    # -- helpers -------------------------------------------------------------------------------
    def _context(self, doc: np.ndarray, continuations: np.ndarray, i: int) -> Context:
        """Context of token ``i``: the preceding tokens of its current phrase."""
        if i == 0 or continuations[i] == 0:
            return ()
        start = i
        while start > 0 and continuations[start] == 1:
            start -= 1
        return tuple(int(w) for w in doc[start:i])

    def _context_with(self, doc: np.ndarray, continuations: np.ndarray, i: int,
                      continue_flag: int) -> Context:
        saved = continuations[i]
        continuations[i] = continue_flag
        context = self._context(doc, continuations, i)
        continuations[i] = saved
        return context

    def _build_output(self, corpus: Corpus, docs: List[np.ndarray],
                      assignments: List[np.ndarray],
                      continuations: List[np.ndarray]) -> MethodOutput:
        n_topics = self.config.n_topics
        phrase_counts: List[Counter] = [Counter() for _ in range(n_topics)]
        unigram_counts: List[Counter] = [Counter() for _ in range(n_topics)]
        for doc, z, c in zip(docs, assignments, continuations):
            i = 0
            while i < len(doc):
                j = i + 1
                while j < len(doc) and c[j] == 1:
                    j += 1
                topic = int(z[i])
                if j - i >= 2:
                    phrase_counts[topic][tuple(int(w) for w in doc[i:j])] += 1
                for w in doc[i:j]:
                    unigram_counts[topic][int(w)] += 1
                i = j

        topics: List[List[str]] = []
        unigrams: List[List[str]] = []
        for k in range(n_topics):
            ranked = [corpus.vocabulary.unstem_phrase(p)
                      for p, _ in phrase_counts[k].most_common(30)]
            ranked_unigrams = [corpus.vocabulary.unstem_id(w)
                               for w, _ in unigram_counts[k].most_common(15)]
            if len(ranked) < 10:
                ranked = ranked + [u for u in ranked_unigrams if u not in ranked]
            topics.append(ranked)
            unigrams.append(ranked_unigrams)
        return MethodOutput(method=self.name, topics=topics, unigrams=unigrams)
