"""Turbo Topics baseline — Blei & Lafferty, 2009.

Turbo Topics visualises LDA topics with multi-word expressions found by a
*post-hoc* significance analysis: starting from the per-token topic
assignments of a fitted LDA model, it repeatedly

1. collects, per topic, the counts of adjacent word pairs whose tokens are
   both assigned to the topic (a back-off n-gram model of the topic's
   token stream);
2. tests each pair with a permutation test: the observed likelihood-ratio
   score of the bigram is compared against scores obtained after randomly
   permuting the topic's token stream — only pairs whose observed score
   exceeds a high quantile of the permuted scores are accepted;
3. merges accepted pairs into single units and repeats, so longer phrases
   grow recursively.

The permutation test is what makes the method expensive (the paper estimates
days of runtime on the larger corpora); the cost scales with
``n_permutations × topic stream length × rounds``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import TopicalPhraseMethod
from repro.eval.output import MethodOutput
from repro.text.corpus import Corpus
from repro.topicmodel.lda import LDAConfig, LatentDirichletAllocation
from repro.utils.rng import SeedLike, new_rng

Unit = Tuple[int, ...]


@dataclass
class TurboTopicsConfig:
    """Configuration for the Turbo Topics baseline.

    Parameters
    ----------
    n_topics:
        Number of LDA topics.
    n_iterations:
        LDA Gibbs sweeps.
    min_count:
        Minimum bigram count considered for testing.
    n_permutations:
        Number of permutations per significance test round.
    significance_level:
        A bigram is accepted when its observed score exceeds the
        ``1 - significance_level`` quantile of the permuted scores.
    max_rounds:
        Maximum number of merge rounds (bounds the phrase length).
    seed:
        Random seed for LDA and the permutation tests.
    """

    n_topics: int = 10
    n_iterations: int = 100
    min_count: int = 5
    n_permutations: int = 20
    significance_level: float = 0.05
    max_rounds: int = 3
    seed: SeedLike = None


class TurboTopicsMethod(TopicalPhraseMethod):
    """Turbo Topics: LDA + permutation-tested n-gram merging."""

    name = "Turbo"

    def __init__(self, config: Optional[TurboTopicsConfig] = None) -> None:
        self.config = config or TurboTopicsConfig()

    def fit(self, corpus: Corpus) -> MethodOutput:
        """Run LDA, then Turbo Topics back-off n-gram merging, and wrap the output."""
        config = self.config
        rng = new_rng(config.seed)
        lda = LatentDirichletAllocation(LDAConfig(n_topics=config.n_topics,
                                                  n_iterations=config.n_iterations,
                                                  seed=config.seed))
        docs = [doc.tokens for doc in corpus]
        state = lda.fit(docs, vocabulary_size=corpus.vocabulary_size)

        # Per topic: the stream of (token) units assigned to the topic, in
        # document order, with document boundaries respected.
        topic_streams = self._topic_streams(docs, state.assignments)

        phi = state.phi()
        topics: List[List[str]] = []
        unigrams: List[List[str]] = []
        for k in range(config.n_topics):
            phrase_counts = self._grow_phrases(topic_streams[k], rng)
            ranked = [corpus.vocabulary.unstem_phrase(p)
                      for p, _ in phrase_counts.most_common(30) if len(p) >= 2]
            top_word_ids = np.argsort(-phi[k])[:15]
            topic_unigrams = [corpus.vocabulary.unstem_id(int(w)) for w in top_word_ids]
            if len(ranked) < 10:
                ranked = ranked + [u for u in topic_unigrams if u not in ranked]
            topics.append(ranked)
            unigrams.append(topic_unigrams)
        return MethodOutput(method=self.name, topics=topics, unigrams=unigrams)

    # -- per-topic token streams -----------------------------------------------------------
    def _topic_streams(self, docs: Sequence[Sequence[int]],
                       assignments: Sequence[np.ndarray]) -> List[List[List[Unit]]]:
        """Return, per topic, a list of per-document unit sequences."""
        n_topics = self.config.n_topics
        streams: List[List[List[Unit]]] = [[] for _ in range(n_topics)]
        for doc, z in zip(docs, assignments):
            per_topic: Dict[int, List[Unit]] = {}
            for w, k in zip(doc, z):
                per_topic.setdefault(int(k), []).append((int(w),))
            for k, units in per_topic.items():
                streams[k].append(units)
        return streams

    # -- recursive significance-tested merging -------------------------------------------------
    def _grow_phrases(self, documents: List[List[Unit]],
                      rng: np.random.Generator) -> Counter:
        """Merge significant adjacent unit pairs for ``max_rounds`` rounds."""
        config = self.config
        documents = [list(units) for units in documents]
        for _ in range(config.max_rounds):
            significant = self._significant_pairs(documents, rng)
            if not significant:
                break
            documents = [self._merge_units(units, significant) for units in documents]
        # Final phrase counts: multi-unit tokens that survived the merging.
        counts: Counter = Counter()
        for units in documents:
            for unit in units:
                counts[unit] += 1
        return counts

    def _significant_pairs(self, documents: List[List[Unit]],
                           rng: np.random.Generator) -> set:
        """Permutation-test adjacent unit pairs; return the accepted set."""
        config = self.config
        observed = self._pair_scores(documents)
        candidates = {pair: score for pair, score in observed.items()
                      if self._pair_count(documents, pair) >= config.min_count}
        if not candidates:
            return set()

        # Null distribution: scores of the same pairs after permuting every
        # document's unit order ``n_permutations`` times.
        null_scores: Dict[Tuple[Unit, Unit], List[float]] = {p: [] for p in candidates}
        for _ in range(config.n_permutations):
            permuted = [list(rng.permutation(len(units))) for units in documents]
            shuffled = [[units[i] for i in order]
                        for units, order in zip(documents, permuted)]
            scores = self._pair_scores(shuffled)
            for pair in candidates:
                null_scores[pair].append(scores.get(pair, 0.0))

        accepted = set()
        for pair, score in candidates.items():
            null = np.asarray(null_scores[pair])
            threshold = np.quantile(null, 1.0 - config.significance_level) if null.size else 0.0
            if score > threshold:
                accepted.add(pair)
        return accepted

    def _pair_scores(self, documents: List[List[Unit]]) -> Dict[Tuple[Unit, Unit], float]:
        """Likelihood-ratio-style score of every adjacent unit pair."""
        unit_counts: Counter = Counter()
        pair_counts: Counter = Counter()
        total = 0
        for units in documents:
            total += len(units)
            unit_counts.update(units)
            pair_counts.update(zip(units, units[1:]))
        if total == 0:
            return {}
        scores: Dict[Tuple[Unit, Unit], float] = {}
        for pair, joint in pair_counts.items():
            left, right = pair
            expected = unit_counts[left] * unit_counts[right] / total
            if expected <= 0:
                continue
            # Simple likelihood-ratio statistic: 2·f·log(f/E[f]).
            scores[pair] = 2.0 * joint * np.log(max(joint, 1e-12) / expected)
        return scores

    def _pair_count(self, documents: List[List[Unit]], pair: Tuple[Unit, Unit]) -> int:
        count = 0
        for units in documents:
            count += sum(1 for a, b in zip(units, units[1:]) if (a, b) == pair)
        return count

    def _merge_units(self, units: List[Unit], significant: set) -> List[Unit]:
        """Greedily merge adjacent unit pairs that were accepted."""
        merged: List[Unit] = []
        i = 0
        while i < len(units):
            if i + 1 < len(units) and (units[i], units[i + 1]) in significant:
                merged.append(units[i] + units[i + 1])
                i += 2
            else:
                merged.append(units[i])
                i += 1
        return merged
