"""KERT baseline — Danilevsky et al., SDM 2014.

KERT constructs topical key phrases as a *post-process* to LDA:

1. run unigram LDA;
2. for every topic, collect from each document the bag of words that were
   assigned to that topic (one "transaction" per document per topic);
3. run **unconstrained** frequent pattern mining over those transactions —
   word order and contiguity are ignored, which is why KERT scales poorly on
   long documents (the transaction width explodes) and why its phrases are
   often agglomerations rather than real collocations (the phrase-quality
   weakness the paper observes);
4. rank the candidate patterns by four heuristic criteria — coverage,
   purity, phraseness and completeness — combined multiplicatively.

The ranking heuristics follow the KERT paper's definitions, computed from
the same topical transactions.
"""

from __future__ import annotations

import itertools
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import TopicalPhraseMethod
from repro.eval.output import MethodOutput
from repro.text.corpus import Corpus
from repro.topicmodel.lda import LDAConfig, LatentDirichletAllocation
from repro.utils.rng import SeedLike

Pattern = FrozenSet[int]


@dataclass
class KERTConfig:
    """Configuration for the KERT baseline.

    Parameters
    ----------
    n_topics:
        Number of LDA topics.
    min_support:
        Minimum number of topical transactions a pattern must appear in.
    max_pattern_size:
        Maximum number of words per mined pattern (KERT keeps these small).
    n_iterations:
        LDA Gibbs sweeps.
    omega:
        Weight trading off phraseness vs. purity in the ranking (0-1).
    seed:
        Random seed for LDA.
    """

    n_topics: int = 10
    min_support: int = 5
    max_pattern_size: int = 3
    n_iterations: int = 100
    omega: float = 0.5
    seed: SeedLike = None


class KERTMethod(TopicalPhraseMethod):
    """KERT: LDA + per-topic unconstrained frequent pattern mining + ranking."""

    name = "KERT"

    def __init__(self, config: Optional[KERTConfig] = None) -> None:
        self.config = config or KERTConfig()

    # -- fitting -------------------------------------------------------------------------
    def fit(self, corpus: Corpus) -> MethodOutput:
        """Run LDA, then KERT phrase extraction, and wrap the output."""
        config = self.config
        lda = LatentDirichletAllocation(LDAConfig(n_topics=config.n_topics,
                                                  n_iterations=config.n_iterations,
                                                  seed=config.seed))
        docs = [doc.tokens for doc in corpus]
        state = lda.fit(docs, vocabulary_size=corpus.vocabulary_size)

        transactions = self._topical_transactions(docs, state.assignments)
        topic_patterns = [
            self._mine_patterns(transactions[k]) for k in range(config.n_topics)
        ]
        ranked = [
            self._rank_patterns(k, topic_patterns, transactions)
            for k in range(config.n_topics)
        ]

        phi = state.phi()
        topics: List[List[str]] = []
        unigrams: List[List[str]] = []
        for k in range(config.n_topics):
            decoded = [self._decode(corpus, pattern, phi[k]) for pattern, _ in ranked[k][:30]]
            top_word_ids = np.argsort(-phi[k])[:15]
            topic_unigrams = [corpus.vocabulary.unstem_id(int(w)) for w in top_word_ids]
            if len(decoded) < 10:
                decoded = decoded + [u for u in topic_unigrams if u not in decoded]
            topics.append(decoded)
            unigrams.append(topic_unigrams)
        return MethodOutput(method=self.name, topics=topics, unigrams=unigrams)

    # -- topical transactions ---------------------------------------------------------------
    def _topical_transactions(self, docs: Sequence[Sequence[int]],
                              assignments: Sequence[np.ndarray]) -> List[List[FrozenSet[int]]]:
        """Per topic, one word-set transaction per document."""
        n_topics = self.config.n_topics
        transactions: List[List[FrozenSet[int]]] = [[] for _ in range(n_topics)]
        for doc, z in zip(docs, assignments):
            per_topic_words: Dict[int, set] = defaultdict(set)
            for w, k in zip(doc, z):
                per_topic_words[int(k)].add(int(w))
            for k, words in per_topic_words.items():
                if words:
                    transactions[k].append(frozenset(words))
        return transactions

    # -- unconstrained frequent pattern mining (Apriori over word sets) -----------------------
    def _mine_patterns(self, transactions: List[FrozenSet[int]]) -> Dict[Pattern, int]:
        """Mine frequent word-set patterns of size 1..max_pattern_size."""
        min_support = self.config.min_support
        max_size = self.config.max_pattern_size

        counts: Dict[Pattern, int] = {}
        # size-1
        singles: Counter = Counter()
        for transaction in transactions:
            for w in transaction:
                singles[frozenset((w,))] += 1
        frequent = {p: c for p, c in singles.items() if c >= min_support}
        counts.update(frequent)

        current = list(frequent)
        size = 2
        while current and size <= max_size:
            candidate_counts: Counter = Counter()
            frequent_words = {next(iter(p)) for p in frequent} if size == 2 else None
            for transaction in transactions:
                if size == 2:
                    items = sorted(w for w in transaction if frozenset((w,)) in frequent)
                    for combo in itertools.combinations(items, 2):
                        candidate_counts[frozenset(combo)] += 1
                else:
                    # candidate generation from frequent (size-1)-patterns present
                    present = [p for p in current if p <= transaction]
                    seen: set = set()
                    for a in present:
                        for w in transaction:
                            if w not in a:
                                candidate = a | {w}
                                if len(candidate) == size and candidate not in seen:
                                    seen.add(frozenset(candidate))
                    for candidate in seen:
                        candidate_counts[candidate] += 1
            level = {p: c for p, c in candidate_counts.items() if c >= min_support}
            counts.update(level)
            current = list(level)
            size += 1
        return counts

    # -- ranking ----------------------------------------------------------------------------
    def _rank_patterns(self, topic: int,
                       topic_patterns: List[Dict[Pattern, int]],
                       transactions: List[List[FrozenSet[int]]]) -> List[Tuple[Pattern, float]]:
        """Rank topic's patterns by coverage × purity × phraseness × completeness."""
        patterns = topic_patterns[topic]
        if not patterns:
            return []
        n_transactions = max(len(transactions[topic]), 1)
        total_across_topics = {
            pattern: sum(topic_patterns[j].get(pattern, 0)
                         for j in range(len(topic_patterns)))
            for pattern in patterns
        }

        scored: List[Tuple[Pattern, float]] = []
        for pattern, count in patterns.items():
            if len(pattern) < 2:
                continue
            coverage = count / n_transactions
            purity = count / max(total_across_topics[pattern], 1)
            # Phraseness: how much more often the words occur together than
            # independence over the topical transactions predicts.
            independent = 1.0
            for w in pattern:
                independent *= patterns.get(frozenset((w,)), 1) / n_transactions
            phraseness = np.log(max(coverage, 1e-12) / max(independent, 1e-12))
            # Completeness: penalise patterns dominated by a frequent superset.
            completeness = 1.0
            for other, other_count in patterns.items():
                if len(other) == len(pattern) + 1 and pattern < other:
                    completeness = min(completeness,
                                       1.0 - other_count / max(count, 1))
            score = (coverage ** (1 - self.config.omega)
                     * max(purity, 1e-12) ** self.config.omega
                     * max(phraseness, 0.0)
                     * max(completeness, 0.0))
            scored.append((pattern, float(score)))
        scored.sort(key=lambda item: -item[1])
        return scored

    # -- decoding -----------------------------------------------------------------------------
    def _decode(self, corpus: Corpus, pattern: Pattern, phi_k: np.ndarray) -> str:
        """Render a word-set pattern as a string, most topical word first.

        KERT patterns are unordered; rendering in descending topic probability
        mimics how the original system displays them.
        """
        ordered = sorted(pattern, key=lambda w: -phi_k[w])
        return " ".join(corpus.vocabulary.unstem_id(w) for w in ordered)
