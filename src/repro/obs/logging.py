"""Structured JSON event logging for servers and supervisors.

One line per event on stderr, machine-parseable, so fleet workers and the
stream supervisor can report slow requests and refresh failures without a
logging framework: ``{"ts": ..., "event": ..., **fields}``.  Events are
best-effort — an unserialisable field degrades to ``repr`` and a broken
stderr never takes down the server.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, TextIO


def log_event(event: str, file: TextIO = None, **fields: Any) -> str:
    """Emit one structured JSON event line (returns the line for tests).

    ``ts`` is Unix epoch seconds; ``event`` is a short machine-stable name
    (``slow_request``, ``stream_refresh_error``, ...); remaining keyword
    arguments become top-level JSON fields.  The output sink parameter is
    named ``file`` (as in :func:`print`) precisely so that ``stream`` stays
    available as an ordinary event field — the stream supervisor logs the
    stream directory under that key.
    """
    payload = {"ts": round(time.time(), 3), "event": event}
    payload.update(fields)
    try:
        line = json.dumps(payload, sort_keys=True, default=repr)
    except (TypeError, ValueError):  # pragma: no cover - repr default covers
        line = json.dumps({"ts": payload["ts"], "event": event})
    try:
        print(line, file=file if file is not None else sys.stderr,
              flush=True)
    except (OSError, ValueError):  # closed stderr must never kill serving
        pass
    return line
