"""Metrics history: an append-only, size-bounded ring of fleet samples.

A ``/metrics`` scrape is point-in-time — it can say *how many* requests
failed since the fleet started, never whether the failure **rate** is
rising right now.  :class:`HistoryRecorder` closes that gap: a background
thread (the fleet parent in multi-process mode, the server itself
otherwise) samples the aggregated shard state every
``ServeConfig.history_interval_seconds`` and appends one fixed-width
binary **frame** per sample into segment files under
``<metrics_dir>/history/``.  :func:`read_window` turns any lookback over
those frames into rates, deltas, and histogram-quantile estimates — the
raw material of the SLO engine (:mod:`repro.obs.slo`).

Crash safety mirrors :class:`~repro.stream.log.DocumentLog` and the
metric shards themselves:

* every frame carries a trailing CRC-32 over its payload, and readers
  stop at the first frame that is short or fails its checksum — a SIGKILL
  mid-frame-write loses at most the frame being written, never tears an
  earlier one;
* segments are created atomically (header written to a ``.tmp`` file,
  then ``os.replace``), so a SIGKILL mid-rotation leaves at worst an
  orphaned temp file that the next rotation removes;
* the ring is bounded: segments rotate at ``max_frames_per_segment``
  frames and only the newest ``max_segments`` survive, so history can
  never grow without bound.

Multiprocess correctness: frames record the **fleet totals**
(:meth:`~repro.obs.shards.FleetSample.totals`), which fold the reaped
accumulator in, so counter series stay monotone across worker deaths;
:class:`HistoryWindow` additionally clamps every delta at zero, so even a
regressing series (a gauge vanishing with its worker, an operator
deleting the reaped shard) can never fabricate a negative rate.
"""

from __future__ import annotations

import os
import struct
import threading
import time
import zlib
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.shards import (KIND_COUNTER, KIND_GAUGE, ShardEntry,
                              ShardWriter, bucket_bounds, collect_shards,
                              histogram_kind)

#: Magic bytes opening every history segment file.
HISTORY_MAGIC = b"RPROHIS1"

#: Directory (under the metrics directory) holding the segment ring.
HISTORY_DIRNAME = "history"

_SEGMENT_TEMPLATE = "history-{index:08d}.seg"
_SEGMENT_GLOB = "history-*.seg"
_HEADER_PREFIX = struct.Struct("<II")  # header_len, reserved

#: Column-name prefixes encoding the metric kind a column was sampled from.
_COUNTER_PREFIX = "c:"
_GAUGE_PREFIX = "g:"
_HIST_PREFIX = "h:"


def history_dir(metrics_dir: Union[str, Path]) -> Path:
    """Return the history directory under ``metrics_dir``."""
    return Path(metrics_dir) / HISTORY_DIRNAME


def _flatten_totals(totals: Dict[str, ShardEntry]) -> Dict[str, float]:
    """Flatten fleet totals into the flat ``column -> value`` frame form.

    Counters become ``c:<name>``, gauges ``g:<name>``; a histogram expands
    to ``h:<name>:sum`` / ``h:<name>:count`` plus one ``h:<name>:<i>``
    column per (non-cumulative) bucket including the overflow bucket, so a
    window can difference buckets and estimate quantiles.
    """
    columns: Dict[str, float] = {}
    for name in sorted(totals):
        entry = totals[name]
        if entry.kind == KIND_COUNTER:
            columns[_COUNTER_PREFIX + name] = entry.value
        elif entry.kind == KIND_GAUGE:
            columns[_GAUGE_PREFIX + name] = entry.value
        else:
            columns[f"{_HIST_PREFIX}{name}:sum"] = entry.sum
            columns[f"{_HIST_PREFIX}{name}:count"] = entry.count
            for index, count in enumerate(entry.bucket_counts):
                columns[f"{_HIST_PREFIX}{name}:{index}"] = float(count)
    return columns


class _Segment:
    """One open history segment: fixed column schema, append-only frames."""

    def __init__(self, path: Path, columns: Sequence[str]) -> None:
        self.path = path
        self.columns = tuple(columns)
        self.n_frames = 0
        header = "\n".join(self.columns).encode("utf-8")
        blob = HISTORY_MAGIC + _HEADER_PREFIX.pack(len(header), 0) + header
        # Atomic creation: a reader (or a post-crash reopen) either sees a
        # complete header or no segment at all — never a torn one.
        temporary = path.with_name(path.name + ".tmp")
        temporary.write_bytes(blob)
        os.replace(temporary, path)
        self._file = open(path, "ab")

    def append(self, timestamp: float, values: Sequence[float]) -> None:
        """Append one CRC-guarded frame (timestamp + one value per column)."""
        payload = struct.pack(f"<{1 + len(values)}d", timestamp, *values)
        frame = payload + struct.pack("<Q", zlib.crc32(payload))
        self._file.write(frame)
        self._file.flush()
        self.n_frames += 1

    def close(self) -> None:
        """Close the underlying file handle."""
        self._file.close()


def _read_segment(path: Path) -> List[Tuple[float, Dict[str, float]]]:
    """Parse one segment into ``[(timestamp, {column: value}), ...]``.

    Tolerant by construction: a missing/foreign header parses as empty,
    and reading stops at the first short or CRC-failing frame (appends are
    sequential, so only the final frame can be torn).
    """
    try:
        data = path.read_bytes()
    except OSError:
        return []
    prefix_end = len(HISTORY_MAGIC) + _HEADER_PREFIX.size
    if len(data) < prefix_end or not data.startswith(HISTORY_MAGIC):
        return []
    header_len, _ = _HEADER_PREFIX.unpack_from(data, len(HISTORY_MAGIC))
    frames_start = prefix_end + header_len
    if frames_start > len(data):
        return []
    header = data[prefix_end:frames_start].decode("utf-8", errors="replace")
    columns = [column for column in header.split("\n") if column]
    frame_size = 8 * (1 + len(columns)) + 8  # ts + values + crc
    frames: List[Tuple[float, Dict[str, float]]] = []
    offset = frames_start
    while offset + frame_size <= len(data):
        payload = data[offset:offset + frame_size - 8]
        (crc,) = struct.unpack_from("<Q", data, offset + frame_size - 8)
        if crc != zlib.crc32(payload):
            break
        unpacked = struct.unpack(f"<{1 + len(columns)}d", payload)
        frames.append((unpacked[0], dict(zip(columns, unpacked[1:]))))
        offset += frame_size
    return frames


def _segment_index(path: Path) -> int:
    """Ring position encoded in a segment file name (-1 when foreign)."""
    stem = path.name
    if not (stem.startswith("history-") and stem.endswith(".seg")):
        return -1
    try:
        return int(stem[len("history-"):-len(".seg")])
    except ValueError:
        return -1


def read_history(directory: Union[str, Path]
                 ) -> List[Tuple[float, Dict[str, float]]]:
    """Read every committed frame under ``directory``, oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    segments = sorted((path for path in directory.glob(_SEGMENT_GLOB)
                       if _segment_index(path) >= 0), key=_segment_index)
    frames: List[Tuple[float, Dict[str, float]]] = []
    for segment in segments:
        frames.extend(_read_segment(segment))
    return frames


class HistoryWindow:
    """Rates, deltas, and quantile estimates over a slice of history.

    Every delta is clamped at zero: fleet counter totals are monotone by
    construction (the reaper folds dead workers' counts into the
    accumulator), but a window must stay safe even against regressing
    input — a negative rate is never a valid answer.
    """

    def __init__(self, frames: Sequence[Tuple[float, Dict[str, float]]]
                 ) -> None:
        self.frames = list(frames)

    @property
    def n_frames(self) -> int:
        """Number of committed frames inside the window."""
        return len(self.frames)

    def span_seconds(self) -> float:
        """Wall-clock distance between the first and last frame."""
        if len(self.frames) < 2:
            return 0.0
        return max(0.0, self.frames[-1][0] - self.frames[0][0])

    def _delta(self, column: str) -> Optional[float]:
        """Last-minus-first value of ``column``, clamped at zero."""
        values = [frame[column] for _, frame in self.frames
                  if column in frame]
        if len(values) < 2:
            return None
        return max(0.0, values[-1] - values[0])

    def counter_delta(self, name: str) -> Optional[float]:
        """Increase of counter ``name`` across the window (never negative)."""
        return self._delta(_COUNTER_PREFIX + name)

    def counter_rate(self, name: str) -> Optional[float]:
        """Per-second increase of counter ``name`` (never negative)."""
        delta = self.counter_delta(name)
        span = self.span_seconds()
        if delta is None or span <= 0.0:
            return None
        return delta / span

    def gauge_latest(self, name: str) -> Optional[float]:
        """Most recent sample of gauge ``name`` inside the window."""
        column = _GAUGE_PREFIX + name
        for _, frame in reversed(self.frames):
            if column in frame:
                return frame[column]
        return None

    def histogram_count_delta(self, name: str) -> Optional[float]:
        """Observations recorded into histogram ``name`` over the window."""
        return self._delta(f"{_HIST_PREFIX}{name}:count")

    def histogram_mean(self, name: str) -> Optional[float]:
        """Mean observed value over the window (sum delta / count delta)."""
        count = self._delta(f"{_HIST_PREFIX}{name}:count")
        total = self._delta(f"{_HIST_PREFIX}{name}:sum")
        if not count or total is None:
            return None
        return total / count

    def quantile(self, name: str, q: float) -> Optional[float]:
        """Estimate the ``q``-th percentile of histogram ``name``.

        Differences each (non-cumulative) bucket across the window,
        clamps per-bucket deltas at zero, and interpolates linearly inside
        the bucket holding the target rank.  Observations that landed in
        the overflow bucket report the largest finite bound (the estimate
        saturates rather than inventing a value beyond the instrumented
        range).  Returns ``None`` when the window recorded no
        observations.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"quantile q must be in [0, 100], got {q}")
        bounds = bucket_bounds(histogram_kind(name))
        deltas: List[float] = []
        for index in range(len(bounds) + 1):  # + overflow
            delta = self._delta(f"{_HIST_PREFIX}{name}:{index}")
            if delta is None:
                return None
            deltas.append(delta)
        total = sum(deltas)
        if total <= 0.0:
            return None
        rank = (q / 100.0) * total
        cumulative = 0.0
        for index, delta in enumerate(deltas):
            cumulative += delta
            if cumulative >= rank and delta > 0.0:
                if index >= len(bounds):  # overflow bucket: saturate
                    return float(bounds[-1])
                lower = 0.0 if index == 0 else float(bounds[index - 1])
                upper = float(bounds[index])
                fraction = (rank - (cumulative - delta)) / delta
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return float(bounds[-1])

    def ratio(self, numerator: str,
              denominators: Sequence[str]) -> Optional[float]:
        """Windowed counter ratio ``Δnum / Σ Δdenominators``.

        Returns ``0.0`` when the denominator delta is zero (no traffic
        means no budget burned) and ``None`` when any series is missing.
        """
        top = self.counter_delta(numerator)
        if top is None:
            return None
        bottom = 0.0
        for name in denominators:
            delta = self.counter_delta(name)
            if delta is None:
                return None
            bottom += delta
        if bottom <= 0.0:
            return 0.0
        return min(top / bottom, 1.0)


def read_window(directory: Union[str, Path],
                seconds: Optional[float] = None) -> HistoryWindow:
    """Return a :class:`HistoryWindow` over the last ``seconds`` of history.

    ``seconds=None`` selects every committed frame.  The lookback anchors
    at the newest frame's timestamp (not the caller's clock), so a paused
    recorder still yields its full trailing window.
    """
    frames = read_history(directory)
    if seconds is not None and frames:
        horizon = frames[-1][0] - seconds
        frames = [frame for frame in frames if frame[0] >= horizon]
    return HistoryWindow(frames)


class HistoryRecorder:
    """Background sampler appending fleet-total frames to the history ring.

    Exactly one recorder may write a metrics directory's history at a
    time: the fleet parent in multi-process mode, the server itself when
    in-process.  ``inline`` shards (label, writer) cover the in-process
    case where the server's own shard is the freshest source, mirroring
    :func:`~repro.obs.shards.collect_shards`.

    Parameters
    ----------
    metrics_dir:
        The fleet's metrics directory; frames land under its
        ``history/`` subdirectory.
    interval:
        Seconds between samples (``ServeConfig.history_interval_seconds``).
    inline:
        Extra in-process shard writers to fold into every sample.
    max_frames_per_segment / max_segments:
        Ring bounds: segments rotate at the frame cap and only the newest
        ``max_segments`` files survive a rotation.
    clock:
        Timestamp source (epoch seconds); injectable for tests.
    """

    def __init__(self, metrics_dir: Union[str, Path], interval: float, *,
                 inline: Sequence[Tuple[str, ShardWriter]] = (),
                 max_frames_per_segment: int = 512,
                 max_segments: int = 16,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if interval <= 0:
            raise ValueError("history interval must be > 0")
        if max_frames_per_segment < 1 or max_segments < 1:
            raise ValueError("history ring bounds must be >= 1")
        self.metrics_dir = Path(metrics_dir)
        self.directory = history_dir(metrics_dir)
        self.interval = float(interval)
        self.inline = tuple(inline)
        self.max_frames_per_segment = max_frames_per_segment
        self.max_segments = max_segments
        self._clock = clock if clock is not None else time.time
        self._segment: Optional[_Segment] = None
        self._next_index = max(
            (_segment_index(path) for path in
             self.directory.glob(_SEGMENT_GLOB)), default=-1) + 1
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- sampling ----------------------------------------------------------------------
    def sample_once(self) -> Dict[str, float]:
        """Take one sample now and append its frame (returns the columns)."""
        sample = collect_shards(self.metrics_dir, inline=self.inline)
        columns = _flatten_totals(sample.totals())
        with self._lock:
            self._append(self._clock(), columns)
        return columns

    def _append(self, timestamp: float, columns: Dict[str, float]) -> None:
        names = tuple(sorted(columns))
        segment = self._segment
        if segment is None or segment.columns != names or \
                segment.n_frames >= self.max_frames_per_segment:
            self._rotate(names)
            segment = self._segment
        segment.append(timestamp, [columns[name] for name in segment.columns])

    def _rotate(self, columns: Tuple[str, ...]) -> None:
        """Open the next segment and trim the ring (atomic per segment)."""
        if self._segment is not None:
            self._segment.close()
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / _SEGMENT_TEMPLATE.format(
            index=self._next_index)
        self._next_index += 1
        self._segment = _Segment(path, columns)
        kept = sorted((candidate for candidate in
                       self.directory.glob(_SEGMENT_GLOB)
                       if _segment_index(candidate) >= 0),
                      key=_segment_index)
        for stale in kept[:-self.max_segments]:
            try:
                stale.unlink()
            except OSError:
                pass
        for orphan in self.directory.glob(_SEGMENT_GLOB + ".tmp"):
            try:
                orphan.unlink()
            except OSError:
                pass

    # -- lifecycle ---------------------------------------------------------------------
    def start(self) -> None:
        """Start the background sampling thread (idempotent)."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="history-recorder", daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.sample_once()
            except Exception:  # sampling must never kill the owner
                pass

    def stop(self) -> None:
        """Stop the thread and close the open segment (idempotent)."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)
        with self._lock:
            if self._segment is not None:
                self._segment.close()
                self._segment = None

    def window(self, seconds: Optional[float] = None) -> HistoryWindow:
        """Read back a window over this recorder's directory."""
        return read_window(self.directory, seconds)


__all__ = ["HISTORY_DIRNAME", "HistoryRecorder", "HistoryWindow",
           "history_dir", "read_history", "read_window"]
