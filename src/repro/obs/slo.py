"""Declarative SLOs evaluated over metrics history into burn rates.

An :class:`SLOSpec` names one service-level objective over the metric
families the fleet already exports — a latency quantile bound, an error
ratio budget, or a gauge ceiling.  :func:`evaluate_slos` reads the
recorded history (:mod:`repro.obs.history`) twice — a **fast** window for
"is it on fire right now" and a **slow** window for "is the budget being
eaten" — and reduces each spec to an :class:`SLOVerdict` with two burn
rates.

The burn-rate formula is the standard multi-window one, normalised so
``1.0`` always means "consuming exactly the budget":

* ratio SLOs: ``burn = observed_ratio / objective_ratio``;
* quantile and gauge SLOs: ``burn = observed_value / objective_value``
  (a threshold objective's budget is the threshold itself).

A burn above ``1.0`` in the fast window alone is a **warn** (a spike the
slow window may absorb); above ``1.0`` in *both* windows is a **breach**
(the budget is being spent faster than it refills).  Windows with too few
frames yield ``no_data`` with zero (finite) burn, so a freshly started
fleet is never reported as breaching.

Verdicts surface in three places: the ``slo`` list in the ``/healthz``
body (status stays 200 — verdicts are degradation *reasons*, which the
rollout health gate can opt into), ``repro_slo_*`` gauge families
appended to every ``/metrics`` scrape (:func:`render_slo_gauges`), and
the ``repro slo`` / ``repro status --slo`` CLI tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.history import HistoryWindow, read_window

#: Default fast/slow lookbacks as multiples of the observed frame spacing
#: (the windows adapt to the configured history interval).
FAST_WINDOW_FRAMES = 6
SLOW_WINDOW_FRAMES = 30

#: Verdict statuses, ordered from healthy to unhealthy.
SLO_STATUSES = ("no_data", "ok", "warn", "breach")


@dataclass(frozen=True)
class SLOSpec:
    """One declarative service-level objective.

    Attributes
    ----------
    name:
        Stable identifier (the ``slo`` label on exported gauges).
    kind:
        ``"quantile"`` (histogram percentile bound), ``"ratio"``
        (windowed counter ratio budget), or ``"gauge"`` (ceiling on the
        latest gauge sample).
    objective:
        The bound: seconds for quantile SLOs, a fraction for ratio SLOs,
        the gauge's unit otherwise.  Burn rate is observed / objective.
    metric:
        Histogram or gauge family (quantile / gauge kinds).
    quantile:
        Percentile in ``[0, 100]`` (quantile kind only).
    numerator / denominators:
        Counter families for ratio SLOs; the denominator is the sum of
        deltas across ``denominators``.
    description:
        One-line human meaning, shown in CLI tables.
    """

    name: str
    kind: str
    objective: float
    metric: str = ""
    quantile: float = 95.0
    numerator: str = ""
    denominators: Tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        """Validate the spec shape at construction time."""
        if self.kind not in ("quantile", "ratio", "gauge"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.objective <= 0:
            raise ValueError(f"SLO {self.name!r}: objective must be > 0")
        if self.kind == "ratio" and not (self.numerator and
                                         self.denominators):
            raise ValueError(
                f"SLO {self.name!r}: ratio needs numerator + denominators")
        if self.kind in ("quantile", "gauge") and not self.metric:
            raise ValueError(f"SLO {self.name!r}: needs a metric")


#: The fleet's declared objectives, evaluated by default everywhere.
DEFAULT_SLOS: Tuple[SLOSpec, ...] = (
    SLOSpec(name="infer_latency_p95", kind="quantile",
            metric="http_v1_infer_seconds", quantile=95.0, objective=2.5,
            description="p95 POST /v1/infer latency stays under 2.5s"),
    SLOSpec(name="http_error_ratio", kind="ratio",
            numerator="http_errors_total",
            denominators=("http_requests_total",), objective=0.05,
            description="under 5% of HTTP requests answer an error"),
    SLOSpec(name="replica_lag_docs", kind="gauge",
            metric="replica_lag_docs", objective=5000.0,
            description="worst follower stays within 5000 docs of primary"),
    SLOSpec(name="refresh_failure_ratio", kind="ratio",
            numerator="stream_refresh_errors_total",
            denominators=("stream_refreshes_total",
                          "stream_refresh_errors_total"), objective=0.25,
            description="under 25% of stream refresh attempts fail"),
)


@dataclass
class SLOVerdict:
    """One evaluated SLO: observed value, fast/slow burn rates, status."""

    name: str
    kind: str
    objective: float
    description: str = ""
    value: Optional[float] = None
    fast_burn: float = 0.0
    slow_burn: float = 0.0
    status: str = "no_data"
    frames: int = 0

    @property
    def healthy(self) -> bool:
        """Whether this verdict is not a breach (no_data counts as healthy)."""
        return self.status != "breach"

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form for ``/healthz`` bodies and ``--json`` output."""
        return {"name": self.name, "kind": self.kind,
                "objective": self.objective,
                "description": self.description,
                "value": None if self.value is None
                else round(self.value, 6),
                "fast_burn": round(self.fast_burn, 4),
                "slow_burn": round(self.slow_burn, 4),
                "status": self.status, "frames": self.frames}


def _observe(window: HistoryWindow, spec: SLOSpec) -> Optional[float]:
    """Measure one spec over one window (``None`` = not enough data)."""
    if spec.kind == "quantile":
        return window.quantile(spec.metric, spec.quantile)
    if spec.kind == "ratio":
        return window.ratio(spec.numerator, spec.denominators)
    return window.gauge_latest(spec.metric)


def evaluate_spec(spec: SLOSpec, fast: HistoryWindow,
                  slow: HistoryWindow) -> SLOVerdict:
    """Reduce one spec over the two windows into an :class:`SLOVerdict`."""
    verdict = SLOVerdict(name=spec.name, kind=spec.kind,
                         objective=spec.objective,
                         description=spec.description,
                         frames=slow.n_frames)
    fast_value = _observe(fast, spec) if fast.n_frames >= 2 else None
    slow_value = _observe(slow, spec) if slow.n_frames >= 2 else None
    if fast_value is None and slow_value is None:
        return verdict  # no_data, zero burns — finite and healthy
    verdict.value = slow_value if slow_value is not None else fast_value
    verdict.fast_burn = (0.0 if fast_value is None
                         else fast_value / spec.objective)
    verdict.slow_burn = (0.0 if slow_value is None
                         else slow_value / spec.objective)
    if verdict.fast_burn > 1.0 and verdict.slow_burn > 1.0:
        verdict.status = "breach"
    elif verdict.fast_burn > 1.0 or verdict.slow_burn > 1.0:
        verdict.status = "warn"
    else:
        verdict.status = "ok"
    return verdict


def _frame_spacing(window: HistoryWindow) -> float:
    """Median spacing between consecutive frames (0 when < 2 frames)."""
    stamps = [timestamp for timestamp, _ in window.frames]
    gaps = sorted(b - a for a, b in zip(stamps, stamps[1:]) if b >= a)
    if not gaps:
        return 0.0
    return gaps[len(gaps) // 2]


def evaluate_slos(directory: Union[str, Path],
                  specs: Sequence[SLOSpec] = DEFAULT_SLOS, *,
                  fast_seconds: Optional[float] = None,
                  slow_seconds: Optional[float] = None) -> List[SLOVerdict]:
    """Evaluate ``specs`` over the history recorded under ``directory``.

    The fast/slow lookbacks default to :data:`FAST_WINDOW_FRAMES` /
    :data:`SLOW_WINDOW_FRAMES` times the observed frame spacing, so the
    windows track whatever ``history_interval_seconds`` the fleet runs
    with — override either explicitly for fixed horizons.
    """
    full = read_window(directory, None)
    spacing = _frame_spacing(full)
    if fast_seconds is None:
        fast_seconds = FAST_WINDOW_FRAMES * spacing if spacing else None
    if slow_seconds is None:
        slow_seconds = SLOW_WINDOW_FRAMES * spacing if spacing else None
    fast = read_window(directory, fast_seconds)
    slow = read_window(directory, slow_seconds)
    return [evaluate_spec(spec, fast, slow) for spec in specs]


def render_slo_gauges(verdicts: Sequence[SLOVerdict],
                      prefix: str = "repro") -> str:
    """Render verdicts as ``<prefix>_slo_*`` gauge families (text format).

    Families carry one series per SLO, labeled ``{slo="<name>"}``:
    ``slo_objective``, ``slo_burn_rate_fast``, ``slo_burn_rate_slow``,
    ``slo_healthy`` (1 unless breaching), and — when the window held data
    — ``slo_value``.  The output appends cleanly after
    :func:`~repro.obs.render.render_fleet`'s text.
    """
    if not verdicts:
        return ""
    lines: List[str] = []

    def family(suffix: str, pick) -> None:
        metric = f"{prefix}_slo_{suffix}"
        lines.append(f"# TYPE {metric} gauge")
        for verdict in verdicts:
            value = pick(verdict)
            if value is None:
                continue
            lines.append(f'{metric}{{slo="{verdict.name}"}} {value}')

    family("objective", lambda v: v.objective)
    family("value", lambda v: None if v.value is None
           else repr(float(v.value)))
    family("burn_rate_fast", lambda v: repr(round(float(v.fast_burn), 6)))
    family("burn_rate_slow", lambda v: repr(round(float(v.slow_burn), 6)))
    family("healthy", lambda v: int(v.healthy))
    return "\n".join(lines) + "\n"


__all__ = ["DEFAULT_SLOS", "FAST_WINDOW_FRAMES", "SLOW_WINDOW_FRAMES",
           "SLOSpec", "SLOVerdict", "SLO_STATUSES", "evaluate_slos",
           "evaluate_spec", "render_slo_gauges"]
